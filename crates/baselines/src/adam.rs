//! The ADAM-style engine: rules as runtime objects, centrally
//! dispatched per class.
//!
//! Models the ADAM architecture as the paper characterises it (§1,
//! §5–6, Figures 12–13):
//!
//! * **Events are objects**: `db-event(active-method, when)` — a method
//!   name plus before/after. One event object can be shared by several
//!   rules (Figure 12 creates a single event for both salary rules).
//! * **Rules are objects** created, enabled, and disabled at runtime;
//!   each has exactly one `active-class`. A rule is checked for *every*
//!   instance of that class (and its subclasses), minus the oids listed
//!   in `disabled-for` — the paper's point that restricting a rule to a
//!   few instances is cumbersome.
//! * Dispatch is **centralized**: every message send consults the rule
//!   tables of every class in the receiver's linearization. There is no
//!   per-object consumer list, so the per-message cost grows with the
//!   number of rules attached to the class, not with the number of
//!   rules relevant to the receiving instance (experiment E3).
//! * No composite events: a rule triggered by updates to two classes
//!   needs two rule objects (Figure 13).

use crate::interface::{ActiveEngine, Capabilities, EngineCounters};
use crate::kernel::Kernel;
use sentinel_events::EventModifier;
use sentinel_object::{ClassDecl, ClassId, ClassRegistry, ObjectError, Oid, Result, Value, World};
use std::collections::{HashMap, HashSet};
use std::sync::Arc;

/// Identity of an ADAM `db-event` object.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct AdamEventId(pub u32);

/// Condition body: receives the triggering object and message arguments
/// (`current-object` and `current-arguments` in ADAM's PROLOG).
pub type AdamCond = Arc<dyn Fn(&mut dyn World, Oid, &[Value]) -> Result<bool> + Send + Sync>;
/// Action body.
pub type AdamAction = Arc<dyn Fn(&mut dyn World, Oid, &[Value]) -> Result<()> + Send + Sync>;

struct AdamEventDef {
    method: String,
    when: EventModifier,
}

/// Creation-time description of an ADAM rule (Figure 13's attribute
/// list).
pub struct AdamRuleSpec {
    /// Rule name (unique per engine).
    pub name: String,
    /// The shared `db-event` object the rule listens to.
    pub event: AdamEventId,
    /// The single class the rule is attached to.
    pub active_class: String,
    /// Condition body.
    pub condition: AdamCond,
    /// Action body.
    pub action: AdamAction,
}

struct AdamRule {
    name: String,
    event: AdamEventId,
    enabled: bool,
    disabled_for: HashSet<Oid>,
    condition: AdamCond,
    action: AdamAction,
}

/// The ADAM-style engine.
pub struct AdamEngine {
    kernel: Kernel,
    events: Vec<AdamEventDef>,
    rules: Vec<Option<AdamRule>>,
    by_name: HashMap<String, usize>,
    /// Central dispatch table: rules attached to each active class.
    by_class: HashMap<ClassId, Vec<usize>>,
    counters: EngineCounters,
    depth: usize,
    max_depth: usize,
}

impl Default for AdamEngine {
    fn default() -> Self {
        Self::new()
    }
}

impl AdamEngine {
    /// An empty engine.
    pub fn new() -> Self {
        AdamEngine {
            kernel: Kernel::new(),
            events: Vec::new(),
            rules: Vec::new(),
            by_name: HashMap::new(),
            by_class: HashMap::new(),
            counters: EngineCounters::default(),
            depth: 0,
            max_depth: 64,
        }
    }

    /// Define a class.
    pub fn define_class(&mut self, decl: ClassDecl) -> Result<ClassId> {
        self.kernel.define_class(decl)
    }

    /// Register a method body.
    pub fn register_method<F>(&mut self, class: &str, method: &str, body: F) -> Result<()>
    where
        F: Fn(&mut dyn World, Oid, &[Value]) -> Result<Value> + Send + Sync + 'static,
    {
        self.kernel.register_method(class, method, body)
    }

    /// Register a setter body.
    pub fn register_setter(&mut self, class: &str, method: &str, attr: &str) -> Result<()> {
        self.kernel.register_setter(class, method, attr)
    }

    /// Create a `db-event` object (Figure 12). Shared by any number of
    /// rules.
    pub fn define_event(&mut self, method: &str, when: EventModifier) -> AdamEventId {
        self.events.push(AdamEventDef {
            method: method.to_string(),
            when,
        });
        AdamEventId(self.events.len() as u32 - 1)
    }

    /// Create a rule object at runtime (Figure 13).
    pub fn add_rule(&mut self, spec: AdamRuleSpec) -> Result<()> {
        if self.by_name.contains_key(&spec.name) {
            return Err(ObjectError::DuplicateRule(spec.name));
        }
        if spec.event.0 as usize >= self.events.len() {
            return Err(ObjectError::UnknownEvent(format!(
                "no db-event #{}",
                spec.event.0
            )));
        }
        let class = self.kernel.registry.id_of(&spec.active_class)?;
        let idx = self.rules.len();
        self.rules.push(Some(AdamRule {
            name: spec.name.clone(),
            event: spec.event,
            enabled: true,
            disabled_for: HashSet::new(),
            condition: spec.condition,
            action: spec.action,
        }));
        self.by_name.insert(spec.name, idx);
        self.by_class.entry(class).or_default().push(idx);
        Ok(())
    }

    /// Delete a rule object at runtime.
    pub fn remove_rule(&mut self, name: &str) -> Result<()> {
        let idx = self.rule_idx(name)?;
        self.rules[idx] = None;
        self.by_name.remove(name);
        for v in self.by_class.values_mut() {
            v.retain(|&i| i != idx);
        }
        Ok(())
    }

    /// Enable/disable a rule for all instances.
    pub fn set_enabled(&mut self, name: &str, enabled: bool) -> Result<()> {
        let idx = self.rule_idx(name)?;
        self.rules[idx].as_mut().expect("live").enabled = enabled;
        Ok(())
    }

    /// ADAM's `disabled-for` list: exempt an instance from a class rule.
    /// Restricting a rule to ONE instance of a large class means calling
    /// this for every other instance — the cost E10 demonstrates.
    pub fn disable_for(&mut self, name: &str, oid: Oid) -> Result<()> {
        let idx = self.rule_idx(name)?;
        self.rules[idx]
            .as_mut()
            .expect("live")
            .disabled_for
            .insert(oid);
        Ok(())
    }

    fn rule_idx(&self, name: &str) -> Result<usize> {
        self.by_name
            .get(name)
            .copied()
            .ok_or_else(|| ObjectError::UnknownRule(name.to_string()))
    }

    /// Create an instance (auto-transaction).
    pub fn create(&mut self, class: &str) -> Result<Oid> {
        let id = self.kernel.registry.id_of(class)?;
        self.kernel.txn.begin()?;
        match self.kernel.create_in_txn(id) {
            Ok(o) => {
                self.kernel.txn.commit()?;
                Ok(o)
            }
            Err(e) => {
                self.kernel.rollback();
                Err(e)
            }
        }
    }

    /// Write an attribute directly (no rule checking).
    pub fn set_attr(&mut self, oid: Oid, attr: &str, value: Value) -> Result<()> {
        self.kernel.txn.begin()?;
        match self.kernel.set_attr_in_txn(oid, attr, value) {
            Ok(()) => {
                self.kernel.txn.commit()?;
                Ok(())
            }
            Err(e) => {
                self.kernel.rollback();
                Err(e)
            }
        }
    }

    /// Read an attribute.
    pub fn get_attr(&self, oid: Oid, attr: &str) -> Result<Value> {
        self.kernel.store.get_attr(&self.kernel.registry, oid, attr)
    }

    /// Public message send (auto-transaction).
    pub fn send(&mut self, receiver: Oid, method: &str, args: &[Value]) -> Result<Value> {
        self.kernel.txn.begin()?;
        match self.dispatch(receiver, method, args) {
            Ok(v) => {
                self.kernel.txn.commit()?;
                Ok(v)
            }
            Err(e) => {
                self.kernel.rollback();
                if e.is_abort() {
                    self.counters.aborts += 1;
                }
                Err(e)
            }
        }
    }

    fn dispatch(&mut self, receiver: Oid, method: &str, args: &[Value]) -> Result<Value> {
        if self.depth >= self.max_depth {
            return Err(ObjectError::CascadeDepthExceeded {
                limit: self.max_depth,
            });
        }
        self.depth += 1;
        let out = self.dispatch_inner(receiver, method, args);
        self.depth -= 1;
        out
    }

    fn dispatch_inner(&mut self, receiver: Oid, method: &str, args: &[Value]) -> Result<Value> {
        let class = self.kernel.store.class_of(receiver)?;
        let (_owner, _def, body) =
            self.kernel
                .methods
                .resolve(&self.kernel.registry, class, method, args)?;
        self.kernel.tick();
        self.run_rules(receiver, class, method, EventModifier::Begin, args)?;
        let result = body(self, receiver, args)?;
        self.run_rules(receiver, class, method, EventModifier::End, args)?;
        Ok(result)
    }

    /// The centralized lookup: walk the receiver's class linearization
    /// and scan each class's attached rules.
    fn run_rules(
        &mut self,
        receiver: Oid,
        class: ClassId,
        method: &str,
        when: EventModifier,
        args: &[Value],
    ) -> Result<()> {
        let lin = self.kernel.registry.get(class).linearization.clone();
        for cid in lin {
            let Some(rule_idxs) = self.by_class.get(&cid) else {
                continue;
            };
            // Snapshot: actions may add/remove rules.
            let rule_idxs = rule_idxs.clone();
            for idx in rule_idxs {
                self.counters.rule_checks += 1;
                let Some(rule) = self.rules[idx].as_ref() else {
                    continue;
                };
                if !rule.enabled || rule.disabled_for.contains(&receiver) {
                    continue;
                }
                let ev = &self.events[rule.event.0 as usize];
                if ev.when != when || ev.method != method {
                    continue;
                }
                let cond = rule.condition.clone();
                let action = rule.action.clone();
                self.counters.condition_evals += 1;
                if cond(self, receiver, args)? {
                    self.counters.actions_run += 1;
                    action(self, receiver, args)?;
                }
            }
        }
        Ok(())
    }

    /// All instances of a class.
    pub fn extent(&self, class: &str) -> Result<Vec<Oid>> {
        let id = self.kernel.registry.id_of(class)?;
        Ok(self.kernel.store.extent(&self.kernel.registry, id))
    }

    /// Names of all live rules.
    pub fn rule_names(&self) -> Vec<String> {
        self.rules
            .iter()
            .flatten()
            .map(|r| r.name.clone())
            .collect()
    }
}

impl World for AdamEngine {
    fn registry(&self) -> &ClassRegistry {
        &self.kernel.registry
    }
    fn create(&mut self, class: &str) -> Result<Oid> {
        let id = self.kernel.registry.id_of(class)?;
        self.kernel.create_in_txn(id)
    }
    fn delete(&mut self, oid: Oid) -> Result<()> {
        self.kernel.delete_in_txn(oid)
    }
    fn get_attr(&self, oid: Oid, attr: &str) -> Result<Value> {
        self.kernel.store.get_attr(&self.kernel.registry, oid, attr)
    }
    fn set_attr(&mut self, oid: Oid, attr: &str, value: Value) -> Result<()> {
        self.kernel.set_attr_in_txn(oid, attr, value)
    }
    fn send(&mut self, receiver: Oid, method: &str, args: &[Value]) -> Result<Value> {
        self.dispatch(receiver, method, args)
    }
    fn class_of(&self, oid: Oid) -> Result<ClassId> {
        self.kernel.store.class_of(oid)
    }
    fn extent(&self, class: &str) -> Result<Vec<Oid>> {
        AdamEngine::extent(self, class)
    }
    fn now(&self) -> u64 {
        self.kernel.now()
    }
}

impl ActiveEngine for AdamEngine {
    fn engine_name(&self) -> &'static str {
        "adam"
    }

    fn capabilities(&self) -> Capabilities {
        Capabilities {
            runtime_rule_addition: true,
            direct_instance_level_rules: false, // only via disabled-for exhaustion
            inter_class_composite_events: false,
            events_first_class: true,
            rules_first_class: true,
            rule_sharing_across_classes: false, // one active-class per rule
            rules_on_rules: false,
            composite_operators: &[],
            coupling_modes: &["immediate"],
        }
    }

    fn counters(&self) -> EngineCounters {
        self.counters
    }

    fn reset_counters(&mut self) {
        self.counters = EngineCounters::default();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sentinel_object::TypeTag;

    /// Figures 12–13: one shared db-event, two rule objects (employee
    /// and manager variants of the salary check).
    fn salary_engine() -> AdamEngine {
        let mut adam = AdamEngine::new();
        adam.define_class(
            ClassDecl::new("Employee")
                .attr("sal", TypeTag::Float)
                .attr("mgr", TypeTag::Oid)
                .method("Set-Salary", &[("x", TypeTag::Float)]),
        )
        .unwrap();
        adam.define_class(ClassDecl::new("Manager").parent("Employee"))
            .unwrap();
        adam.register_setter("Employee", "Set-Salary", "sal")
            .unwrap();

        // Figure 12: a single event object shared by both rules.
        let ev = adam.define_event("Set-Salary", EventModifier::End);

        // Figure 13, first rule object: active-class employee.
        adam.add_rule(AdamRuleSpec {
            name: "emp-salary-check".into(),
            event: ev,
            active_class: "Employee".into(),
            condition: Arc::new(|w, this, _args| {
                let mgr = w.get_attr(this, "mgr")?.as_oid()?;
                if mgr.is_nil() {
                    return Ok(false);
                }
                Ok(w.get_attr(this, "sal")?.as_float()? >= w.get_attr(mgr, "sal")?.as_float()?)
            }),
            action: Arc::new(|_w, _this, _args| Err(ObjectError::abort("Invalid Salary"))),
        })
        .unwrap();
        // Figure 13, second rule object: active-class manager.
        adam.add_rule(AdamRuleSpec {
            name: "mgr-salary-check".into(),
            event: ev,
            active_class: "Manager".into(),
            condition: Arc::new(|w, this, _args| {
                let my = w.get_attr(this, "sal")?.as_float()?;
                for e in w.extent("Employee")? {
                    if e == this {
                        continue;
                    }
                    if w.get_attr(e, "mgr")?.as_oid()? == this
                        && w.get_attr(e, "sal")?.as_float()? >= my
                    {
                        return Ok(true);
                    }
                }
                Ok(false)
            }),
            action: Arc::new(|_w, _this, _args| Err(ObjectError::abort("Invalid Salary"))),
        })
        .unwrap();
        adam
    }

    #[test]
    fn figures_12_13_two_rule_objects_needed() {
        let mut adam = salary_engine();
        let mike = adam.create("Manager").unwrap();
        adam.set_attr(mike, "sal", Value::Float(100.0)).unwrap();
        let fred = adam.create("Employee").unwrap();
        adam.set_attr(fred, "mgr", Value::Oid(mike)).unwrap();

        adam.send(fred, "Set-Salary", &[Value::Float(80.0)])
            .unwrap();
        // Violation from the employee side.
        let err = adam
            .send(fred, "Set-Salary", &[Value::Float(150.0)])
            .err()
            .unwrap();
        assert!(err.is_abort());
        assert_eq!(adam.get_attr(fred, "sal").unwrap(), Value::Float(80.0));
        // Violation from the manager side (manager inherits the employee
        // rule too, but its mgr is nil so only the manager rule bites).
        let err = adam
            .send(mike, "Set-Salary", &[Value::Float(50.0)])
            .err()
            .unwrap();
        assert!(err.is_abort());
        assert_eq!(adam.get_attr(mike, "sal").unwrap(), Value::Float(100.0));
    }

    #[test]
    fn rules_inherited_by_subclass_instances() {
        let mut adam = salary_engine();
        // A manager *is an* employee: the employee rule applies to it.
        let boss = adam.create("Manager").unwrap();
        adam.set_attr(boss, "sal", Value::Float(500.0)).unwrap();
        let mike = adam.create("Manager").unwrap();
        adam.set_attr(mike, "mgr", Value::Oid(boss)).unwrap();
        let err = adam
            .send(mike, "Set-Salary", &[Value::Float(900.0)])
            .err()
            .unwrap();
        assert!(err.is_abort());
    }

    #[test]
    fn centralized_dispatch_checks_every_class_rule() {
        // 50 rules on Employee, each relevant to a different method that
        // never runs: every send still scans all of them.
        let mut adam = AdamEngine::new();
        adam.define_class(
            ClassDecl::new("Employee")
                .attr("sal", TypeTag::Float)
                .method("Set-Salary", &[("x", TypeTag::Float)]),
        )
        .unwrap();
        adam.register_setter("Employee", "Set-Salary", "sal")
            .unwrap();
        for i in 0..50 {
            let ev = adam.define_event(&format!("Method-{i}"), EventModifier::End);
            adam.add_rule(AdamRuleSpec {
                name: format!("r{i}"),
                event: ev,
                active_class: "Employee".into(),
                condition: Arc::new(|_, _, _| Ok(true)),
                action: Arc::new(|_, _, _| Ok(())),
            })
            .unwrap();
        }
        let fred = adam.create("Employee").unwrap();
        adam.reset_counters();
        adam.send(fred, "Set-Salary", &[Value::Float(1.0)]).unwrap();
        // Begin + End sweeps: 2 × 50 checks, 0 condition evals.
        assert_eq!(adam.counters().rule_checks, 100);
        assert_eq!(adam.counters().condition_evals, 0);
    }

    #[test]
    fn disabled_for_exempts_instances() {
        let mut adam = AdamEngine::new();
        adam.define_class(
            ClassDecl::new("Doc")
                .attr("saves", TypeTag::Int)
                .method("Save", &[]),
        )
        .unwrap();
        adam.register_method("Doc", "Save", |w, this, _| {
            let n = w.get_attr(this, "saves")?.as_int()?;
            w.set_attr(this, "saves", Value::Int(n + 1))?;
            Ok(Value::Null)
        })
        .unwrap();
        let ev = adam.define_event("Save", EventModifier::End);
        adam.add_rule(AdamRuleSpec {
            name: "cap-saves".into(),
            event: ev,
            active_class: "Doc".into(),
            condition: Arc::new(|w, this, _| Ok(w.get_attr(this, "saves")?.as_int()? > 1)),
            action: Arc::new(|_, _, _| Err(ObjectError::abort("save cap"))),
        })
        .unwrap();
        let a = adam.create("Doc").unwrap();
        let b = adam.create("Doc").unwrap();
        adam.disable_for("cap-saves", b).unwrap();
        adam.send(a, "Save", &[]).unwrap();
        assert!(adam.send(a, "Save", &[]).err().unwrap().is_abort());
        // b is exempt: saves freely.
        for _ in 0..5 {
            adam.send(b, "Save", &[]).unwrap();
        }
        assert_eq!(adam.get_attr(b, "saves").unwrap(), Value::Int(5));
    }

    #[test]
    fn runtime_rule_lifecycle() {
        let mut adam = AdamEngine::new();
        adam.define_class(ClassDecl::new("C").attr("x", TypeTag::Int).method("M", &[]))
            .unwrap();
        adam.register_method("C", "M", |_, _, _| Ok(Value::Null))
            .unwrap();
        let ev = adam.define_event("M", EventModifier::End);
        let count = Arc::new(std::sync::atomic::AtomicU64::new(0));
        let c2 = count.clone();
        adam.add_rule(AdamRuleSpec {
            name: "r".into(),
            event: ev,
            active_class: "C".into(),
            condition: Arc::new(|_, _, _| Ok(true)),
            action: Arc::new(move |_, _, _| {
                c2.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                Ok(())
            }),
        })
        .unwrap();
        let o = adam.create("C").unwrap();
        adam.send(o, "M", &[]).unwrap();
        adam.set_enabled("r", false).unwrap();
        adam.send(o, "M", &[]).unwrap();
        adam.set_enabled("r", true).unwrap();
        adam.send(o, "M", &[]).unwrap();
        adam.remove_rule("r").unwrap();
        adam.send(o, "M", &[]).unwrap();
        assert_eq!(count.load(std::sync::atomic::Ordering::Relaxed), 2);
        assert!(adam.remove_rule("r").is_err());
    }

    #[test]
    fn capability_matrix_matches_the_model() {
        let adam = AdamEngine::new();
        let c = adam.capabilities();
        assert!(c.runtime_rule_addition);
        assert!(c.events_first_class);
        assert!(c.rules_first_class);
        assert!(!c.inter_class_composite_events);
        assert!(!c.rule_sharing_across_classes);
        assert!(!c.direct_instance_level_rules);
    }
}
