//! Uniform comparison interface over the three engines.

/// What an engine's rule architecture can express — the rows of the
/// paper's back-of-the-envelope comparison (§6), probed programmatically
/// by experiment E1.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Capabilities {
    /// Can a new rule be added without redefining/recompiling classes?
    pub runtime_rule_addition: bool,
    /// Can a rule target a specific instance (not a whole class) without
    /// enumerating exceptions?
    pub direct_instance_level_rules: bool,
    /// Can one rule be triggered by a composite event spanning instances
    /// of *different* classes?
    pub inter_class_composite_events: bool,
    /// Are events first-class objects (creatable, persistent, shareable)?
    pub events_first_class: bool,
    /// Are rules first-class objects?
    pub rules_first_class: bool,
    /// Can one rule definition be shared by (subscribed to) objects of
    /// several classes instead of duplicating it per class?
    pub rule_sharing_across_classes: bool,
    /// Can rules monitor other rules' operations?
    pub rules_on_rules: bool,
    /// Composite event operators available.
    pub composite_operators: &'static [&'static str],
    /// Coupling modes available.
    pub coupling_modes: &'static [&'static str],
}

/// Counters every engine reports so experiment tables are comparable.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct EngineCounters {
    /// Rule-dispatch work: how many rules were *considered* per the
    /// engine's architecture (subscription delivery for Sentinel,
    /// class-table scan for ADAM, per-method constraint sweep for Ode).
    pub rule_checks: u64,
    /// Condition/predicate evaluations actually performed.
    pub condition_evals: u64,
    /// Actions (or fixups) executed.
    pub actions_run: u64,
    /// Transactions aborted by rules/constraints.
    pub aborts: u64,
}

/// The comparison surface of an active-rule engine.
pub trait ActiveEngine {
    /// Engine name for experiment tables.
    fn engine_name(&self) -> &'static str;

    /// Expressiveness probes.
    fn capabilities(&self) -> Capabilities;

    /// Uniform counters.
    fn counters(&self) -> EngineCounters;

    /// Zero the counters (between experiment phases).
    fn reset_counters(&mut self);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_default_zero() {
        let c = EngineCounters::default();
        assert_eq!(c.rule_checks, 0);
        assert_eq!(c.condition_evals, 0);
    }
}
