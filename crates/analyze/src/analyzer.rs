//! The rule-set analyzer: builds the triggering graph and runs every
//! lint, producing an [`AnalysisReport`].

use crate::conflict::attrs_overlap;
use crate::diagnostic::{DiagCode, Diagnostic, Severity};
use crate::graph::{EdgeKind, GraphEdge, GraphNode, TriggeringGraph};
use crate::termination::{self, RuleFacts, TerminationReport, Verdict};
use sentinel_events::{sym_alphabet, EventExpr, EventModifier};
use sentinel_object::{ClassId, ClassRegistry, EventSym, ObjectError, Oid, Reactivity, Result};
use sentinel_rules::{ActionEffects, CouplingMode, Rule, RuleEngine, ACTION_ABORT, COND_TRUE};
use serde::Serialize;
use std::collections::{BTreeSet, HashMap};

/// Static analysis over a compiled schema + rule set + subscription
/// table.
///
/// `object_classes` maps object-level subscription targets to their
/// dynamic class; the database supplies it (the engine stores only
/// oids). Targets missing from the map are treated as delivering no
/// events.
pub struct RuleAnalyzer<'a> {
    registry: &'a ClassRegistry,
    engine: &'a RuleEngine,
    object_classes: HashMap<Oid, ClassId>,
    /// The runtime `max_cascade_depth`, when known: proven bounds that
    /// reach it are reported as errors (the cascade is doomed to abort).
    cascade_limit: Option<usize>,
}

/// Everything the lints need per rule, precomputed once.
struct RuleInfo<'a> {
    rule: &'a Rule,
    name: String,
    /// `None` = unbounded (expression contains `Plus`).
    alphabet: Option<Vec<EventSym>>,
    n_subs: usize,
    /// Symbols some subscription can deliver *and* the alphabet admits
    /// (for unbounded alphabets: everything deliverable).
    audible: BTreeSet<EventSym>,
    /// Declared action effects; `None` = unknown.
    effects: Option<ActionEffects>,
    /// Symbols the action can raise per its declaration; `None` =
    /// unknown (conservative).
    raised: Option<BTreeSet<EventSym>>,
}

impl<'a> RuleAnalyzer<'a> {
    /// Analyzer over `engine`'s rules against `registry`'s schema, with
    /// no object-class information (object-level subscriptions deliver
    /// nothing; fine for class-level rule sets and unit tests).
    pub fn new(registry: &'a ClassRegistry, engine: &'a RuleEngine) -> Self {
        RuleAnalyzer {
            registry,
            engine,
            object_classes: HashMap::new(),
            cascade_limit: None,
        }
    }

    /// Provide the dynamic class of object-level subscription targets.
    pub fn with_object_classes(mut self, map: HashMap<Oid, ClassId>) -> Self {
        self.object_classes = map;
        self
    }

    /// Provide the runtime cascade-depth limit. With it set, any rule
    /// whose proven static bound reaches the limit gets a
    /// `cascade-bound-exceeds-limit` error: its worst-case cascade is
    /// doomed to hit the runtime kill-switch and abort.
    pub fn with_cascade_limit(mut self, limit: usize) -> Self {
        self.cascade_limit = Some(limit);
        self
    }

    /// Run every check and return the report.
    pub fn analyze(&self) -> AnalysisReport {
        let mut rules: Vec<&Rule> = self.engine.iter_rules().collect();
        rules.sort_by(|a, b| a.name.cmp(&b.name));
        let infos: Vec<RuleInfo<'_>> = rules.iter().map(|r| self.rule_info(r)).collect();

        let graph = self.build_graph(&infos);
        let mut diagnostics = Vec::new();
        self.lint_bodies(&infos, &mut diagnostics);
        self.lint_reachability(&infos, &mut diagnostics);
        self.lint_shadowing(&infos, &mut diagnostics);
        self.lint_confluence(&infos, &mut diagnostics);
        self.lint_disabled_forever(&infos, &mut diagnostics);
        for info in &infos {
            self.lint_expr(&info.name, &info.rule.def.event, &mut diagnostics);
        }
        let termination = self.prove_termination(&infos, &graph, &mut diagnostics);
        self.lint_cycles(&graph, &termination, &mut diagnostics);

        let mut report = AnalysisReport {
            diagnostics,
            graph,
            termination,
        };
        report.resort();
        report
    }

    /// Run the termination prover and fold its findings into the
    /// diagnostics: an info per discharged cycle, a warning per
    /// undischarged cycle, and (when the cascade limit is known) an
    /// error for every proven bound that is doomed to hit it.
    fn prove_termination(
        &self,
        infos: &[RuleInfo<'_>],
        graph: &TriggeringGraph,
        out: &mut Vec<Diagnostic>,
    ) -> TerminationReport {
        let facts: Vec<RuleFacts> = infos
            .iter()
            .map(|info| RuleFacts {
                rule: info.name.clone(),
                condition_trivial: info.rule.def.condition == COND_TRUE,
                reads_known: info.effects.as_ref().is_some_and(|fx| fx.reads.is_some()),
                raises_known: info.raised.is_some(),
                abort_shadowed: self.abort_blocker(infos, info).is_some(),
                timer_gated: info.rule.def.event.timer_gated(),
            })
            .collect();
        let feedback: Vec<Vec<bool>> = infos
            .iter()
            .map(|from| {
                infos
                    .iter()
                    .map(|to| self.writes_feed_reads(from, to))
                    .collect()
            })
            .collect();
        let termination = termination::prove(graph, &facts, &feedback);

        for c in &termination.discharged {
            let ring = c
                .members
                .iter()
                .map(|n| format!("`{n}`"))
                .collect::<Vec<_>>()
                .join(" -> ");
            out.push(Diagnostic::new(
                DiagCode::CycleDischarged,
                Some(c.witness.clone()),
                format!(
                    "triggering cycle {ring} is discharged by `{}` ({}): it \
                     cannot sustain an unbounded cascade",
                    c.witness,
                    c.reason.as_str()
                ),
            ));
        }
        for c in &termination.undischarged {
            let ring = c
                .members
                .iter()
                .map(|n| format!("`{n}`"))
                .collect::<Vec<_>>()
                .join(" -> ");
            out.push(Diagnostic::new(
                DiagCode::UnprovenTermination,
                Some(c.members[0].clone()),
                format!(
                    "no discharge proof found for triggering cycle {ring}; \
                     termination is not guaranteed (declare read/write/raise \
                     effects, add a non-trivial condition, or break the loop)"
                ),
            ));
        }
        if let Some(limit) = self.cascade_limit {
            for v in &termination.verdicts {
                if let Verdict::Proven(bound) = v.verdict {
                    if bound as usize >= limit {
                        out.push(Diagnostic::new(
                            DiagCode::CascadeBoundExceedsLimit,
                            Some(v.rule.clone()),
                            format!(
                                "static cascade bound {bound} reaches the \
                                 runtime limit (max_cascade_depth = {limit} \
                                 permits lineage depths 0..={}); a worst-case \
                                 cascade from this rule aborts at runtime",
                                limit - 1
                            ),
                        ));
                    }
                }
            }
        }
        termination
    }

    /// May `from`'s declared writes overlap `to`'s full read-set
    /// (declared reads plus its own writes, which are always readable)?
    /// Unknown effects on either side answer `true` — this is
    /// may-analysis; only a declared-empty intersection refutes.
    fn writes_feed_reads(&self, from: &RuleInfo<'_>, to: &RuleInfo<'_>) -> bool {
        let Some(ffx) = &from.effects else {
            return true;
        };
        if ffx.writes.is_empty() {
            return false;
        }
        let Some(tfx) = &to.effects else {
            return true;
        };
        let Some(reads) = &tfx.reads else {
            return true;
        };
        ffx.writes.iter().any(|w| {
            tfx.writes
                .iter()
                .chain(reads.iter())
                .any(|r| attrs_overlap(self.registry, w, r))
        })
    }

    /// Can instances of the symbol's class emit events at all?
    fn emittable(&self, sym: EventSym) -> bool {
        let info = self.registry.sym_info(sym);
        self.registry.get(info.class).reactivity == Reactivity::Reactive
    }

    /// `Class::method (begin|end)` for a symbol.
    fn sym_desc(&self, sym: EventSym) -> String {
        let info = self.registry.sym_info(sym);
        format!(
            "{}::{} ({})",
            self.registry.get(info.class).name,
            info.method,
            if info.end { "end" } else { "begin" }
        )
    }

    /// Symbols one subscription target can put in front of the rule.
    fn delivered_by_class(&self, class: ClassId) -> BTreeSet<EventSym> {
        (0..self.registry.sym_count())
            .map(|i| EventSym(i as u32))
            .filter(|&s| self.emittable(s))
            .filter(|&s| {
                self.registry
                    .is_subclass(self.registry.sym_info(s).class, class)
            })
            .collect()
    }

    fn delivered_by_object(&self, oid: Oid) -> BTreeSet<EventSym> {
        let Some(&class) = self.object_classes.get(&oid) else {
            return BTreeSet::new();
        };
        (0..self.registry.sym_count())
            .map(|i| EventSym(i as u32))
            .filter(|&s| self.emittable(s))
            // An object-level target pins the dynamic class exactly: a
            // subscription to a `Savings` object never sees `Account`
            // symbols, because occurrences carry the dynamic class.
            .filter(|&s| self.registry.sym_info(s).class == class)
            .collect()
    }

    fn rule_info(&self, rule: &'a Rule) -> RuleInfo<'a> {
        let alphabet = rule.def.event.alphabet(self.registry);
        let objects = self.engine.subscriptions.objects_of(rule.id);
        let classes = self.engine.subscriptions.classes_of(rule.id);
        let mut delivered: BTreeSet<EventSym> = BTreeSet::new();
        for &c in &classes {
            delivered.extend(self.delivered_by_class(c));
        }
        for &o in &objects {
            delivered.extend(self.delivered_by_object(o));
        }
        let audible = match &alphabet {
            Some(a) => delivered
                .iter()
                .copied()
                .filter(|s| a.contains(s))
                .collect(),
            None => delivered,
        };
        let effects = self.engine.bodies.action_effects(&rule.def.action).cloned();
        let raised = effects.as_ref().map(|fx| {
            let mut syms = BTreeSet::new();
            for p in &fx.raises {
                if let Ok(cid) = self.registry.id_of(&p.class) {
                    for m in [EventModifier::Begin, EventModifier::End] {
                        syms.extend(
                            sym_alphabet(self.registry, cid, &p.method, m)
                                .into_iter()
                                .filter(|&s| self.emittable(s)),
                        );
                    }
                }
            }
            syms
        });
        RuleInfo {
            rule,
            name: rule.name.to_string(),
            alphabet,
            n_subs: objects.len() + classes.len(),
            audible,
            effects,
            raised,
        }
    }

    /// Build the refined triggering graph. For each ordered rule pair
    /// the edge lands on the refinement lattice:
    ///
    /// - **definite** — the source's declared raises intersect the
    ///   target's audible alphabet;
    /// - **conservative** — the source's effects are undeclared ("may
    ///   raise anything"), or its raises provably miss but its declared
    ///   writes may touch the target's read-set (data feedback: the
    ///   write can re-enable the target's condition);
    /// - **refuted** — the source declared its effects, raises nothing
    ///   audible, and writes nothing the target reads: the pair is
    ///   provably independent. Recorded so the pruning is auditable,
    ///   except when the source's declared effects are completely empty
    ///   (a pure action refutes *every* pair — recording the full fan
    ///   of trivial refutations would only be noise).
    fn build_graph(&self, infos: &[RuleInfo<'_>]) -> TriggeringGraph {
        let nodes = infos
            .iter()
            .map(|i| GraphNode {
                rule: i.name.clone(),
                coupling: i.rule.def.coupling,
                enabled: i.rule.enabled,
            })
            .collect();
        let mut edges = Vec::new();
        for (i, from) in infos.iter().enumerate() {
            if !from.rule.enabled {
                continue;
            }
            for (j, to) in infos.iter().enumerate() {
                if !to.rule.enabled || to.audible.is_empty() {
                    continue;
                }
                match &from.raised {
                    Some(raised) => {
                        if let Some(&sym) = raised.intersection(&to.audible).next() {
                            edges.push(GraphEdge {
                                from: i,
                                to: j,
                                kind: EdgeKind::Definite,
                                via: self.sym_desc(sym),
                            });
                        } else if self.writes_feed_reads(from, to) {
                            let fx = from.effects.as_ref().expect("raised implies effects");
                            let attr = fx.writes.first().map(|w| w.to_string()).unwrap_or_default();
                            edges.push(GraphEdge {
                                from: i,
                                to: j,
                                kind: EdgeKind::Conservative,
                                via: format!("data feedback: writes {attr}"),
                            });
                        } else {
                            let fx = from.effects.as_ref().expect("raised implies effects");
                            if fx.raises.is_empty() && fx.writes.is_empty() {
                                continue; // pure action: skip the trivial refutation
                            }
                            edges.push(GraphEdge {
                                from: i,
                                to: j,
                                kind: EdgeKind::Refuted,
                                via: "refuted: raises miss the alphabet, writes miss the read-set"
                                    .into(),
                            });
                        }
                    }
                    None => edges.push(GraphEdge {
                        from: i,
                        to: j,
                        kind: EdgeKind::Conservative,
                        via: "effects unknown".into(),
                    }),
                }
            }
        }
        TriggeringGraph { nodes, edges }
    }

    fn lint_bodies(&self, infos: &[RuleInfo<'_>], out: &mut Vec<Diagnostic>) {
        for info in infos {
            let def = &info.rule.def;
            let mut missing = false;
            if !self.engine.bodies.has_condition(&def.condition) {
                missing = true;
                out.push(Diagnostic::new(
                    DiagCode::UnregisteredBody,
                    Some(info.name.clone()),
                    format!("condition body `{}` is not registered", def.condition),
                ));
            }
            if !self.engine.bodies.has_action(&def.action) {
                missing = true;
                out.push(Diagnostic::new(
                    DiagCode::UnregisteredBody,
                    Some(info.name.clone()),
                    format!("action body `{}` is not registered", def.action),
                ));
            }
            if info.rule.enabled && info.effects.is_none() && !missing {
                out.push(Diagnostic::new(
                    DiagCode::UnknownEffects,
                    Some(info.name.clone()),
                    format!(
                        "action `{}` has no declared effects; the analyzer \
                         assumes it may raise anything (declare ActionEffects \
                         at registration for precise edges)",
                        def.action
                    ),
                ));
            }
        }
    }

    fn lint_reachability(&self, infos: &[RuleInfo<'_>], out: &mut Vec<Diagnostic>) {
        for info in infos {
            if !info.rule.enabled {
                continue;
            }
            if info.n_subs == 0 {
                // Timer leaves are delivered by the wheel, not by
                // subscriptions: a rule with one can trigger anyway.
                if !info.rule.def.event.has_timers() {
                    out.push(Diagnostic::new(
                        DiagCode::NoSubscription,
                        Some(info.name.clone()),
                        "rule has no subscriptions, so it can never trigger \
                         (subscribe an object or class to it)",
                    ));
                }
                continue;
            }
            // An empty-but-bounded alphabet means the event names
            // methods the schema never interned; the detector falls
            // back to string matching, so stay silent rather than
            // guess.
            if info.alphabet.as_ref().is_some_and(|a| a.is_empty()) {
                continue;
            }
            if info.audible.is_empty() && !info.rule.def.event.has_timers() {
                out.push(Diagnostic::new(
                    DiagCode::UnreachableRule,
                    Some(info.name.clone()),
                    "no subscribed target can emit any event in the rule's \
                     alphabet; the rule can never trigger",
                ));
                continue;
            }
            // Per-target deafness: the rule is reachable, but one of its
            // subscriptions contributes nothing.
            for &c in &self.engine.subscriptions.classes_of(info.rule.id) {
                let contrib = self.delivered_by_class(c);
                if self.target_is_deaf(&contrib, &info.alphabet) {
                    out.push(Diagnostic::new(
                        DiagCode::DeafSubscription,
                        Some(info.name.clone()),
                        format!(
                            "class-level subscription to `{}` delivers no \
                             event in the rule's alphabet",
                            self.registry.get(c).name
                        ),
                    ));
                }
            }
            for &o in &self.engine.subscriptions.objects_of(info.rule.id) {
                let contrib = self.delivered_by_object(o);
                if self.target_is_deaf(&contrib, &info.alphabet) {
                    out.push(Diagnostic::new(
                        DiagCode::DeafSubscription,
                        Some(info.name.clone()),
                        format!(
                            "subscription to object {o} delivers no event in \
                             the rule's alphabet"
                        ),
                    ));
                }
            }
        }
    }

    fn target_is_deaf(
        &self,
        contrib: &BTreeSet<EventSym>,
        alphabet: &Option<Vec<EventSym>>,
    ) -> bool {
        match alphabet {
            Some(a) => !contrib.iter().any(|s| a.contains(s)),
            None => contrib.is_empty(),
        }
    }

    /// The rule (if any) that abort-shadows `shadowed`: enabled,
    /// unconditional Immediate abort at higher priority whose audible
    /// set covers every event that can trigger `shadowed`. Shared
    /// between the `shadowed-by-abort` lint and the termination
    /// prover's abort-shadow discharge predicate.
    fn abort_blocker<'b>(
        &self,
        infos: &'b [RuleInfo<'a>],
        shadowed: &RuleInfo<'a>,
    ) -> Option<&'b RuleInfo<'a>> {
        if !shadowed.rule.enabled || shadowed.audible.is_empty() {
            return None;
        }
        infos.iter().find(|blocker| {
            blocker.rule.enabled
                && blocker.rule.id != shadowed.rule.id
                && blocker.rule.def.action == ACTION_ABORT
                && blocker.rule.def.condition == COND_TRUE
                && blocker.rule.def.coupling == CouplingMode::Immediate
                && blocker.rule.def.priority > shadowed.rule.def.priority
                && shadowed.audible.is_subset(&blocker.audible)
        })
    }

    fn lint_shadowing(&self, infos: &[RuleInfo<'_>], out: &mut Vec<Diagnostic>) {
        for shadowed in infos {
            if shadowed.rule.def.action == ACTION_ABORT {
                continue; // two unconditional aborts shadowing each other is moot
            }
            if let Some(blocker) = self.abort_blocker(infos, shadowed) {
                out.push(Diagnostic::new(
                    DiagCode::ShadowedByAbort,
                    Some(shadowed.name.clone()),
                    format!(
                        "every event that can trigger this rule also \
                         triggers higher-priority rule `{}`, which \
                         unconditionally aborts first",
                        blocker.name
                    ),
                ));
            }
        }
    }

    fn lint_confluence(&self, infos: &[RuleInfo<'_>], out: &mut Vec<Diagnostic>) {
        for (i, a) in infos.iter().enumerate() {
            for b in infos.iter().skip(i + 1) {
                if !a.rule.enabled
                    || !b.rule.enabled
                    || a.rule.def.priority != b.rule.def.priority
                    || a.audible.intersection(&b.audible).next().is_none()
                {
                    continue;
                }
                let (Some(fa), Some(fb)) = (&a.effects, &b.effects) else {
                    continue; // unknown effects already carry an info lint
                };
                let overlap = fa.writes.iter().find(|wa| {
                    fb.writes.iter().any(|wb| {
                        wa.attr == wb.attr
                            && (self.class_covers(&wa.class, &wb.class)
                                || self.class_covers(&wb.class, &wa.class))
                    })
                });
                if let Some(w) = overlap {
                    out.push(Diagnostic::new(
                        DiagCode::NonConfluent,
                        Some(a.name.clone()),
                        format!(
                            "rules `{}` and `{}` share priority {}, can \
                             trigger on the same occurrence, and both write \
                             `{}`; the final value depends on execution order",
                            a.name, b.name, a.rule.def.priority, w
                        ),
                    ));
                }
            }
        }
    }

    fn class_covers(&self, declared: &str, observed: &str) -> bool {
        match (self.registry.id_of(declared), self.registry.id_of(observed)) {
            (Ok(sup), Ok(sub)) => self.registry.is_subclass(sub, sup),
            _ => declared == observed,
        }
    }

    fn lint_disabled_forever(&self, infos: &[RuleInfo<'_>], out: &mut Vec<Diagnostic>) {
        let any_unknown = infos.iter().any(|i| i.rule.enabled && i.raised.is_none());
        if any_unknown {
            return; // an unknown action may re-enable anything
        }
        let rule_meta = self.registry.id_of("Rule").ok();
        let enabler_exists = infos.iter().filter(|i| i.rule.enabled).any(|i| {
            i.raised.iter().flatten().any(|&s| {
                let si = self.registry.sym_info(s);
                si.method == "Enable"
                    && rule_meta.is_none_or(|rm| self.registry.is_subclass(si.class, rm))
            })
        });
        if enabler_exists {
            return;
        }
        for info in infos.iter().filter(|i| !i.rule.enabled) {
            out.push(Diagnostic::new(
                DiagCode::DisabledForever,
                Some(info.name.clone()),
                "rule is disabled and no enabled rule can re-enable it \
                 (only direct application calls could)",
            ));
        }
    }

    /// Well-formedness walk over one rule's event expression.
    fn lint_expr(&self, rule: &str, expr: &EventExpr, out: &mut Vec<Diagnostic>) {
        match expr {
            EventExpr::Primitive(_) => {}
            EventExpr::And(a, b) => {
                let left = a.primitives();
                let dup = b.primitives().into_iter().find(|p| left.contains(p));
                if let Some(p) = dup {
                    out.push(Diagnostic::new(
                        DiagCode::DupPrimitiveConjunction,
                        Some(rule.to_string()),
                        format!(
                            "conjunction lists `{p}` on both sides; one \
                             occurrence satisfies both operands"
                        ),
                    ));
                }
                self.lint_expr(rule, a, out);
                self.lint_expr(rule, b, out);
            }
            EventExpr::Or(a, b) => {
                self.lint_expr(rule, a, out);
                self.lint_expr(rule, b, out);
            }
            EventExpr::Seq(a, b) => {
                for (side, operand) in [("left", a), ("right", b)] {
                    if operand
                        .alphabet(self.registry)
                        .is_some_and(|syms| syms.is_empty())
                        && !operand.primitives().is_empty()
                    {
                        out.push(Diagnostic::new(
                            DiagCode::SeqDeadOperand,
                            Some(rule.to_string()),
                            format!(
                                "{side} operand `{operand}` has an empty \
                                 alphabet under the current schema; the \
                                 sequence can never complete through interned \
                                 events"
                            ),
                        ));
                    }
                }
                self.lint_expr(rule, a, out);
                self.lint_expr(rule, b, out);
            }
            EventExpr::Any { m, exprs } => {
                let mut seen: Vec<&sentinel_events::PrimitiveEventSpec> = Vec::new();
                for e in exprs {
                    for p in e.primitives() {
                        if seen.contains(&p) {
                            out.push(Diagnostic::new(
                                DiagCode::DupPrimitiveConjunction,
                                Some(rule.to_string()),
                                format!("any({m}, ...) lists `{p}` more than once"),
                            ));
                        } else {
                            seen.push(p);
                        }
                    }
                }
                for e in exprs {
                    self.lint_expr(rule, e, out);
                }
            }
            EventExpr::Not { watch, start, end } => {
                self.lint_expr(rule, watch, out);
                self.lint_expr(rule, start, out);
                self.lint_expr(rule, end, out);
            }
            EventExpr::Aperiodic { start, each, end } => {
                self.lint_expr(rule, start, out);
                self.lint_expr(rule, each, out);
                self.lint_expr(rule, end, out);
            }
            EventExpr::Times { expr, .. } => self.lint_expr(rule, expr, out),
            EventExpr::Plus { expr, delta } => {
                if *delta == 0 {
                    out.push(Diagnostic::new(
                        DiagCode::PlusZeroDeadline,
                        Some(rule.to_string()),
                        "plus() deadline of zero: equivalent to the operand \
                         alone, at the cost of unbounded event routing",
                    ));
                }
                self.lint_expr(rule, expr, out);
            }
            EventExpr::At { .. } => {}
            EventExpr::Every { period } => {
                if *period == 0 {
                    out.push(Diagnostic::new(
                        DiagCode::ZeroSpanTemporal,
                        Some(rule.to_string()),
                        "every(0): a zero period is clamped to one instant \
                         at schedule time, firing on every drain",
                    ));
                }
            }
            EventExpr::Within { expr, deadline } => {
                if *deadline == 0 {
                    out.push(Diagnostic::new(
                        DiagCode::ZeroSpanTemporal,
                        Some(rule.to_string()),
                        "within(0): only composites whose constituents all \
                         share one instant can ever complete",
                    ));
                }
                self.lint_expr(rule, expr, out);
            }
            EventExpr::Window { expr, size, .. } => {
                if *size == 0 {
                    out.push(Diagnostic::new(
                        DiagCode::ZeroSpanTemporal,
                        Some(rule.to_string()),
                        "window of size zero covers no instants; the operand \
                         is evicted as it arrives",
                    ));
                }
                self.lint_expr(rule, expr, out);
            }
            EventExpr::Aggregate {
                expr,
                size,
                threshold,
                ..
            } => {
                if *size == 0 {
                    out.push(Diagnostic::new(
                        DiagCode::ZeroSpanTemporal,
                        Some(rule.to_string()),
                        "aggregate over a zero-sized window sees no \
                         occurrences and can never reach its threshold",
                    ));
                }
                if *threshold <= 0 {
                    out.push(Diagnostic::new(
                        DiagCode::ZeroSpanTemporal,
                        Some(rule.to_string()),
                        format!(
                            "aggregate threshold {threshold} is satisfied by \
                             an empty window; the latch opens on the first \
                             operand occurrence and never re-arms"
                        ),
                    ));
                }
                self.lint_expr(rule, expr, out);
            }
        }
    }

    fn lint_cycles(
        &self,
        graph: &TriggeringGraph,
        termination: &TerminationReport,
        out: &mut Vec<Diagnostic>,
    ) {
        for cycle in graph.cycles() {
            let names: Vec<&str> = cycle
                .members
                .iter()
                .map(|&i| graph.nodes[i].rule.as_str())
                .collect();
            // A discharge proof supersedes the cycle warnings below: the
            // loop provably cannot sustain itself, and the
            // `cycle-discharged` info already reports it. Immediate
            // definite cycles stay errors regardless — even a shadowed
            // one recurses inside the triggering transaction.
            let discharged = termination.discharged.iter().any(|d| {
                d.members.len() == names.len() && {
                    let mut sorted = names.clone();
                    sorted.sort_unstable();
                    sorted.iter().zip(&d.members).all(|(a, b)| *a == b.as_str())
                }
            });
            let ring = if names.len() == 1 {
                format!("`{}` can retrigger itself", names[0])
            } else {
                format!(
                    "rules {} can trigger each other in a loop",
                    names
                        .iter()
                        .map(|n| format!("`{n}`"))
                        .collect::<Vec<_>>()
                        .join(" -> ")
                )
            };
            let first = names[0].to_string();
            if !cycle.definite {
                if discharged {
                    continue;
                }
                out.push(Diagnostic::new(
                    DiagCode::PotentialCycle,
                    Some(first),
                    format!(
                        "{ring} through conservative edges (undeclared \
                         effects or data feedback); declare ActionEffects to \
                         confirm or rule this out"
                    ),
                ));
            } else if cycle
                .members
                .iter()
                .any(|&i| graph.nodes[i].coupling == CouplingMode::Immediate)
            {
                out.push(Diagnostic::new(
                    DiagCode::ImmediateCycle,
                    Some(first),
                    format!(
                        "{ring}; at least one member is Immediate-coupled, so \
                         the cascade recurses inside the triggering \
                         transaction until the depth limit aborts it"
                    ),
                ));
            } else {
                if discharged {
                    continue;
                }
                out.push(Diagnostic::new(
                    DiagCode::DeferredCycle,
                    Some(first),
                    format!(
                        "{ring}; all members are Deferred/Detached, so each \
                         round is bounded but the rule set never quiesces"
                    ),
                ));
            }
        }
    }
}

/// The analyzer's output: every finding, the triggering graph, and the
/// termination verdicts.
#[derive(Debug, Clone, Serialize)]
pub struct AnalysisReport {
    /// Findings, sorted most severe first.
    pub diagnostics: Vec<Diagnostic>,
    /// The refined triggering graph (render with
    /// [`TriggeringGraph::to_dot`]).
    pub graph: TriggeringGraph,
    /// Per-rule termination verdicts and the cycle-discharge record.
    pub termination: TerminationReport,
}

impl AnalysisReport {
    /// Restore the severity-first sort order after appending findings
    /// (e.g. runtime effect-mismatch diffs).
    pub fn resort(&mut self) {
        self.diagnostics.sort_by(|a, b| {
            b.severity
                .cmp(&a.severity)
                .then_with(|| a.code.cmp(&b.code))
                .then_with(|| a.rule.cmp(&b.rule))
                .then_with(|| a.message.cmp(&b.message))
        });
    }

    /// Any error-severity findings?
    pub fn has_errors(&self) -> bool {
        self.count(Severity::Error) > 0
    }

    /// Findings at exactly `severity`.
    pub fn count(&self, severity: Severity) -> usize {
        self.diagnostics
            .iter()
            .filter(|d| d.severity == severity)
            .count()
    }

    /// The error-severity findings.
    pub fn errors(&self) -> impl Iterator<Item = &Diagnostic> {
        self.diagnostics
            .iter()
            .filter(|d| d.severity == Severity::Error)
    }

    /// `"N errors, M warnings, K infos across R rules"`.
    pub fn summary(&self) -> String {
        format!(
            "{} errors, {} warnings, {} infos across {} rules",
            self.count(Severity::Error),
            self.count(Severity::Warning),
            self.count(Severity::Info),
            self.graph.nodes.len()
        )
    }

    /// Fixed-width diagnostic table (the shell's `analyze` output).
    pub fn render_table(&self) -> String {
        use std::fmt::Write;
        let mut s = String::new();
        if self.diagnostics.is_empty() {
            s.push_str("no findings\n");
        } else {
            let rule_w = self
                .diagnostics
                .iter()
                .map(|d| d.rule.as_deref().unwrap_or("-").len())
                .max()
                .unwrap_or(1)
                .max(4);
            let code_w = self
                .diagnostics
                .iter()
                .map(|d| d.code.as_str().len())
                .max()
                .unwrap_or(4)
                .max(4);
            let _ = writeln!(
                s,
                "{:<8} {:<code_w$} {:<rule_w$} MESSAGE",
                "SEVERITY", "CODE", "RULE"
            );
            for d in &self.diagnostics {
                let _ = writeln!(
                    s,
                    "{:<8} {:<code_w$} {:<rule_w$} {}",
                    d.severity.to_string(),
                    d.code.as_str(),
                    d.rule.as_deref().unwrap_or("-"),
                    d.message
                );
            }
        }
        let refuted = self.graph.count(EdgeKind::Refuted);
        let live = self.graph.edges.len() - refuted;
        let _ = writeln!(
            s,
            "triggering graph: {} rules, {} edges ({} refuted) | termination: {} | {}",
            self.graph.nodes.len(),
            live,
            refuted,
            self.termination.summary(),
            self.summary()
        );
        s
    }

    /// DOT dump of the triggering graph.
    pub fn to_dot(&self) -> String {
        self.graph.to_dot()
    }

    /// The whole report as pretty-printed JSON — a stable schema for CI
    /// tooling: `diagnostics` (code/severity/rule/message), `graph`
    /// (nodes/edges with their refinement `kind`), and `termination`
    /// (verdicts/discharged/undischarged).
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("report serializes")
    }

    /// The CI gate: `Err` listing every error-severity finding, `Ok`
    /// otherwise (warnings and infos pass).
    pub fn gate(&self) -> Result<()> {
        if !self.has_errors() {
            return Ok(());
        }
        let mut msg = String::from("rule-set analysis found errors:");
        for d in self.errors() {
            msg.push_str("\n  ");
            msg.push_str(&d.to_string());
        }
        Err(ObjectError::App(msg))
    }
}
