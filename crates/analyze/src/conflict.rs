//! Compiled conflict matrix — the static analysis, made dispatchable.
//!
//! The triggering graph and declared write-sets already answer "which
//! rules can interfere with which"; this module compiles that answer
//! into a form the runtime scheduler can consult per firing without
//! re-running the analyzer:
//!
//! * each **eligible** rule (enabled, non-immediate coupling, declared
//!   effects that raise nothing) is assigned a **conflict component** —
//!   rules whose declared write-sets may overlap (same attribute on
//!   subclass-related classes) share a component;
//! * every other rule is marked serial with the reason, so stats and
//!   diagnostics can say *why* the fast path was skipped.
//!
//! Rules that raise events are excluded even when their raises are
//! declared: a raise schedules further firings whose relative order the
//! serial semantics fixes, so running the raiser concurrently would need
//! cross-group ordering the scheduler does not attempt. Immediate
//! firings run inside the triggering call stack and are inherently
//! serial.
//!
//! The matrix is a pure function of `(rule set, body registry, schema)`;
//! [`ConflictMatrix::is_fresh`] checks the same version stamps the
//! engine's routing index uses, so callers cache the matrix and rebuild
//! only on rule-set or effects change.

use sentinel_object::ClassRegistry;
use sentinel_rules::{AttrPattern, CouplingMode, RuleEngine, RuleId};
use std::collections::HashMap;
use std::sync::Arc;

/// Why a rule is confined to the serial execution path.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SerialReason {
    /// The rule's action has no declared effects — it may write or raise
    /// anything, so it conflicts with everything.
    UnknownEffects,
    /// The action's declared effects include raised events; the firings
    /// it schedules must observe the serial order.
    RaisesEvents,
    /// Immediate coupling executes inside the triggering send.
    ImmediateCoupling,
    /// The rule is disabled (it cannot fire at all).
    Disabled,
}

impl SerialReason {
    /// Human-readable label for diagnostics and stats.
    pub fn as_str(&self) -> &'static str {
        match self {
            SerialReason::UnknownEffects => "effects unknown",
            SerialReason::RaisesEvents => "raises events",
            SerialReason::ImmediateCoupling => "immediate coupling",
            SerialReason::Disabled => "disabled",
        }
    }
}

/// The execution lane the matrix assigns a rule.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Lane {
    /// Eligible for concurrent execution, in the given conflict
    /// component. Firings of rules in *different* components never
    /// interfere; firings within one component are serialized by the
    /// scheduler (further sharded by target oid).
    Parallel {
        /// Dense component id, `0..component_count`.
        component: u32,
    },
    /// Must run on the serial path.
    Serial(SerialReason),
}

/// The compiled matrix: per-rule lanes plus the version stamps they were
/// derived from.
#[derive(Debug, Clone)]
pub struct ConflictMatrix {
    lanes: HashMap<RuleId, Lane>,
    /// Parallel lanes only, in the shape the engine stamps onto firings.
    tags: Arc<HashMap<RuleId, u32>>,
    components: u32,
    epoch: u64,
    bodies_version: u64,
    schema_len: usize,
}

/// Do two declared write patterns possibly touch the same attribute?
/// Same attribute name, and the classes subclass-related in either
/// direction (a write to `Employee.salary` conflicts with a write to
/// `Manager.salary`). Classes unknown to the registry compare by name.
fn writes_overlap(registry: &ClassRegistry, a: &AttrPattern, b: &AttrPattern) -> bool {
    if a.attr != b.attr {
        return false;
    }
    match (registry.id_of(&a.class), registry.id_of(&b.class)) {
        (Ok(ca), Ok(cb)) => registry.is_subclass(ca, cb) || registry.is_subclass(cb, ca),
        _ => a.class == b.class,
    }
}

/// Path-compressing union-find root lookup.
fn find(parent: &mut [usize], mut i: usize) -> usize {
    while parent[i] != i {
        parent[i] = parent[parent[i]];
        i = parent[i];
    }
    i
}

impl ConflictMatrix {
    /// Compile the matrix for the engine's current rule set against the
    /// given schema.
    pub fn build(registry: &ClassRegistry, engine: &RuleEngine) -> Self {
        let mut lanes = HashMap::new();
        // (rule, write-set) of each parallel-eligible rule.
        let mut eligible: Vec<(RuleId, Vec<AttrPattern>)> = Vec::new();
        for rule in engine.iter_rules() {
            let lane = if !rule.enabled {
                Err(SerialReason::Disabled)
            } else if rule.def.coupling == CouplingMode::Immediate {
                Err(SerialReason::ImmediateCoupling)
            } else {
                match engine.bodies.action_effects(&rule.def.action) {
                    None => Err(SerialReason::UnknownEffects),
                    Some(fx) if !fx.raises.is_empty() => Err(SerialReason::RaisesEvents),
                    Some(fx) => {
                        eligible.push((rule.id, fx.writes.clone()));
                        Ok(())
                    }
                }
            };
            if let Err(reason) = lane {
                lanes.insert(rule.id, Lane::Serial(reason));
            }
        }
        // Deterministic component numbering regardless of HashMap order.
        eligible.sort_by_key(|(id, _)| *id);

        // Union rules whose write-sets may overlap. Rule sets are small
        // and write-sets smaller; the quadratic sweep is not a cost.
        let mut parent: Vec<usize> = (0..eligible.len()).collect();
        for i in 0..eligible.len() {
            for j in (i + 1)..eligible.len() {
                let conflicted = eligible[i]
                    .1
                    .iter()
                    .any(|a| eligible[j].1.iter().any(|b| writes_overlap(registry, a, b)));
                if conflicted {
                    let (ri, rj) = (find(&mut parent, i), find(&mut parent, j));
                    if ri != rj {
                        parent[ri] = rj;
                    }
                }
            }
        }
        let mut component_of_root: HashMap<usize, u32> = HashMap::new();
        let mut tags = HashMap::new();
        for (i, (rule_id, _)) in eligible.iter().enumerate() {
            let root = find(&mut parent, i);
            let next = component_of_root.len() as u32;
            let component = *component_of_root.entry(root).or_insert(next);
            lanes.insert(*rule_id, Lane::Parallel { component });
            tags.insert(*rule_id, component);
        }

        ConflictMatrix {
            lanes,
            tags: Arc::new(tags),
            components: component_of_root.len() as u32,
            epoch: engine.epoch(),
            bodies_version: engine.bodies.version(),
            schema_len: registry.len(),
        }
    }

    /// Is the matrix still valid for the engine's current rule set,
    /// body registry, and schema? Mirrors the engine's routing-index
    /// freshness check.
    pub fn is_fresh(&self, registry: &ClassRegistry, engine: &RuleEngine) -> bool {
        self.epoch == engine.epoch()
            && self.bodies_version == engine.bodies.version()
            && self.schema_len == registry.len()
    }

    /// The lane assigned to `rule` (`None` for rules added after the
    /// matrix was built — treat as serial).
    pub fn lane(&self, rule: RuleId) -> Option<Lane> {
        self.lanes.get(&rule).copied()
    }

    /// The parallel-lane tags in the shape
    /// [`RuleEngine::set_conflict_tags`] accepts.
    pub fn tags(&self) -> Arc<HashMap<RuleId, u32>> {
        Arc::clone(&self.tags)
    }

    /// Number of distinct conflict components among eligible rules.
    pub fn component_count(&self) -> u32 {
        self.components
    }

    /// Number of rules eligible for the parallel lane.
    pub fn parallel_rules(&self) -> usize {
        self.tags.len()
    }

    /// Number of rules confined to the serial path (including disabled
    /// ones).
    pub fn serial_rules(&self) -> usize {
        self.lanes.len() - self.tags.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sentinel_events::{EventExpr, PrimitiveEventSpec};
    use sentinel_object::{ClassDecl, ClassRegistry, Oid};
    use sentinel_rules::{ActionDef, ActionEffects, RuleDef};

    fn registry() -> ClassRegistry {
        let mut reg = ClassRegistry::new();
        reg.define(
            ClassDecl::reactive("Account")
                .method("Deposit", &[])
                .method("Audit", &[]),
        )
        .unwrap();
        reg.define(ClassDecl::reactive("Savings").parent("Account"))
            .unwrap();
        reg.define(ClassDecl::reactive("Ledger").method("Post", &[]))
            .unwrap();
        reg
    }

    fn deferred_rule(name: &str, class: &str, method: &str, action: &str) -> RuleDef {
        RuleDef::new(
            name,
            EventExpr::primitive(PrimitiveEventSpec::end(class, method)),
            action,
        )
        .coupling(CouplingMode::Deferred)
    }

    fn engine(_reg: &ClassRegistry) -> RuleEngine {
        let mut eng = RuleEngine::new();
        eng.bodies
            .register_def(
                ActionDef::new("w-balance")
                    .writes(("Account", "balance"))
                    .body(|_, _| Ok(())),
            )
            .unwrap();
        eng.bodies
            .register_def(
                ActionDef::new("w-savings-balance")
                    .writes(("Savings", "balance"))
                    .body(|_, _| Ok(())),
            )
            .unwrap();
        eng.bodies
            .register_def(
                ActionDef::new("w-total")
                    .writes(("Ledger", "total"))
                    .body(|_, _| Ok(())),
            )
            .unwrap();
        eng.bodies.register_action("opaque", |_, _| Ok(()));
        eng.bodies.register_action_with_effects(
            "raiser",
            ActionEffects::none().raising("Account", "Audit"),
            |_, _| Ok(()),
        );
        eng
    }

    #[test]
    fn overlapping_writes_share_a_component() {
        let reg = registry();
        let mut eng = engine(&reg);
        let a = eng
            .add_rule(
                deferred_rule("A", "Account", "Deposit", "w-balance"),
                Oid::NIL,
                &reg,
            )
            .unwrap();
        // Subclass-related class, same attribute: conflicts with A.
        let b = eng
            .add_rule(
                deferred_rule("B", "Account", "Deposit", "w-savings-balance"),
                Oid::NIL,
                &reg,
            )
            .unwrap();
        // Disjoint class/attribute: its own component.
        let c = eng
            .add_rule(
                deferred_rule("C", "Ledger", "Post", "w-total"),
                Oid::NIL,
                &reg,
            )
            .unwrap();
        let m = ConflictMatrix::build(&reg, &eng);
        assert_eq!(m.component_count(), 2);
        assert_eq!(m.parallel_rules(), 3);
        let comp = |r| match m.lane(r) {
            Some(Lane::Parallel { component }) => component,
            other => panic!("expected parallel lane, got {other:?}"),
        };
        assert_eq!(comp(a), comp(b));
        assert_ne!(comp(a), comp(c));
    }

    #[test]
    fn ineligible_rules_get_serial_reasons() {
        let reg = registry();
        let mut eng = engine(&reg);
        let imm = eng
            .add_rule(
                RuleDef::new(
                    "Imm",
                    EventExpr::primitive(PrimitiveEventSpec::end("Account", "Deposit")),
                    "w-balance",
                ),
                Oid::NIL,
                &reg,
            )
            .unwrap();
        let unk = eng
            .add_rule(
                deferred_rule("Unk", "Account", "Deposit", "opaque"),
                Oid::NIL,
                &reg,
            )
            .unwrap();
        let rai = eng
            .add_rule(
                deferred_rule("Rai", "Account", "Deposit", "raiser"),
                Oid::NIL,
                &reg,
            )
            .unwrap();
        let dis = eng
            .add_rule(
                deferred_rule("Dis", "Ledger", "Post", "w-total"),
                Oid::NIL,
                &reg,
            )
            .unwrap();
        eng.disable(dis).unwrap();
        let m = ConflictMatrix::build(&reg, &eng);
        assert_eq!(
            m.lane(imm),
            Some(Lane::Serial(SerialReason::ImmediateCoupling))
        );
        assert_eq!(
            m.lane(unk),
            Some(Lane::Serial(SerialReason::UnknownEffects))
        );
        assert_eq!(m.lane(rai), Some(Lane::Serial(SerialReason::RaisesEvents)));
        assert_eq!(m.lane(dis), Some(Lane::Serial(SerialReason::Disabled)));
        assert_eq!(m.parallel_rules(), 0);
        assert_eq!(m.serial_rules(), 4);
    }

    #[test]
    fn freshness_tracks_rule_set_and_effects_changes() {
        let reg = registry();
        let mut eng = engine(&reg);
        eng.add_rule(
            deferred_rule("A", "Account", "Deposit", "w-balance"),
            Oid::NIL,
            &reg,
        )
        .unwrap();
        let m = ConflictMatrix::build(&reg, &eng);
        assert!(m.is_fresh(&reg, &eng));
        // Adding a rule bumps the epoch.
        eng.add_rule(
            deferred_rule("B", "Ledger", "Post", "w-total"),
            Oid::NIL,
            &reg,
        )
        .unwrap();
        assert!(!m.is_fresh(&reg, &eng));
        // Re-declaring effects bumps the body-registry version.
        let m = ConflictMatrix::build(&reg, &eng);
        assert!(m.is_fresh(&reg, &eng));
        eng.bodies
            .declare_action_effects("w-total", ActionEffects::none())
            .unwrap();
        assert!(!m.is_fresh(&reg, &eng));
    }

    #[test]
    fn tags_cover_exactly_the_parallel_rules() {
        let reg = registry();
        let mut eng = engine(&reg);
        let a = eng
            .add_rule(
                deferred_rule("A", "Account", "Deposit", "w-balance"),
                Oid::NIL,
                &reg,
            )
            .unwrap();
        let u = eng
            .add_rule(
                deferred_rule("U", "Account", "Deposit", "opaque"),
                Oid::NIL,
                &reg,
            )
            .unwrap();
        let m = ConflictMatrix::build(&reg, &eng);
        let tags = m.tags();
        assert!(tags.contains_key(&a));
        assert!(!tags.contains_key(&u));
    }
}
