//! Compiled conflict matrix — the static analysis, made dispatchable.
//!
//! The triggering graph and declared effects footprints already answer
//! "which rules can interfere with which"; this module compiles that
//! answer into a form the runtime scheduler can consult per firing
//! without re-running the analyzer:
//!
//! * each **eligible** rule (enabled, non-immediate coupling, declared
//!   effects that raise nothing and carry a declared read-set) is
//!   assigned a **conflict component** — rules whose footprints exhibit
//!   a write-write *or read-write* overlap (same attribute on
//!   subclass-related classes) share a component;
//! * every other rule is marked serial with the reason, so stats and
//!   diagnostics can say *why* the fast path was skipped.
//!
//! Read dependencies matter as much as writes: a rule whose condition
//! or action reads an attribute another rule writes would observe
//! worker interleaving if the two ran concurrently, so a read-write
//! overlap unions their components exactly like a write-write overlap.
//! A rule whose action declares writes but no read-set
//! ([`ActionEffects::reads`](sentinel_rules::ActionEffects) `= None`)
//! is conservatively treated as able to read *anything* and is pinned
//! to the serial lane ([`SerialReason::UnknownReads`]).
//!
//! Rules that raise events are excluded even when their raises are
//! declared: a raise schedules further firings whose relative order the
//! serial semantics fixes, so running the raiser concurrently would need
//! cross-group ordering the scheduler does not attempt. Immediate
//! firings run inside the triggering call stack and are inherently
//! serial.
//!
//! The matrix is a pure function of `(rule set, body registry, schema)`;
//! [`ConflictMatrix::is_fresh`] checks the same version stamps the
//! engine's routing index uses, so callers cache the matrix and rebuild
//! only on rule-set or effects change.

use sentinel_object::{ClassId, ClassRegistry};
use sentinel_rules::{AttrPattern, CouplingMode, RuleEngine, RuleId};
use std::collections::HashMap;
use std::sync::Arc;

/// Why a rule is confined to the serial execution path.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SerialReason {
    /// The rule's action has no declared effects — it may write or raise
    /// anything, so it conflicts with everything.
    UnknownEffects,
    /// The action declares writes but no read-set — it may read
    /// anything, including attributes concurrent firings write, so its
    /// condition and action outcomes could depend on worker
    /// interleaving.
    UnknownReads,
    /// The action's declared effects include raised events; the firings
    /// it schedules must observe the serial order.
    RaisesEvents,
    /// Immediate coupling executes inside the triggering send.
    ImmediateCoupling,
    /// The rule is disabled (it cannot fire at all).
    Disabled,
}

impl SerialReason {
    /// Human-readable label for diagnostics and stats.
    pub fn as_str(&self) -> &'static str {
        match self {
            SerialReason::UnknownEffects => "effects unknown",
            SerialReason::UnknownReads => "read-set unknown",
            SerialReason::RaisesEvents => "raises events",
            SerialReason::ImmediateCoupling => "immediate coupling",
            SerialReason::Disabled => "disabled",
        }
    }
}

/// The execution lane the matrix assigns a rule.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Lane {
    /// Eligible for concurrent execution, in the given conflict
    /// component. Firings of rules in *different* components never
    /// interfere; firings within one component are serialized by the
    /// scheduler (further sharded by target oid).
    Parallel {
        /// Dense component id, `0..component_count`.
        component: u32,
    },
    /// Must run on the serial path.
    Serial(SerialReason),
}

/// The declared data footprint of a parallel-eligible rule, in the
/// shape the scheduler's worker shim verifies at runtime.
#[derive(Debug, Clone)]
pub struct RuleFootprint {
    /// Attributes the firing may write (the action's declared writes).
    pub writes: Arc<Vec<AttrPattern>>,
    /// Everything the firing may read: the declared read-set *plus* the
    /// declared writes (written attributes are implicitly readable).
    pub reads: Arc<Vec<AttrPattern>>,
}

/// The compiled matrix: per-rule lanes plus the version stamps they were
/// derived from.
#[derive(Debug, Clone)]
pub struct ConflictMatrix {
    lanes: HashMap<RuleId, Lane>,
    /// Parallel lanes only, in the shape the engine stamps onto firings.
    tags: Arc<HashMap<RuleId, u32>>,
    /// Declared footprints of the parallel-lane rules, for the
    /// scheduler's runtime access guard.
    footprints: Arc<HashMap<RuleId, RuleFootprint>>,
    /// Deduplicated union of every parallel rule's write patterns — the
    /// attributes some concurrent firing might be writing while a batch
    /// is in flight.
    shared_writes: Arc<Vec<AttrPattern>>,
    components: u32,
    epoch: u64,
    bodies_version: u64,
    schema_len: usize,
}

/// Do two declared attribute patterns possibly touch the same
/// attribute? Same attribute name, and the classes subclass-related in
/// either direction (a write to `Employee.salary` conflicts with a
/// write to `Manager.salary`). Classes unknown to the registry compare
/// by name.
pub(crate) fn attrs_overlap(registry: &ClassRegistry, a: &AttrPattern, b: &AttrPattern) -> bool {
    if a.attr != b.attr {
        return false;
    }
    match (registry.id_of(&a.class), registry.id_of(&b.class)) {
        (Ok(ca), Ok(cb)) => registry.is_subclass(ca, cb) || registry.is_subclass(cb, ca),
        _ => a.class == b.class,
    }
}

/// Does a declared pattern cover a concrete `(class, attr)` access?
/// The same subclass-closed relation [`ConflictMatrix::build`] unions
/// components with, so any access passing this check was accounted for
/// by the static grouping. Used by the scheduler's worker shim to
/// verify declared footprints at runtime.
pub fn pattern_matches(
    registry: &ClassRegistry,
    pattern: &AttrPattern,
    class: ClassId,
    attr: &str,
) -> bool {
    if pattern.attr != attr {
        return false;
    }
    match registry.id_of(&pattern.class) {
        Ok(pc) => registry.is_subclass(class, pc) || registry.is_subclass(pc, class),
        Err(_) => registry.get(class).name == pattern.class,
    }
}

/// Path-compressing union-find root lookup.
fn find(parent: &mut [usize], mut i: usize) -> usize {
    while parent[i] != i {
        parent[i] = parent[parent[i]];
        i = parent[i];
    }
    i
}

impl ConflictMatrix {
    /// Compile the matrix for the engine's current rule set against the
    /// given schema.
    pub fn build(registry: &ClassRegistry, engine: &RuleEngine) -> Self {
        let mut lanes = HashMap::new();
        // (rule, writes, full read-set = declared reads ∪ writes) of
        // each parallel-eligible rule.
        let mut eligible: Vec<(RuleId, Vec<AttrPattern>, Vec<AttrPattern>)> = Vec::new();
        for rule in engine.iter_rules() {
            let lane = if !rule.enabled {
                Err(SerialReason::Disabled)
            } else if rule.def.coupling == CouplingMode::Immediate {
                Err(SerialReason::ImmediateCoupling)
            } else {
                match engine.bodies.action_effects(&rule.def.action) {
                    None => Err(SerialReason::UnknownEffects),
                    Some(fx) if !fx.raises.is_empty() => Err(SerialReason::RaisesEvents),
                    Some(fx) => match &fx.reads {
                        None => Err(SerialReason::UnknownReads),
                        Some(reads) => {
                            let mut full_reads = fx.writes.clone();
                            for r in reads {
                                if !full_reads.contains(r) {
                                    full_reads.push(r.clone());
                                }
                            }
                            eligible.push((rule.id, fx.writes.clone(), full_reads));
                            Ok(())
                        }
                    },
                }
            };
            if let Err(reason) = lane {
                lanes.insert(rule.id, Lane::Serial(reason));
            }
        }
        // Deterministic component numbering regardless of HashMap order.
        eligible.sort_by_key(|(id, ..)| *id);

        // Union rules that may interfere: a write-write overlap, or a
        // read-write overlap in either direction (a firing that reads
        // what another writes would observe worker interleaving). The
        // read-sets include the writes, so checking reads-vs-writes
        // both ways subsumes the write-write case. Rule sets are small
        // and footprints smaller; the quadratic sweep is not a cost.
        let mut parent: Vec<usize> = (0..eligible.len()).collect();
        for i in 0..eligible.len() {
            for j in (i + 1)..eligible.len() {
                let (_, ref wi, ref ri) = eligible[i];
                let (_, ref wj, ref rj) = eligible[j];
                let conflicted = ri
                    .iter()
                    .any(|a| wj.iter().any(|b| attrs_overlap(registry, a, b)))
                    || wi
                        .iter()
                        .any(|a| rj.iter().any(|b| attrs_overlap(registry, a, b)));
                if conflicted {
                    let (pi, pj) = (find(&mut parent, i), find(&mut parent, j));
                    if pi != pj {
                        parent[pi] = pj;
                    }
                }
            }
        }
        let mut component_of_root: HashMap<usize, u32> = HashMap::new();
        let mut tags = HashMap::new();
        let mut footprints = HashMap::new();
        let mut shared_writes: Vec<AttrPattern> = Vec::new();
        for (i, (rule_id, writes, full_reads)) in eligible.iter().enumerate() {
            let root = find(&mut parent, i);
            let next = component_of_root.len() as u32;
            let component = *component_of_root.entry(root).or_insert(next);
            lanes.insert(*rule_id, Lane::Parallel { component });
            tags.insert(*rule_id, component);
            for w in writes {
                if !shared_writes.contains(w) {
                    shared_writes.push(w.clone());
                }
            }
            footprints.insert(
                *rule_id,
                RuleFootprint {
                    writes: Arc::new(writes.clone()),
                    reads: Arc::new(full_reads.clone()),
                },
            );
        }

        ConflictMatrix {
            lanes,
            tags: Arc::new(tags),
            footprints: Arc::new(footprints),
            shared_writes: Arc::new(shared_writes),
            components: component_of_root.len() as u32,
            epoch: engine.epoch(),
            bodies_version: engine.bodies.version(),
            schema_len: registry.len(),
        }
    }

    /// Is the matrix still valid for the engine's current rule set,
    /// body registry, and schema? Mirrors the engine's routing-index
    /// freshness check.
    pub fn is_fresh(&self, registry: &ClassRegistry, engine: &RuleEngine) -> bool {
        self.epoch == engine.epoch()
            && self.bodies_version == engine.bodies.version()
            && self.schema_len == registry.len()
    }

    /// The lane assigned to `rule` (`None` for rules added after the
    /// matrix was built — treat as serial).
    pub fn lane(&self, rule: RuleId) -> Option<Lane> {
        self.lanes.get(&rule).copied()
    }

    /// The parallel-lane tags in the shape
    /// [`RuleEngine::set_conflict_tags`] accepts.
    pub fn tags(&self) -> Arc<HashMap<RuleId, u32>> {
        Arc::clone(&self.tags)
    }

    /// Declared footprints of the parallel-lane rules, keyed by rule —
    /// what the scheduler's worker shim verifies each access against.
    pub fn footprints(&self) -> Arc<HashMap<RuleId, RuleFootprint>> {
        Arc::clone(&self.footprints)
    }

    /// Deduplicated union of every parallel rule's declared write
    /// patterns. An attribute *outside* this set cannot be written by
    /// any concurrent firing, so reading it from a worker is always
    /// safe.
    pub fn shared_writes(&self) -> Arc<Vec<AttrPattern>> {
        Arc::clone(&self.shared_writes)
    }

    /// Number of distinct conflict components among eligible rules.
    pub fn component_count(&self) -> u32 {
        self.components
    }

    /// Number of rules eligible for the parallel lane.
    pub fn parallel_rules(&self) -> usize {
        self.tags.len()
    }

    /// Number of rules confined to the serial path (including disabled
    /// ones).
    pub fn serial_rules(&self) -> usize {
        self.lanes.len() - self.tags.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sentinel_events::{EventExpr, PrimitiveEventSpec};
    use sentinel_object::{ClassDecl, ClassRegistry, Oid};
    use sentinel_rules::{ActionDef, ActionEffects, RuleDef};

    fn registry() -> ClassRegistry {
        let mut reg = ClassRegistry::new();
        reg.define(
            ClassDecl::reactive("Account")
                .method("Deposit", &[])
                .method("Audit", &[]),
        )
        .unwrap();
        reg.define(ClassDecl::reactive("Savings").parent("Account"))
            .unwrap();
        reg.define(ClassDecl::reactive("Ledger").method("Post", &[]))
            .unwrap();
        reg
    }

    fn deferred_rule(name: &str, class: &str, method: &str, action: &str) -> RuleDef {
        RuleDef::new(
            name,
            EventExpr::primitive(PrimitiveEventSpec::end(class, method)),
            action,
        )
        .coupling(CouplingMode::Deferred)
    }

    fn engine(_reg: &ClassRegistry) -> RuleEngine {
        let mut eng = RuleEngine::new();
        eng.bodies
            .register_def(
                ActionDef::new("w-balance")
                    .writes(("Account", "balance"))
                    .body(|_, _| Ok(())),
            )
            .unwrap();
        eng.bodies
            .register_def(
                ActionDef::new("w-savings-balance")
                    .writes(("Savings", "balance"))
                    .body(|_, _| Ok(())),
            )
            .unwrap();
        eng.bodies
            .register_def(
                ActionDef::new("w-total")
                    .writes(("Ledger", "total"))
                    .body(|_, _| Ok(())),
            )
            .unwrap();
        eng.bodies.register_action("opaque", |_, _| Ok(()));
        eng.bodies.register_action_with_effects(
            "raiser",
            ActionEffects::none().raising("Account", "Audit"),
            |_, _| Ok(()),
        );
        eng.bodies.register_action_with_effects(
            "blind-reader",
            ActionEffects::none()
                .writing("Ledger", "total")
                .reads_unknown(),
            |_, _| Ok(()),
        );
        eng.bodies
            .register_def(
                ActionDef::new("r-balance-w-total")
                    .writes(("Ledger", "total"))
                    .reads(("Account", "balance"))
                    .body(|_, _| Ok(())),
            )
            .unwrap();
        eng
    }

    #[test]
    fn overlapping_writes_share_a_component() {
        let reg = registry();
        let mut eng = engine(&reg);
        let a = eng
            .add_rule(
                deferred_rule("A", "Account", "Deposit", "w-balance"),
                Oid::NIL,
                &reg,
            )
            .unwrap();
        // Subclass-related class, same attribute: conflicts with A.
        let b = eng
            .add_rule(
                deferred_rule("B", "Account", "Deposit", "w-savings-balance"),
                Oid::NIL,
                &reg,
            )
            .unwrap();
        // Disjoint class/attribute: its own component.
        let c = eng
            .add_rule(
                deferred_rule("C", "Ledger", "Post", "w-total"),
                Oid::NIL,
                &reg,
            )
            .unwrap();
        let m = ConflictMatrix::build(&reg, &eng);
        assert_eq!(m.component_count(), 2);
        assert_eq!(m.parallel_rules(), 3);
        let comp = |r| match m.lane(r) {
            Some(Lane::Parallel { component }) => component,
            other => panic!("expected parallel lane, got {other:?}"),
        };
        assert_eq!(comp(a), comp(b));
        assert_ne!(comp(a), comp(c));
    }

    #[test]
    fn read_write_overlap_unions_components() {
        let reg = registry();
        let mut eng = engine(&reg);
        // A writes Account.balance; R writes Ledger.total but *reads*
        // Account.balance — running them concurrently would let R's
        // reads observe worker interleaving, so they must share a
        // component despite disjoint write-sets.
        let a = eng
            .add_rule(
                deferred_rule("A", "Account", "Deposit", "w-balance"),
                Oid::NIL,
                &reg,
            )
            .unwrap();
        let r = eng
            .add_rule(
                deferred_rule("R", "Ledger", "Post", "r-balance-w-total"),
                Oid::NIL,
                &reg,
            )
            .unwrap();
        let m = ConflictMatrix::build(&reg, &eng);
        assert_eq!(m.component_count(), 1);
        let comp = |r| match m.lane(r) {
            Some(Lane::Parallel { component }) => component,
            other => panic!("expected parallel lane, got {other:?}"),
        };
        assert_eq!(comp(a), comp(r));
    }

    #[test]
    fn undeclared_read_set_is_serial() {
        let reg = registry();
        let mut eng = engine(&reg);
        let b = eng
            .add_rule(
                deferred_rule("Blind", "Ledger", "Post", "blind-reader"),
                Oid::NIL,
                &reg,
            )
            .unwrap();
        let m = ConflictMatrix::build(&reg, &eng);
        assert_eq!(m.lane(b), Some(Lane::Serial(SerialReason::UnknownReads)));
        assert!(!m.tags().contains_key(&b));
    }

    #[test]
    fn footprints_cover_reads_and_writes() {
        let reg = registry();
        let mut eng = engine(&reg);
        let r = eng
            .add_rule(
                deferred_rule("R", "Ledger", "Post", "r-balance-w-total"),
                Oid::NIL,
                &reg,
            )
            .unwrap();
        let m = ConflictMatrix::build(&reg, &eng);
        let fp = &m.footprints()[&r];
        assert_eq!(fp.writes.as_slice(), [AttrPattern::new("Ledger", "total")]);
        // Full read-set = writes ∪ declared reads.
        assert!(fp.reads.contains(&AttrPattern::new("Ledger", "total")));
        assert!(fp.reads.contains(&AttrPattern::new("Account", "balance")));
        assert!(m
            .shared_writes()
            .contains(&AttrPattern::new("Ledger", "total")));
        // pattern_matches closes over subclasses in both directions.
        let savings = reg.id_of("Savings").unwrap();
        let p = AttrPattern::new("Account", "balance");
        assert!(pattern_matches(&reg, &p, savings, "balance"));
        assert!(!pattern_matches(&reg, &p, savings, "total"));
        let ledger = reg.id_of("Ledger").unwrap();
        assert!(!pattern_matches(&reg, &p, ledger, "balance"));
    }

    #[test]
    fn ineligible_rules_get_serial_reasons() {
        let reg = registry();
        let mut eng = engine(&reg);
        let imm = eng
            .add_rule(
                RuleDef::new(
                    "Imm",
                    EventExpr::primitive(PrimitiveEventSpec::end("Account", "Deposit")),
                    "w-balance",
                ),
                Oid::NIL,
                &reg,
            )
            .unwrap();
        let unk = eng
            .add_rule(
                deferred_rule("Unk", "Account", "Deposit", "opaque"),
                Oid::NIL,
                &reg,
            )
            .unwrap();
        let rai = eng
            .add_rule(
                deferred_rule("Rai", "Account", "Deposit", "raiser"),
                Oid::NIL,
                &reg,
            )
            .unwrap();
        let dis = eng
            .add_rule(
                deferred_rule("Dis", "Ledger", "Post", "w-total"),
                Oid::NIL,
                &reg,
            )
            .unwrap();
        eng.disable(dis).unwrap();
        let m = ConflictMatrix::build(&reg, &eng);
        assert_eq!(
            m.lane(imm),
            Some(Lane::Serial(SerialReason::ImmediateCoupling))
        );
        assert_eq!(
            m.lane(unk),
            Some(Lane::Serial(SerialReason::UnknownEffects))
        );
        assert_eq!(m.lane(rai), Some(Lane::Serial(SerialReason::RaisesEvents)));
        assert_eq!(m.lane(dis), Some(Lane::Serial(SerialReason::Disabled)));
        assert_eq!(m.parallel_rules(), 0);
        assert_eq!(m.serial_rules(), 4);
    }

    #[test]
    fn freshness_tracks_rule_set_and_effects_changes() {
        let reg = registry();
        let mut eng = engine(&reg);
        eng.add_rule(
            deferred_rule("A", "Account", "Deposit", "w-balance"),
            Oid::NIL,
            &reg,
        )
        .unwrap();
        let m = ConflictMatrix::build(&reg, &eng);
        assert!(m.is_fresh(&reg, &eng));
        // Adding a rule bumps the epoch.
        eng.add_rule(
            deferred_rule("B", "Ledger", "Post", "w-total"),
            Oid::NIL,
            &reg,
        )
        .unwrap();
        assert!(!m.is_fresh(&reg, &eng));
        // Re-declaring effects bumps the body-registry version.
        let m = ConflictMatrix::build(&reg, &eng);
        assert!(m.is_fresh(&reg, &eng));
        eng.bodies
            .declare_action_effects("w-total", ActionEffects::none())
            .unwrap();
        assert!(!m.is_fresh(&reg, &eng));
    }

    #[test]
    fn tags_cover_exactly_the_parallel_rules() {
        let reg = registry();
        let mut eng = engine(&reg);
        let a = eng
            .add_rule(
                deferred_rule("A", "Account", "Deposit", "w-balance"),
                Oid::NIL,
                &reg,
            )
            .unwrap();
        let u = eng
            .add_rule(
                deferred_rule("U", "Account", "Deposit", "opaque"),
                Oid::NIL,
                &reg,
            )
            .unwrap();
        let m = ConflictMatrix::build(&reg, &eng);
        let tags = m.tags();
        assert!(tags.contains_key(&a));
        assert!(!tags.contains_key(&u));
    }
}
