//! The termination prover: discharges triggering cycles and derives a
//! static cascade-depth bound per rule.
//!
//! Works on the refined [`TriggeringGraph`] (definite / conservative /
//! refuted edges). The proof obligation is the classic one for active
//! rules (Flesca & Greco): the triggering relation, restricted to edges
//! that can actually carry a firing, must be well-founded. Refuted
//! edges are already out; what remains is to discharge the cycles among
//! live edges and take the longest path over the acyclic condensation.
//!
//! The prover distinguishes two flavours of conservative edge. An
//! "effects unknown" edge (source never declared its raises) may
//! *schedule* real firings, exactly like a definite edge. A "data
//! feedback" edge (source's raises are declared and provably miss the
//! target's alphabet, but its writes touch the target's read-set) can
//! only re-enable the target's condition — in this engine a firing is
//! scheduled by an event raise, never by a data write, so data-feedback
//! edges contribute activation but no cascade depth.
//!
//! A cycle is *discharged* when some member rule provably cannot keep
//! the cycle alive:
//!
//! - **abort-shadowed** — every occurrence that triggers the rule also
//!   triggers an unconditional higher-priority abort, so the cascade
//!   dies at this rule;
//! - **no self-feedback** — the rule's condition is non-trivial, its
//!   read-set is declared, and no member of the cycle (itself included)
//!   writes anything it reads: the cycle cannot re-enable the rule once
//!   its condition goes false. This is the activation-graph argument in
//!   the Baralis–Ceri–Paraboschi tradition; it assumes the rule does
//!   not keep firing on an invariantly-true condition, a contract the
//!   runtime reconciliation pass checks against observed lineage;
//! - **no event feedback** — every edge into the rule from inside the
//!   cycle is pure data feedback: the cycle can re-enable the rule's
//!   condition but can never schedule a firing of it, so the event
//!   cascade through this rule is finite.
//!
//! Discharge runs to fixpoint: removing a discharged rule from a
//! component may break it into smaller components that discharge next.
//!
//! Bounds come from the condensation of the *scheduling* subgraph.
//! Each strongly connected component weighs `|members|` firings (the
//! discharge contract: one pass through the broken cycle), and
//! `lp(C) = |C| + max lp(successor)`. A rule's bound is `lp` of its
//! component minus one — the maximum lineage depth (root firing =
//! depth 0) of any cascade it starts. Components containing or
//! reaching an undischarged cycle get no bound.
//!
//! Every rule then gets a [`Verdict`]:
//!
//! - [`Verdict::Proven`]\(bound\) — all cycles reachable from the rule
//!   are discharged and `bound` caps the lineage depth;
//! - [`Verdict::CycleUndischarged`] — the rule reaches an undischarged
//!   cycle that needs conservative edges to close: divergence is
//!   possible, not demonstrated;
//! - [`Verdict::Unbounded`] — the rule reaches an undischarged cycle of
//!   definite edges alone: divergence is real under declared effects.

use crate::graph::TriggeringGraph;
use serde::Serialize;

/// Static facts about one rule that the discharge predicates consume.
/// Produced by the analyzer from its per-rule `RuleInfo`.
#[derive(Debug, Clone, Default)]
pub struct RuleFacts {
    /// Rule name (must match the graph node).
    pub rule: String,
    /// The condition is the constant-true body: the rule fires on every
    /// delivery, so "condition goes false" can never break a cycle.
    pub condition_trivial: bool,
    /// The action declared its read-set (`effects.reads` is `Some`).
    pub reads_known: bool,
    /// The action declared its raises (`effects` is `Some`). When
    /// false, every conservative edge out of this rule may schedule
    /// firings.
    pub raises_known: bool,
    /// Every triggering occurrence also triggers an unconditional
    /// higher-priority Immediate abort (same fact `shadowed-by-abort`
    /// reports).
    pub abort_shadowed: bool,
    /// Every complete detection of the rule's event requires a timer
    /// fire (`EventExpr::timer_gated`): raises alone can never schedule
    /// it, so its cadence is paced by the clock, not the cascade.
    pub timer_gated: bool,
}

/// Why a cycle member discharges its cycle.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize)]
pub enum DischargeReason {
    /// The member is abort-shadowed: the cascade dies there.
    AbortShadowed,
    /// No cycle member writes the member's declared read-set and its
    /// condition is non-trivial: the cycle cannot re-enable it.
    NoSelfFeedback,
    /// Every cycle edge into the member is pure data feedback: the
    /// cycle can never schedule a firing of it.
    NoEventFeedback,
    /// The member's event is timer-gated: every complete detection
    /// needs a timer fire, which rule raises cannot produce, so the
    /// cycle's own firings can never schedule the member — each lap is
    /// paced by a clock boundary and bounded by the deferred-round
    /// limit.
    TimerGated,
}

impl DischargeReason {
    /// Stable lowercase label for tables and JSON.
    pub fn as_str(self) -> &'static str {
        match self {
            DischargeReason::AbortShadowed => "abort-shadowed",
            DischargeReason::NoSelfFeedback => "no-self-feedback",
            DischargeReason::NoEventFeedback => "no-event-feedback",
            DischargeReason::TimerGated => "timer-gated",
        }
    }
}

/// A cycle the prover discharged, with the witness rule and reason.
#[derive(Debug, Clone, Serialize)]
pub struct DischargedCycle {
    /// Member rule names (sorted).
    pub members: Vec<String>,
    /// The rule whose discharge broke the cycle.
    pub witness: String,
    /// Why the witness discharges it.
    pub reason: DischargeReason,
}

/// A cycle the prover could not discharge.
#[derive(Debug, Clone, Serialize)]
pub struct UndischargedCycle {
    /// Member rule names (sorted).
    pub members: Vec<String>,
    /// Whether the cycle closes through definite edges alone.
    pub definite: bool,
}

/// The prover's verdict for one rule.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize)]
pub enum Verdict {
    /// Terminates; a cascade rooted here reaches lineage depth at most
    /// the contained bound (root firing = depth 0).
    Proven(u32),
    /// Reaches an undischarged cycle that needs conservative edges to
    /// close: possibly diverging.
    CycleUndischarged,
    /// Reaches an undischarged cycle of definite edges: diverges under
    /// the declared effects.
    Unbounded,
}

impl Verdict {
    /// Stable lowercase label (`proven` / `cycle-undischarged` /
    /// `unbounded`).
    pub fn as_str(self) -> &'static str {
        match self {
            Verdict::Proven(_) => "proven",
            Verdict::CycleUndischarged => "cycle-undischarged",
            Verdict::Unbounded => "unbounded",
        }
    }

    /// The bound, for `Proven` verdicts.
    pub fn bound(self) -> Option<u32> {
        match self {
            Verdict::Proven(b) => Some(b),
            _ => None,
        }
    }
}

/// One rule's verdict row.
#[derive(Debug, Clone, Serialize)]
pub struct RuleVerdict {
    /// Rule name.
    pub rule: String,
    /// The verdict.
    pub verdict: Verdict,
    /// Supporting detail: the bound, or the blocking cycle.
    pub detail: String,
}

/// Everything the prover concluded about one rule set.
#[derive(Debug, Clone, Default, Serialize)]
pub struct TerminationReport {
    /// Per-rule verdicts, sorted by rule name.
    pub verdicts: Vec<RuleVerdict>,
    /// Cycles the prover discharged (with witnesses).
    pub discharged: Vec<DischargedCycle>,
    /// Cycles that resisted every discharge predicate.
    pub undischarged: Vec<UndischargedCycle>,
}

impl TerminationReport {
    /// Verdict for `rule`, if it is in the report.
    pub fn verdict_of(&self, rule: &str) -> Option<&RuleVerdict> {
        self.verdicts.iter().find(|v| v.rule == rule)
    }

    /// `true` when every rule is `Proven`.
    pub fn all_proven(&self) -> bool {
        self.verdicts
            .iter()
            .all(|v| matches!(v.verdict, Verdict::Proven(_)))
    }

    /// The largest proven bound, when *all* rules are proven. This is
    /// the global worst-case lineage depth for the rule set.
    pub fn max_proven_bound(&self) -> Option<u32> {
        if self.verdicts.is_empty() || !self.all_proven() {
            return None;
        }
        self.verdicts.iter().filter_map(|v| v.verdict.bound()).max()
    }

    /// `N proven, M undischarged, K unbounded` one-liner.
    pub fn summary(&self) -> String {
        let proven = self
            .verdicts
            .iter()
            .filter(|v| matches!(v.verdict, Verdict::Proven(_)))
            .count();
        let undis = self
            .verdicts
            .iter()
            .filter(|v| v.verdict == Verdict::CycleUndischarged)
            .count();
        let unbounded = self
            .verdicts
            .iter()
            .filter(|v| v.verdict == Verdict::Unbounded)
            .count();
        format!("{proven} proven, {undis} undischarged, {unbounded} unbounded")
    }

    /// Fixed-width verdict table for the shell.
    pub fn render_table(&self) -> String {
        use std::fmt::Write;
        let mut s = String::new();
        let wide = self
            .verdicts
            .iter()
            .map(|v| v.rule.len())
            .max()
            .unwrap_or(4)
            .max(4);
        let _ = writeln!(s, "{:wide$}  {:18}  detail", "rule", "verdict");
        for v in &self.verdicts {
            let verdict = match v.verdict {
                Verdict::Proven(b) => format!("proven(bound={b})"),
                other => other.as_str().to_string(),
            };
            let _ = writeln!(s, "{:wide$}  {verdict:18}  {}", v.rule, v.detail);
        }
        let _ = write!(s, "termination: {}", self.summary());
        s
    }
}

/// Run the prover.
///
/// `facts[i]` must describe `graph.nodes[i]`; `feedback[i][j]` must be
/// `true` iff rule `i`'s declared writes can overlap rule `j`'s full
/// read-set (reads ∪ writes), `false` only when that is *proven*
/// impossible (both sides declared, no overlap). Unknown effects must
/// be passed as `true` — the prover treats `feedback` as may-analysis.
pub fn prove(
    graph: &TriggeringGraph,
    facts: &[RuleFacts],
    feedback: &[Vec<bool>],
) -> TerminationReport {
    let n = graph.nodes.len();
    assert_eq!(facts.len(), n, "one RuleFacts per graph node");
    assert_eq!(feedback.len(), n, "square feedback matrix");

    // An edge *schedules* firings when it is definite, or conservative
    // from a rule whose raises are unknown (a conservative edge out of
    // a raises-declared rule is pure data feedback by construction —
    // had the declared raises hit the target's alphabet, the edge
    // would be definite).
    let schedules = |e: &crate::graph::GraphEdge| e.is_definite() || !facts[e.from].raises_known;
    let mut sched: Vec<Vec<bool>> = vec![vec![false; n]; n];
    let mut sched_adj: Vec<Vec<usize>> = vec![Vec::new(); n];
    for e in &graph.edges {
        if e.is_live() && schedules(e) && !sched[e.from][e.to] {
            sched[e.from][e.to] = true;
            sched_adj[e.from].push(e.to);
        }
    }

    // Discharge to fixpoint. `removed[i]` = rule i was discharged as a
    // cycle-breaker; the remaining cycles are analyzed without it.
    let mut removed = vec![false; n];
    let mut discharged: Vec<DischargedCycle> = Vec::new();
    loop {
        let rm = removed.clone();
        let comps = graph.sccs(|e| e.is_live() && !rm[e.from] && !rm[e.to]);
        let mut progressed = false;
        for comp in &comps {
            if let Some((witness, reason)) = discharge(comp, facts, feedback, &sched) {
                discharged.push(DischargedCycle {
                    members: comp.iter().map(|&i| facts[i].rule.clone()).collect(),
                    witness: facts[witness].rule.clone(),
                    reason,
                });
                removed[witness] = true;
                progressed = true;
            }
        }
        if !progressed {
            break;
        }
    }

    // Rules still inside a cyclic component after the fixpoint are the
    // undischarged ("stuck") ones.
    let rm = removed.clone();
    let stuck_comps = graph.sccs(|e| e.is_live() && !rm[e.from] && !rm[e.to]);
    let mut undischarged: Vec<UndischargedCycle> = Vec::new();
    let mut stuck = vec![false; n];
    let mut stuck_definite = vec![false; n];
    for comp in &stuck_comps {
        // A stuck component is `definite` when it stays cyclic using
        // only its internal definite edges.
        let inside = |i: usize| comp.contains(&i);
        let def_cyclic = !graph
            .sccs(|e| e.is_definite() && inside(e.from) && inside(e.to) && !rm[e.from] && !rm[e.to])
            .is_empty();
        for &m in comp {
            stuck[m] = true;
            stuck_definite[m] = def_cyclic;
        }
        undischarged.push(UndischargedCycle {
            members: comp.iter().map(|&i| facts[i].rule.clone()).collect(),
            definite: def_cyclic,
        });
    }

    // Longest path over the condensation of the scheduling subgraph.
    // Tarjan emits components in reverse topological order, so every
    // successor component is finished before its predecessors: one pass
    // computes lp. A component poisoned by (containing or reaching) a
    // stuck rule gets no bound; `def_poison` tracks whether the poison
    // source is a definite cycle (=> Unbounded rather than merely
    // CycleUndischarged).
    let comps = all_sccs(n, &sched_adj);
    let mut comp_of = vec![usize::MAX; n];
    for (ci, comp) in comps.iter().enumerate() {
        for &m in comp {
            comp_of[m] = ci;
        }
    }
    // lp[ci] = None => poisoned.
    let mut lp: Vec<Option<u32>> = vec![None; comps.len()];
    let mut def_poison: Vec<bool> = vec![false; comps.len()];
    for (ci, comp) in comps.iter().enumerate() {
        let mut poisoned = comp.iter().any(|&m| stuck[m]);
        let mut definite_poison = comp.iter().any(|&m| stuck_definite[m]);
        let mut best_succ: u32 = 0;
        for &m in comp {
            for &t in &sched_adj[m] {
                let tc = comp_of[t];
                if tc == ci {
                    continue;
                }
                match lp[tc] {
                    Some(v) => best_succ = best_succ.max(v),
                    None => {
                        poisoned = true;
                        definite_poison |= def_poison[tc];
                    }
                }
            }
        }
        if poisoned {
            lp[ci] = None;
            def_poison[ci] = definite_poison;
        } else {
            lp[ci] = Some(comp.len() as u32 + best_succ);
        }
    }

    let mut verdicts: Vec<RuleVerdict> = Vec::with_capacity(n);
    for i in 0..n {
        let ci = comp_of[i];
        let (verdict, detail) = match lp[ci] {
            Some(v) => {
                let bound = v - 1;
                (
                    Verdict::Proven(bound),
                    format!("longest scheduling chain reaches depth {bound}"),
                )
            }
            None if def_poison[ci] => (
                Verdict::Unbounded,
                "reaches an undischarged definite cycle".to_string(),
            ),
            None => (
                Verdict::CycleUndischarged,
                "reaches an undischarged conservative cycle".to_string(),
            ),
        };
        verdicts.push(RuleVerdict {
            rule: facts[i].rule.clone(),
            verdict,
            detail,
        });
    }
    verdicts.sort_by(|a, b| a.rule.cmp(&b.rule));
    discharged.sort_by(|a, b| (&a.members, &a.witness).cmp(&(&b.members, &b.witness)));
    undischarged.sort_by(|a, b| a.members.cmp(&b.members));

    TerminationReport {
        verdicts,
        discharged,
        undischarged,
    }
}

/// Iterative Tarjan over an adjacency list, returning *all* strongly
/// connected components (singletons included) in reverse topological
/// order of the condensation.
fn all_sccs(n: usize, adj: &[Vec<usize>]) -> Vec<Vec<usize>> {
    const UNSET: usize = usize::MAX;
    let mut index = vec![UNSET; n];
    let mut low = vec![0usize; n];
    let mut on_stack = vec![false; n];
    let mut stack: Vec<usize> = Vec::new();
    let mut next_index = 0usize;
    let mut comps: Vec<Vec<usize>> = Vec::new();
    let mut work: Vec<(usize, usize)> = Vec::new();

    for start in 0..n {
        if index[start] != UNSET {
            continue;
        }
        work.push((start, 0));
        while let Some(&(v, ci)) = work.last() {
            if ci == 0 {
                index[v] = next_index;
                low[v] = next_index;
                next_index += 1;
                stack.push(v);
                on_stack[v] = true;
            }
            if let Some(&w) = adj[v].get(ci) {
                work.last_mut().expect("frame present").1 += 1;
                if index[w] == UNSET {
                    work.push((w, 0));
                } else if on_stack[w] {
                    low[v] = low[v].min(index[w]);
                }
            } else {
                work.pop();
                if let Some(&(parent, _)) = work.last() {
                    low[parent] = low[parent].min(low[v]);
                }
                if low[v] == index[v] {
                    let mut comp = Vec::new();
                    while let Some(w) = stack.pop() {
                        on_stack[w] = false;
                        comp.push(w);
                        if w == v {
                            break;
                        }
                    }
                    comp.sort_unstable();
                    comps.push(comp);
                }
            }
        }
    }
    comps
}

/// Try each discharge predicate on each member of a cyclic component;
/// return the first (witness, reason) found. Deterministic: predicates
/// in fixed order, members in index order.
fn discharge(
    comp: &[usize],
    facts: &[RuleFacts],
    feedback: &[Vec<bool>],
    sched: &[Vec<bool>],
) -> Option<(usize, DischargeReason)> {
    for &r in comp {
        if facts[r].abort_shadowed {
            return Some((r, DischargeReason::AbortShadowed));
        }
    }
    for &r in comp {
        if facts[r].timer_gated {
            return Some((r, DischargeReason::TimerGated));
        }
    }
    for &r in comp {
        let f = &facts[r];
        if !f.condition_trivial && f.reads_known && comp.iter().all(|&m| !feedback[m][r]) {
            return Some((r, DischargeReason::NoSelfFeedback));
        }
    }
    for &r in comp {
        if comp.iter().all(|&m| !sched[m][r]) {
            return Some((r, DischargeReason::NoEventFeedback));
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::{EdgeKind, GraphEdge, GraphNode};
    use sentinel_rules::CouplingMode;

    fn graph(n: usize, edges: &[(usize, usize, EdgeKind)]) -> TriggeringGraph {
        TriggeringGraph {
            nodes: (0..n)
                .map(|i| GraphNode {
                    rule: format!("r{i}"),
                    coupling: CouplingMode::Immediate,
                    enabled: true,
                })
                .collect(),
            edges: edges
                .iter()
                .map(|&(from, to, kind)| GraphEdge {
                    from,
                    to,
                    kind,
                    via: "t".into(),
                })
                .collect(),
        }
    }

    fn plain_facts(n: usize) -> Vec<RuleFacts> {
        (0..n)
            .map(|i| RuleFacts {
                rule: format!("r{i}"),
                condition_trivial: true,
                reads_known: false,
                raises_known: true,
                abort_shadowed: false,
                timer_gated: false,
            })
            .collect()
    }

    fn no_feedback(n: usize) -> Vec<Vec<bool>> {
        vec![vec![false; n]; n]
    }

    #[test]
    fn chain_gets_exact_bounds() {
        // r0 -> r1 -> r2, all definite: bounds 2, 1, 0.
        let g = graph(3, &[(0, 1, EdgeKind::Definite), (1, 2, EdgeKind::Definite)]);
        let rep = prove(&g, &plain_facts(3), &no_feedback(3));
        assert!(rep.all_proven());
        assert_eq!(rep.verdict_of("r0").unwrap().verdict, Verdict::Proven(2));
        assert_eq!(rep.verdict_of("r1").unwrap().verdict, Verdict::Proven(1));
        assert_eq!(rep.verdict_of("r2").unwrap().verdict, Verdict::Proven(0));
        assert_eq!(rep.max_proven_bound(), Some(2));
    }

    #[test]
    fn refuted_edges_do_not_count() {
        let g = graph(2, &[(0, 1, EdgeKind::Refuted), (1, 1, EdgeKind::Refuted)]);
        let rep = prove(&g, &plain_facts(2), &no_feedback(2));
        assert_eq!(rep.verdict_of("r0").unwrap().verdict, Verdict::Proven(0));
        assert_eq!(rep.verdict_of("r1").unwrap().verdict, Verdict::Proven(0));
    }

    #[test]
    fn undischarged_definite_cycle_is_unbounded_and_poisons_upstream() {
        // r0 -> r1 <-> r2 (definite cycle, nothing discharges it:
        // trivial conditions, full feedback).
        let g = graph(
            3,
            &[
                (0, 1, EdgeKind::Definite),
                (1, 2, EdgeKind::Definite),
                (2, 1, EdgeKind::Definite),
            ],
        );
        let mut fb = no_feedback(3);
        for row in &mut fb {
            row.fill(true);
        }
        let rep = prove(&g, &plain_facts(3), &fb);
        assert_eq!(rep.verdict_of("r1").unwrap().verdict, Verdict::Unbounded);
        assert_eq!(rep.verdict_of("r2").unwrap().verdict, Verdict::Unbounded);
        // r0 reaches the cycle: also unbounded.
        assert_eq!(rep.verdict_of("r0").unwrap().verdict, Verdict::Unbounded);
        assert_eq!(rep.undischarged.len(), 1);
        assert!(rep.undischarged[0].definite);
        assert_eq!(rep.max_proven_bound(), None);
    }

    #[test]
    fn conservative_cycle_with_unknown_raises_stays_undischarged() {
        // Self-loop via a conservative "effects unknown" edge: the edge
        // may schedule firings, so NoEventFeedback cannot apply.
        let g = graph(1, &[(0, 0, EdgeKind::Conservative)]);
        let mut facts = plain_facts(1);
        facts[0].raises_known = false;
        let mut fb = no_feedback(1);
        fb[0][0] = true;
        let rep = prove(&g, &facts, &fb);
        assert_eq!(
            rep.verdict_of("r0").unwrap().verdict,
            Verdict::CycleUndischarged
        );
        assert_eq!(rep.undischarged.len(), 1);
        assert!(!rep.undischarged[0].definite);
    }

    #[test]
    fn data_feedback_cycle_discharged_by_no_event_feedback() {
        // Conservative self-loop but raises are declared: the loop is
        // pure data feedback — it never schedules, so it discharges and
        // contributes nothing to the bound.
        let g = graph(1, &[(0, 0, EdgeKind::Conservative)]);
        let mut fb = no_feedback(1);
        fb[0][0] = true; // writes its own reads
        let rep = prove(&g, &plain_facts(1), &fb);
        assert_eq!(rep.verdict_of("r0").unwrap().verdict, Verdict::Proven(0));
        assert_eq!(rep.discharged.len(), 1);
        assert_eq!(rep.discharged[0].reason, DischargeReason::NoEventFeedback);
        assert_eq!(rep.discharged[0].witness, "r0");
    }

    #[test]
    fn cycle_discharged_by_no_self_feedback() {
        // Definite 2-cycle, but r1 has a non-trivial condition, known
        // reads, and nobody in the cycle writes what it reads.
        let g = graph(2, &[(0, 1, EdgeKind::Definite), (1, 0, EdgeKind::Definite)]);
        let mut facts = plain_facts(2);
        facts[1].condition_trivial = false;
        facts[1].reads_known = true;
        let rep = prove(&g, &facts, &no_feedback(2));
        assert!(rep.all_proven());
        assert_eq!(rep.discharged.len(), 1);
        assert_eq!(rep.discharged[0].reason, DischargeReason::NoSelfFeedback);
        assert_eq!(rep.discharged[0].witness, "r1");
        // The discharged 2-cycle weighs two firings: entering it from
        // either member costs at most depth 1.
        assert_eq!(rep.verdict_of("r0").unwrap().verdict, Verdict::Proven(1));
        assert_eq!(rep.verdict_of("r1").unwrap().verdict, Verdict::Proven(1));
    }

    #[test]
    fn cycle_discharged_by_abort_shadow() {
        let g = graph(2, &[(0, 1, EdgeKind::Definite), (1, 0, EdgeKind::Definite)]);
        let mut facts = plain_facts(2);
        facts[0].abort_shadowed = true;
        let mut fb = no_feedback(2);
        for row in &mut fb {
            row.fill(true);
        }
        let rep = prove(&g, &facts, &fb);
        assert!(rep.all_proven());
        assert_eq!(rep.discharged[0].reason, DischargeReason::AbortShadowed);
    }

    #[test]
    fn timer_gated_member_discharges_cycle() {
        // Definite 2-cycle, but r1's event is timer-gated: the cycle's
        // raises can never complete its detection, so the loop is paced
        // by clock boundaries and discharges through r1.
        let g = graph(2, &[(0, 1, EdgeKind::Definite), (1, 0, EdgeKind::Definite)]);
        let mut facts = plain_facts(2);
        facts[1].timer_gated = true;
        let mut fb = no_feedback(2);
        for row in &mut fb {
            row.fill(true);
        }
        let rep = prove(&g, &facts, &fb);
        assert!(rep.all_proven());
        assert_eq!(rep.discharged.len(), 1);
        assert_eq!(rep.discharged[0].reason, DischargeReason::TimerGated);
        assert_eq!(rep.discharged[0].witness, "r1");
    }

    #[test]
    fn fixpoint_discharges_nested_components() {
        // One SCC {0,1,2}: first pass discharges via r0's abort shadow,
        // the remainder {1,2} needs a second pass (r2's no-self-
        // feedback discharge).
        let g = graph(
            3,
            &[
                (0, 1, EdgeKind::Definite),
                (1, 0, EdgeKind::Definite),
                (1, 2, EdgeKind::Definite),
                (2, 1, EdgeKind::Definite),
            ],
        );
        let mut facts = plain_facts(3);
        facts[0].abort_shadowed = true;
        facts[2].condition_trivial = false;
        facts[2].reads_known = true;
        let mut fb = no_feedback(3);
        fb[0][0] = true;
        fb[0][1] = true;
        fb[1][0] = true;
        fb[1][1] = true;
        let rep = prove(&g, &facts, &fb);
        assert!(rep.all_proven(), "verdicts: {:?}", rep.verdicts);
        assert_eq!(rep.discharged.len(), 2);
        assert_eq!(rep.discharged[0].reason, DischargeReason::AbortShadowed);
    }

    #[test]
    fn render_table_and_summary() {
        let g = graph(2, &[(0, 1, EdgeKind::Definite)]);
        let rep = prove(&g, &plain_facts(2), &no_feedback(2));
        let table = rep.render_table();
        assert!(table.contains("proven(bound=1)"));
        assert!(table.contains("proven(bound=0)"));
        assert!(table.contains("termination: 2 proven, 0 undischarged, 0 unbounded"));
    }
}
