//! Observed runtime effects and the declared-vs-actual diff.
//!
//! The declared-effects contract is only as good as the declarations;
//! the runtime recorder (opt-in, in `sentinel-db`) captures what an
//! action *actually* raised and wrote while it ran, and [`diff_effects`]
//! turns divergence into `effect-mismatch` diagnostics.

use crate::diagnostic::{DiagCode, Diagnostic};
use sentinel_object::ClassRegistry;
use sentinel_rules::ActionEffects;
use std::collections::BTreeSet;

/// What the recorder saw one action do, as `(class name, member name)`
/// pairs. Class names are the *dynamic* class of the object involved.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ObservedEffects {
    /// Events raised while the action ran: `(class, method)`.
    pub raises: BTreeSet<(String, String)>,
    /// Attributes written while the action ran: `(class, attr)`.
    pub writes: BTreeSet<(String, String)>,
}

impl ObservedEffects {
    /// Record a raised primitive event.
    pub fn record_raise(&mut self, class: impl Into<String>, method: impl Into<String>) {
        self.raises.insert((class.into(), method.into()));
    }

    /// Record an attribute write.
    pub fn record_write(&mut self, class: impl Into<String>, attr: impl Into<String>) {
        self.writes.insert((class.into(), attr.into()));
    }

    /// Nothing observed.
    pub fn is_empty(&self) -> bool {
        self.raises.is_empty() && self.writes.is_empty()
    }
}

/// Does a declared pattern class cover an observed (dynamic) class?
/// Subclass-closed when both resolve in the registry; name equality
/// otherwise.
fn class_covers(registry: &ClassRegistry, declared: &str, observed: &str) -> bool {
    match (registry.id_of(declared), registry.id_of(observed)) {
        (Ok(sup), Ok(sub)) => registry.is_subclass(sub, sup),
        _ => declared == observed,
    }
}

/// Diff an action's observed effects against its declaration. Every
/// observed raise/write not covered by a declared pattern yields an
/// error-severity `effect-mismatch` diagnostic. Only call this for
/// actions that *have* a declaration — an undeclared action promises
/// nothing, so nothing it does can contradict it.
pub fn diff_effects(
    action: &str,
    declared: &ActionEffects,
    observed: &ObservedEffects,
    registry: &ClassRegistry,
) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    for (class, method) in &observed.raises {
        let covered = declared
            .raises
            .iter()
            .any(|p| p.method == *method && class_covers(registry, &p.class, class));
        if !covered {
            out.push(Diagnostic::new(
                DiagCode::EffectMismatch,
                None,
                format!(
                    "action `{action}` raised `{class}::{method}` but its \
                     declared effects do not include it"
                ),
            ));
        }
    }
    for (class, attr) in &observed.writes {
        let covered = declared
            .writes
            .iter()
            .any(|p| p.attr == *attr && class_covers(registry, &p.class, class));
        if !covered {
            out.push(Diagnostic::new(
                DiagCode::EffectMismatch,
                None,
                format!(
                    "action `{action}` wrote `{class}.{attr}` but its \
                     declared effects do not include it"
                ),
            ));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use sentinel_object::ClassDecl;

    fn registry() -> ClassRegistry {
        let mut reg = ClassRegistry::new();
        reg.define(ClassDecl::reactive("Account").method("Withdraw", &[]))
            .unwrap();
        reg.define(ClassDecl::reactive("Savings").parent("Account"))
            .unwrap();
        reg
    }

    #[test]
    fn covered_effects_produce_no_diagnostics() {
        let reg = registry();
        let declared = ActionEffects::none()
            .raising("Account", "Withdraw")
            .writing("Account", "balance");
        let mut obs = ObservedEffects::default();
        // Subclass send is covered by the superclass declaration.
        obs.record_raise("Savings", "Withdraw");
        obs.record_write("Account", "balance");
        assert!(diff_effects("a", &declared, &obs, &reg).is_empty());
    }

    #[test]
    fn undeclared_raise_and_write_are_mismatches() {
        let reg = registry();
        let declared = ActionEffects::none();
        let mut obs = ObservedEffects::default();
        obs.record_raise("Account", "Withdraw");
        obs.record_write("Account", "balance");
        let diags = diff_effects("quiet", &declared, &obs, &reg);
        assert_eq!(diags.len(), 2);
        assert!(diags.iter().all(|d| d.code == DiagCode::EffectMismatch));
        assert!(diags[0].message.contains("`quiet`"));
    }

    #[test]
    fn superclass_send_not_covered_by_subclass_declaration() {
        let reg = registry();
        // Declared on the subclass; the action touched the superclass.
        let declared = ActionEffects::none().raising("Savings", "Withdraw");
        let mut obs = ObservedEffects::default();
        obs.record_raise("Account", "Withdraw");
        assert_eq!(diff_effects("a", &declared, &obs, &reg).len(), 1);
    }
}
