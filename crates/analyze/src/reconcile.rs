//! Static-vs-observed reconciliation.
//!
//! The triggering graph says which rule *can* trigger which rule; the
//! firing-history ring records which rule *did*. Diffing the two turns
//! runtime evidence into analysis upgrades:
//!
//! * A **conservative** edge (drawn only because the action's effects
//!   are undeclared) that was exercised at runtime is real — an
//!   `observed-trigger` info invites the author to declare the effect
//!   and make the static analysis precise.
//! * A **definite** edge never exercised by any recorded cascade is an
//!   `untested-rule-path` warning: the dependency exists on paper but
//!   no test or workload has ever driven it.
//! * An observed cascade step with **no static edge at all** — or one
//!   the effect declarations *refuted* — is an `unpredicted-trigger`
//!   error: the static model is missing a real dependency, so its
//!   termination/confluence verdicts are unsound.
//! * An observed lineage depth **above a proven static bound**
//!   ([`reconcile_bounds`]) is a `proven-bound-exceeded` error: the
//!   prover or the declarations it trusted lie.

use crate::diagnostic::{DiagCode, Diagnostic, Severity};
use crate::graph::{EdgeKind, TriggeringGraph};
use crate::termination::{TerminationReport, Verdict};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// One rule-to-rule triggering actually recorded at runtime: `count`
/// firings of `to` had a firing of `from` as their lineage parent.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ObservedEdge {
    /// The rule whose firing was the lineage parent.
    pub from: String,
    /// The rule that fired as a consequence.
    pub to: String,
    /// How many parent/child firing pairs were recorded.
    pub count: u64,
}

/// The outcome of diffing a [`TriggeringGraph`] against observed
/// cascade edges.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct ReconciliationReport {
    /// Findings, sorted most severe first.
    pub diagnostics: Vec<Diagnostic>,
    /// Definite static edges confirmed by at least one recorded firing.
    pub confirmed_definite: usize,
    /// Conservative static edges confirmed by at least one recorded
    /// firing (each also yields an `observed-trigger` info).
    pub confirmed_conservative: usize,
    /// Definite static edges no recorded cascade ever exercised.
    pub untested_definite: usize,
    /// Observed edges the static graph has no edge for.
    pub unpredicted: usize,
    /// Total observed parent/child firing pairs fed in.
    pub observed_pairs: u64,
}

impl ReconciliationReport {
    /// Findings at exactly `severity`.
    pub fn count(&self, severity: Severity) -> usize {
        self.diagnostics
            .iter()
            .filter(|d| d.severity == severity)
            .count()
    }

    /// Any error-severity findings (i.e. unpredicted triggers)?
    pub fn has_errors(&self) -> bool {
        self.count(Severity::Error) > 0
    }

    /// One-line summary in the same shape as
    /// [`AnalysisReport::summary`](crate::AnalysisReport::summary), so
    /// CI can grep for `0 errors`.
    pub fn summary(&self) -> String {
        format!(
            "{} errors, {} warnings, {} infos; {} definite + {} conservative edges confirmed by {} observed firing pairs",
            self.count(Severity::Error),
            self.count(Severity::Warning),
            self.count(Severity::Info),
            self.confirmed_definite,
            self.confirmed_conservative,
            self.observed_pairs,
        )
    }

    /// Render the findings one per line (empty string when clean).
    pub fn render(&self) -> String {
        let mut s = String::new();
        for d in &self.diagnostics {
            s.push_str(&d.to_string());
            s.push('\n');
        }
        s
    }

    /// Fold extra diagnostics (e.g. lane coverage from
    /// [`reconcile_lanes`]) into the report, keeping the severity sort.
    pub fn merge_diagnostics(&mut self, extra: Vec<Diagnostic>) {
        self.diagnostics.extend(extra);
        self.resort();
    }

    fn resort(&mut self) {
        self.diagnostics.sort_by(|a, b| {
            b.severity
                .cmp(&a.severity)
                .then_with(|| a.code.cmp(&b.code))
                .then_with(|| a.rule.cmp(&b.rule))
                .then_with(|| a.message.cmp(&b.message))
        });
    }
}

/// Diff the static `graph` against runtime-`observed` cascade edges.
///
/// Observed pairs whose parent rule is unknown (the parent firing was
/// evicted from the history ring before the child was inspected) should
/// be filtered out by the caller; an edge naming a rule absent from the
/// graph is treated as unpredicted.
pub fn reconcile(graph: &TriggeringGraph, observed: &[ObservedEdge]) -> ReconciliationReport {
    // Static edge map: (from, to) -> (strongest edge kind, via of that
    // representative edge). Definite beats conservative beats refuted.
    fn rank(k: EdgeKind) -> u8 {
        match k {
            EdgeKind::Definite => 0,
            EdgeKind::Conservative => 1,
            EdgeKind::Refuted => 2,
        }
    }
    let mut static_edges: BTreeMap<(&str, &str), (EdgeKind, &str)> = BTreeMap::new();
    for e in &graph.edges {
        let key = (
            graph.nodes[e.from].rule.as_str(),
            graph.nodes[e.to].rule.as_str(),
        );
        let entry = static_edges.entry(key).or_insert((e.kind, e.via.as_str()));
        if rank(e.kind) < rank(entry.0) {
            *entry = (e.kind, e.via.as_str());
        }
    }

    let mut report = ReconciliationReport::default();
    let mut exercised: BTreeMap<(&str, &str), u64> = BTreeMap::new();
    for o in observed {
        report.observed_pairs += o.count;
        *exercised
            .entry((o.from.as_str(), o.to.as_str()))
            .or_insert(0) += o.count;
    }

    for (&(from, to), &count) in &exercised {
        match static_edges.get(&(from, to)) {
            Some(&(EdgeKind::Definite, _)) => report.confirmed_definite += 1,
            Some(&(EdgeKind::Conservative, _)) => {
                report.confirmed_conservative += 1;
                report.diagnostics.push(Diagnostic::new(
                    DiagCode::ObservedTrigger,
                    Some(from.to_string()),
                    format!(
                        "conservative edge `{from}` -> `{to}` was exercised at runtime \
                         ({count} firing pair{}); declare the action's effects to make it definite",
                        if count == 1 { "" } else { "s" }
                    ),
                ));
            }
            Some(&(EdgeKind::Refuted, _)) => {
                report.unpredicted += 1;
                report.diagnostics.push(Diagnostic::new(
                    DiagCode::UnpredictedTrigger,
                    Some(from.to_string()),
                    format!(
                        "runtime recorded {count} firing pair{} `{from}` -> `{to}` but the \
                         declared effects *refuted* that edge; the declarations are wrong",
                        if count == 1 { "" } else { "s" }
                    ),
                ));
            }
            None => {
                report.unpredicted += 1;
                report.diagnostics.push(Diagnostic::new(
                    DiagCode::UnpredictedTrigger,
                    Some(from.to_string()),
                    format!(
                        "runtime recorded {count} firing pair{} `{from}` -> `{to}` but the \
                         triggering graph predicts no such edge",
                        if count == 1 { "" } else { "s" }
                    ),
                ));
            }
        }
    }

    for (&(from, to), &(kind, via)) in &static_edges {
        if kind == EdgeKind::Definite && !exercised.contains_key(&(from, to)) {
            report.untested_definite += 1;
            report.diagnostics.push(Diagnostic::new(
                DiagCode::UntestedRulePath,
                Some(from.to_string()),
                format!(
                    "definite edge `{from}` -> `{to}` (via {via}) was never exercised \
                     by any recorded firing cascade"
                ),
            ));
        }
    }

    report.resort();
    report
}

/// Per-rule lane coverage observed in the firing-history ring: how many
/// recorded firings of `rule` ran on each execution lane.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ObservedLanes {
    /// The rule the firings belong to.
    pub rule: String,
    /// Firings executed inline on the coordinator (serial lane).
    pub serial: u64,
    /// Firings executed on the scheduler's worker pool.
    pub parallel: u64,
}

/// Diff parallel *eligibility* against the lanes firings actually ran
/// on.
///
/// `parallel_eligible` names the rules the conflict matrix assigns a
/// parallel lane (see [`ConflictMatrix`](crate::ConflictMatrix)); any
/// such rule that fired at runtime but only ever on the serial lane
/// yields a `serial-only-rule` info: the rule is cleared for the worker
/// pool, yet no workload has exercised its parallel path. Rules with no
/// recorded firings at all are skipped — untested-rule coverage is the
/// base [`reconcile`] pass's job.
pub fn reconcile_lanes(
    parallel_eligible: &[String],
    observed: &[ObservedLanes],
) -> Vec<Diagnostic> {
    let lanes: BTreeMap<&str, &ObservedLanes> =
        observed.iter().map(|o| (o.rule.as_str(), o)).collect();
    let mut out = Vec::new();
    for rule in parallel_eligible {
        let Some(o) = lanes.get(rule.as_str()) else {
            continue;
        };
        if o.parallel == 0 && o.serial > 0 {
            out.push(Diagnostic::new(
                DiagCode::SerialOnlyRule,
                Some(rule.clone()),
                format!(
                    "rule `{rule}` is parallel-eligible but all {} recorded firing{} ran on \
                     the serial lane; it was never exercised in parallel",
                    o.serial,
                    if o.serial == 1 { "" } else { "s" }
                ),
            ));
        }
    }
    out
}

/// The deepest lineage depth observed among recorded cascades rooted at
/// one rule (the root firing itself is depth 0).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ObservedRootDepth {
    /// The rule whose firing was the cascade root (lineage depth 0).
    pub rule: String,
    /// The deepest lineage depth reached by any cascade it rooted.
    pub max_depth: u32,
}

/// Check observed lineage depth watermarks against the prover's static
/// bounds.
///
/// `observed` carries per-root-rule maxima reconstructed from the
/// firing-history ring; `history_max_depth` is the history's global
/// high-water mark, which survives ring eviction. A per-root depth
/// above that root's `Proven(bound)` — or a global watermark above the
/// rule set's maximum proven bound when *every* rule is proven — is a
/// `proven-bound-exceeded` error: the prover's premises (the declared
/// effects) do not match what actually ran.
pub fn reconcile_bounds(
    termination: &TerminationReport,
    observed: &[ObservedRootDepth],
    history_max_depth: Option<u32>,
) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    for o in observed {
        let Some(v) = termination.verdict_of(&o.rule) else {
            continue; // unknown root rule; the edge pass reports it
        };
        if let Verdict::Proven(bound) = v.verdict {
            if o.max_depth > bound {
                out.push(Diagnostic::new(
                    DiagCode::ProvenBoundExceeded,
                    Some(o.rule.clone()),
                    format!(
                        "a recorded cascade rooted at `{}` reached lineage depth {} \
                         but the prover bounded it at {bound}; the effect declarations \
                         the proof rests on are wrong",
                        o.rule, o.max_depth
                    ),
                ));
            }
        }
    }
    if let (Some(watermark), Some(bound)) = (history_max_depth, termination.max_proven_bound()) {
        if watermark > bound {
            let covered = observed.iter().any(|o| o.max_depth >= watermark);
            // Only add the global finding when no per-root finding
            // already explains the watermark (the watermark survives
            // eviction, so the offending root may be gone).
            if !covered {
                out.push(Diagnostic::new(
                    DiagCode::ProvenBoundExceeded,
                    None,
                    format!(
                        "the firing history's depth watermark is {watermark} but every rule \
                         is proven with bound at most {bound}; a cascade (since evicted) \
                         outran the static analysis"
                    ),
                ));
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::{GraphEdge, GraphNode};
    use crate::termination::{RuleVerdict, Verdict};
    use sentinel_rules::CouplingMode;

    fn graph() -> TriggeringGraph {
        let node = |name: &str| GraphNode {
            rule: name.into(),
            coupling: CouplingMode::Immediate,
            enabled: true,
        };
        TriggeringGraph {
            nodes: vec![node("A"), node("B"), node("C")],
            edges: vec![
                GraphEdge {
                    from: 0,
                    to: 1,
                    kind: EdgeKind::Definite,
                    via: "X::m (end)".into(),
                },
                GraphEdge {
                    from: 1,
                    to: 2,
                    kind: EdgeKind::Conservative,
                    via: "effects unknown".into(),
                },
                GraphEdge {
                    from: 2,
                    to: 0,
                    kind: EdgeKind::Refuted,
                    via: "refuted: raises miss the alphabet, writes miss the read-set".into(),
                },
            ],
        }
    }

    fn edge(from: &str, to: &str, count: u64) -> ObservedEdge {
        ObservedEdge {
            from: from.into(),
            to: to.into(),
            count,
        }
    }

    #[test]
    fn confirmed_definite_is_silent() {
        let r = reconcile(&graph(), &[edge("A", "B", 3)]);
        assert_eq!(r.confirmed_definite, 1);
        assert!(!r.has_errors());
        assert!(!r
            .diagnostics
            .iter()
            .any(|d| d.message.contains("`A` -> `B`") && d.code != DiagCode::UntestedRulePath));
    }

    #[test]
    fn conservative_edge_upgrades_to_observed_trigger() {
        let r = reconcile(&graph(), &[edge("B", "C", 1)]);
        assert_eq!(r.confirmed_conservative, 1);
        let d = r
            .diagnostics
            .iter()
            .find(|d| d.code == DiagCode::ObservedTrigger)
            .expect("observed-trigger finding");
        assert_eq!(d.severity, Severity::Info);
        assert!(d.message.contains("`B` -> `C`"));
    }

    #[test]
    fn unexercised_definite_edge_is_untested() {
        let r = reconcile(&graph(), &[]);
        assert_eq!(r.untested_definite, 1);
        let d = r
            .diagnostics
            .iter()
            .find(|d| d.code == DiagCode::UntestedRulePath)
            .expect("untested-rule-path finding");
        assert_eq!(d.severity, Severity::Warning);
        assert!(d.message.contains("`A` -> `B`"));
        assert!(r.summary().starts_with("0 errors"));
    }

    #[test]
    fn edge_outside_the_graph_is_an_error() {
        let r = reconcile(&graph(), &[edge("C", "B", 2)]);
        assert_eq!(r.unpredicted, 1);
        assert!(r.has_errors());
        assert!(r.summary().starts_with("1 errors"));
        assert!(r.render().contains("unpredicted-trigger"));
        assert!(r.render().contains("predicts no such edge"));
    }

    #[test]
    fn observed_firing_over_refuted_edge_is_an_error() {
        // The C -> A edge exists but was refuted by declared effects;
        // the runtime exercising it means the declarations lie.
        let r = reconcile(&graph(), &[edge("C", "A", 2)]);
        assert_eq!(r.unpredicted, 1);
        assert!(r.has_errors());
        assert!(r.render().contains("unpredicted-trigger"));
        assert!(r.render().contains("refuted"));
    }

    fn proven(rule: &str, bound: u32) -> RuleVerdict {
        RuleVerdict {
            rule: rule.into(),
            verdict: Verdict::Proven(bound),
            detail: String::new(),
        }
    }

    #[test]
    fn observed_depth_within_bound_is_silent() {
        let term = TerminationReport {
            verdicts: vec![proven("A", 2)],
            ..Default::default()
        };
        let diags = reconcile_bounds(
            &term,
            &[ObservedRootDepth {
                rule: "A".into(),
                max_depth: 2,
            }],
            Some(2),
        );
        assert!(diags.is_empty());
    }

    #[test]
    fn observed_depth_above_bound_is_an_error() {
        let term = TerminationReport {
            verdicts: vec![proven("A", 1)],
            ..Default::default()
        };
        let diags = reconcile_bounds(
            &term,
            &[ObservedRootDepth {
                rule: "A".into(),
                max_depth: 3,
            }],
            Some(3),
        );
        assert_eq!(diags.len(), 1);
        assert_eq!(diags[0].code, DiagCode::ProvenBoundExceeded);
        assert_eq!(diags[0].severity, Severity::Error);
        assert!(diags[0].message.contains("depth 3"));
    }

    #[test]
    fn evicted_root_caught_by_global_watermark() {
        // No per-root observation explains a watermark of 4, but every
        // rule is proven with bound <= 1: global error.
        let term = TerminationReport {
            verdicts: vec![proven("A", 1), proven("B", 0)],
            ..Default::default()
        };
        let diags = reconcile_bounds(&term, &[], Some(4));
        assert_eq!(diags.len(), 1);
        assert_eq!(diags[0].code, DiagCode::ProvenBoundExceeded);
        assert_eq!(diags[0].rule, None);
        assert!(diags[0].message.contains("watermark is 4"));
    }

    #[test]
    fn unproven_rules_mute_the_watermark_check() {
        let term = TerminationReport {
            verdicts: vec![RuleVerdict {
                rule: "A".into(),
                verdict: Verdict::CycleUndischarged,
                detail: String::new(),
            }],
            ..Default::default()
        };
        assert!(reconcile_bounds(&term, &[], Some(10)).is_empty());
    }

    #[test]
    fn observed_pairs_accumulate_across_duplicates() {
        let r = reconcile(&graph(), &[edge("A", "B", 2), edge("A", "B", 3)]);
        assert_eq!(r.observed_pairs, 5);
        assert_eq!(r.confirmed_definite, 1);
    }

    fn lanes(rule: &str, serial: u64, parallel: u64) -> ObservedLanes {
        ObservedLanes {
            rule: rule.into(),
            serial,
            parallel,
        }
    }

    #[test]
    fn serial_only_eligible_rule_is_an_info() {
        let eligible = vec!["A".to_string(), "B".to_string()];
        let diags = reconcile_lanes(
            &eligible,
            &[lanes("A", 4, 0), lanes("B", 2, 3), lanes("C", 9, 0)],
        );
        // A: eligible, fired, never parallel -> info. B: exercised in
        // parallel -> silent. C: not eligible -> silent.
        assert_eq!(diags.len(), 1);
        assert_eq!(diags[0].code, DiagCode::SerialOnlyRule);
        assert_eq!(diags[0].severity, Severity::Info);
        assert_eq!(diags[0].rule.as_deref(), Some("A"));
        assert!(diags[0].message.contains("4 recorded firings"));
    }

    #[test]
    fn never_fired_eligible_rule_is_skipped() {
        let eligible = vec!["A".to_string()];
        assert!(reconcile_lanes(&eligible, &[]).is_empty());
        assert!(reconcile_lanes(&eligible, &[lanes("A", 0, 0)]).is_empty());
    }

    #[test]
    fn lane_diagnostics_merge_into_report_sorted() {
        let mut r = reconcile(&graph(), &[edge("C", "A", 2)]);
        assert!(r.has_errors());
        r.merge_diagnostics(reconcile_lanes(&["A".to_string()], &[lanes("A", 1, 0)]));
        // Errors still lead; the lane info lands after them.
        assert_eq!(r.diagnostics.first().unwrap().severity, Severity::Error);
        assert!(r
            .diagnostics
            .iter()
            .any(|d| d.code == DiagCode::SerialOnlyRule));
        assert!(r.render().contains("serial-only-rule"));
    }
}
