#![warn(missing_docs)]
//! # sentinel-analyze — static analysis for ECA rule sets
//!
//! The paper makes rules first-class objects installable at runtime,
//! spanning classes the rule author never wrote (§3–§4) — exactly the
//! setting where a rule set can silently contain infinite trigger
//! cascades, dead rules, and shadowed subscriptions. This crate checks
//! those properties *statically*, in the tradition of the
//! termination/confluence analyses for active rule programs (Flesca &
//! Greco; Aiken/Widom/Hellerstein):
//!
//! * **Triggering graph** ([`TriggeringGraph`]) — nodes are rules; an
//!   edge R1→R2 exists when R1's action can raise an event in R2's
//!   alphabet on an object R2 is subscribed to. Cycles of definite
//!   edges are non-termination findings, graded by coupling mode
//!   (an Immediate-coupled cycle is an error; Deferred/Detached-only
//!   cycles a warning); cycles that exist only through conservative
//!   "effects unknown" edges are informational.
//! * **Confluence** — same-priority rules that can trigger on the same
//!   occurrence and whose declared writes overlap have an
//!   order-dependent final state.
//! * **Reachability** — rules subscribed to targets whose classes can
//!   never emit any symbol of the rule's alphabet, rules with no
//!   subscriptions, rules disabled with no enabler in sight, rules
//!   shadowed by a higher-priority unconditional `abort`.
//! * **Well-formedness** — `Seq` operands that can never occur, `Plus`
//!   deadlines of zero, conjunctions duplicating a primitive,
//!   unregistered condition/action bodies.
//!
//! Because actions are opaque Rust closures, precision comes from the
//! *declared-effects* contract ([`ActionEffects`] in `sentinel-rules`):
//! authors declare at registration what an action may raise and write.
//! Undeclared actions are conservatively treated as "may raise
//! anything" and tagged with an `unknown-effects` info lint. An opt-in
//! runtime recorder (`sentinel-db`) captures *actual* raises/writes and
//! [`diff_effects`] reports divergence from the declarations.
//!
//! On top of the refined graph sits the **termination prover**
//! ([`termination`]): edges the declared effects refute are pruned,
//! remaining cycles are discharged by abort-shadow / no-self-feedback /
//! no-event-feedback arguments, and every rule receives a verdict —
//! `Proven(bound)` with a static cascade-depth bound, or
//! `CycleUndischarged` / `Unbounded`. The runtime reconciliation pass
//! ([`reconcile_bounds`]) checks observed lineage depth watermarks
//! against the proven bounds, so a lying effect declaration cannot
//! silently invalidate a proof.

pub mod analyzer;
pub mod conflict;
pub mod diagnostic;
pub mod effects;
pub mod graph;
pub mod reconcile;
pub mod termination;

pub use analyzer::{AnalysisReport, RuleAnalyzer};
pub use conflict::{pattern_matches, ConflictMatrix, Lane, RuleFootprint, SerialReason};
pub use diagnostic::{DiagCode, Diagnostic, Severity};
pub use effects::{diff_effects, ObservedEffects};
pub use graph::{EdgeKind, GraphEdge, GraphNode, TriggeringGraph};
pub use reconcile::{
    reconcile, reconcile_bounds, reconcile_lanes, ObservedEdge, ObservedLanes, ObservedRootDepth,
    ReconciliationReport,
};
pub use termination::{
    DischargeReason, DischargedCycle, RuleVerdict, TerminationReport, UndischargedCycle, Verdict,
};

// Re-exported so analyzer consumers can name the contract types without
// a direct sentinel-rules dependency.
pub use sentinel_rules::{ActionEffects, AttrPattern, EventPattern};
