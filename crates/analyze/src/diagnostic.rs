//! Typed diagnostics: stable codes, severities, ordering.

use serde::{Deserialize, Serialize};
use std::fmt;

/// How bad a finding is. `Error` findings fail the CI gate.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum Severity {
    /// Advisory: reduces analysis precision or smells, but is legal.
    Info,
    /// Likely a mistake; the rule set still has a defined semantics.
    Warning,
    /// The rule set is broken: non-terminating, dead, or unrunnable.
    Error,
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Severity::Info => "info",
            Severity::Warning => "warning",
            Severity::Error => "error",
        })
    }
}

/// Stable diagnostic codes — the analyzer's public vocabulary. The
/// string forms (kebab-case) are what tests, the shell table, and CI
/// output match on; they must never change meaning.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
#[non_exhaustive]
pub enum DiagCode {
    /// A cycle of definite triggering edges containing at least one
    /// Immediate-coupled rule: unbounded recursion inside a transaction.
    ImmediateCycle,
    /// A cycle of definite triggering edges whose members are all
    /// Deferred/Detached: each round is bounded, but the set never
    /// quiesces.
    DeferredCycle,
    /// A cycle that exists only through conservative "effects unknown"
    /// edges — possibly spurious; declare effects to resolve.
    PotentialCycle,
    /// Same-priority rules triggerable by one occurrence whose declared
    /// writes overlap: the final state depends on execution order.
    NonConfluent,
    /// The rule's subscriptions can never deliver any symbol of its
    /// alphabet: the rule can never trigger.
    UnreachableRule,
    /// One particular subscription delivers no alphabet symbol (other
    /// subscriptions keep the rule reachable).
    DeafSubscription,
    /// The rule has no subscriptions at all, so it never triggers.
    NoSubscription,
    /// The rule is disabled and no enabled rule (nor any action with
    /// unknown effects) can re-enable it.
    DisabledForever,
    /// Every occurrence that can trigger this rule also triggers a
    /// higher-priority Immediate rule that unconditionally aborts.
    ShadowedByAbort,
    /// A `Seq` operand whose alphabet is empty under the current
    /// schema: the sequence can never complete.
    SeqDeadOperand,
    /// A `Plus` with `delta == 0` — "zero ticks after E" is just E,
    /// at the cost of unbounded routing.
    PlusZeroDeadline,
    /// A temporal operator with a zero span: `every(0)`, `within(0)`,
    /// or a zero-sized window/aggregate — degenerate geometry that can
    /// never (or always) hold.
    ZeroSpanTemporal,
    /// A conjunction (`And`/`Any`) lists the same primitive more than
    /// once; one occurrence satisfies both operands.
    DupPrimitiveConjunction,
    /// The rule's action has no declared effects; the analyzer falls
    /// back to "may raise anything".
    UnknownEffects,
    /// The rule references a condition/action body that is not
    /// registered; it will error at fire time.
    UnregisteredBody,
    /// The runtime recorder observed a raise/write the declaration does
    /// not cover: the declared-effects contract is wrong.
    EffectMismatch,
    /// A conservative ("effects unknown") triggering edge was actually
    /// exercised by a recorded firing cascade: the edge is real, and
    /// declaring the effect would make the static analysis precise.
    ObservedTrigger,
    /// A definite triggering edge was never exercised by any recorded
    /// firing cascade: the rule path exists on paper but is untested.
    UntestedRulePath,
    /// A recorded cascade crossed a rule pair the triggering graph has
    /// no edge for: the static model is missing a real dependency.
    UnpredictedTrigger,
    /// A rule the conflict matrix marks parallel-eligible whose recorded
    /// firings all ran on the serial lane: the parallel scheduler was
    /// never exercised for it, so its parallel behaviour is untested.
    SerialOnlyRule,
    /// The prover found a static cascade bound for this rule that meets
    /// or exceeds the configured `max_cascade_depth`: a worst-case
    /// cascade from this root is doomed to hit the runtime kill-switch
    /// and abort. Raise the limit or break the chain.
    CascadeBoundExceedsLimit,
    /// The rule sits on (or can reach) a triggering cycle the prover
    /// could not discharge: termination is not guaranteed.
    UnprovenTermination,
    /// A triggering cycle was discharged — some member provably cannot
    /// re-enable the cycle — so it does not threaten termination.
    CycleDischarged,
    /// The recorded lineage reached a cascade depth strictly greater
    /// than the static `Proven(bound)`: either the prover or the
    /// declared effects lie.
    ProvenBoundExceeded,
}

impl DiagCode {
    /// The stable kebab-case code string.
    pub fn as_str(self) -> &'static str {
        match self {
            DiagCode::ImmediateCycle => "immediate-cycle",
            DiagCode::DeferredCycle => "deferred-cycle",
            DiagCode::PotentialCycle => "potential-cycle",
            DiagCode::NonConfluent => "non-confluent",
            DiagCode::UnreachableRule => "unreachable-rule",
            DiagCode::DeafSubscription => "deaf-subscription",
            DiagCode::NoSubscription => "no-subscription",
            DiagCode::DisabledForever => "disabled-forever",
            DiagCode::ShadowedByAbort => "shadowed-by-abort",
            DiagCode::SeqDeadOperand => "seq-dead-operand",
            DiagCode::PlusZeroDeadline => "plus-zero-deadline",
            DiagCode::ZeroSpanTemporal => "zero-span-temporal",
            DiagCode::DupPrimitiveConjunction => "dup-primitive-conjunction",
            DiagCode::UnknownEffects => "unknown-effects",
            DiagCode::UnregisteredBody => "unregistered-body",
            DiagCode::EffectMismatch => "effect-mismatch",
            DiagCode::ObservedTrigger => "observed-trigger",
            DiagCode::UntestedRulePath => "untested-rule-path",
            DiagCode::UnpredictedTrigger => "unpredicted-trigger",
            DiagCode::SerialOnlyRule => "serial-only-rule",
            DiagCode::CascadeBoundExceedsLimit => "cascade-bound-exceeds-limit",
            DiagCode::UnprovenTermination => "unproven-termination",
            DiagCode::CycleDischarged => "cycle-discharged",
            DiagCode::ProvenBoundExceeded => "proven-bound-exceeded",
        }
    }

    /// The severity this code is always reported at.
    pub fn severity(self) -> Severity {
        match self {
            DiagCode::ImmediateCycle
            | DiagCode::UnreachableRule
            | DiagCode::UnregisteredBody
            | DiagCode::EffectMismatch
            | DiagCode::UnpredictedTrigger
            | DiagCode::CascadeBoundExceedsLimit
            | DiagCode::ProvenBoundExceeded => Severity::Error,
            DiagCode::DeferredCycle
            | DiagCode::NonConfluent
            | DiagCode::NoSubscription
            | DiagCode::DisabledForever
            | DiagCode::ShadowedByAbort
            | DiagCode::SeqDeadOperand
            | DiagCode::PlusZeroDeadline
            | DiagCode::ZeroSpanTemporal
            | DiagCode::DupPrimitiveConjunction
            | DiagCode::UntestedRulePath
            | DiagCode::UnprovenTermination => Severity::Warning,
            DiagCode::PotentialCycle
            | DiagCode::DeafSubscription
            | DiagCode::UnknownEffects
            | DiagCode::ObservedTrigger
            | DiagCode::SerialOnlyRule
            | DiagCode::CycleDischarged => Severity::Info,
        }
    }
}

impl fmt::Display for DiagCode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// One analyzer finding.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Diagnostic {
    /// Stable code (see [`DiagCode`]).
    pub code: DiagCode,
    /// Severity (always `code.severity()`).
    pub severity: Severity,
    /// The rule the finding is attached to, when there is a single one.
    pub rule: Option<String>,
    /// Human-readable explanation with the concrete names involved.
    pub message: String,
}

impl Diagnostic {
    /// Build a finding for `code` attached to rule `rule`.
    pub fn new(
        code: DiagCode,
        rule: impl Into<Option<String>>,
        message: impl Into<String>,
    ) -> Self {
        Diagnostic {
            code,
            severity: code.severity(),
            rule: rule.into(),
            message: message.into(),
        }
    }
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}[{}]", self.severity, self.code)?;
        if let Some(r) = &self.rule {
            write!(f, " rule `{r}`")?;
        }
        write!(f, ": {}", self.message)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn codes_are_kebab_and_severity_is_stable() {
        assert_eq!(DiagCode::ImmediateCycle.as_str(), "immediate-cycle");
        assert_eq!(DiagCode::ImmediateCycle.severity(), Severity::Error);
        assert_eq!(DiagCode::UnknownEffects.severity(), Severity::Info);
        assert!(Severity::Error > Severity::Warning);
        assert!(Severity::Warning > Severity::Info);
    }

    #[test]
    fn display_formats() {
        let d = Diagnostic::new(
            DiagCode::NoSubscription,
            Some("Audit".to_string()),
            "rule has no subscriptions",
        );
        assert_eq!(
            d.to_string(),
            "warning[no-subscription] rule `Audit`: rule has no subscriptions"
        );
    }
}
