//! The triggering graph: which rule's action can trigger which rule.

use sentinel_rules::CouplingMode;
use serde::{Deserialize, Serialize};

/// A rule node.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct GraphNode {
    /// Rule name.
    pub rule: String,
    /// Coupling mode (drives cycle severity).
    pub coupling: CouplingMode,
    /// Whether the rule is currently enabled. Disabled rules keep their
    /// node (so the DOT dump shows them) but get no edges.
    pub enabled: bool,
}

/// A triggering edge: the `from` rule's action can raise an event that
/// triggers the `to` rule.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct GraphEdge {
    /// Index of the triggering rule in [`TriggeringGraph::nodes`].
    pub from: usize,
    /// Index of the triggered rule.
    pub to: usize,
    /// `true` when derived from a declared effect; `false` for the
    /// conservative "effects unknown" edges.
    pub definite: bool,
    /// What carries the trigger, e.g. `Account::Withdraw (end)` — or
    /// `effects unknown` for conservative edges.
    pub via: String,
}

/// Rules as nodes, possible triggerings as edges.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct TriggeringGraph {
    /// One node per rule, in engine iteration order (sorted by name at
    /// construction so output is deterministic).
    pub nodes: Vec<GraphNode>,
    /// All edges, definite and conservative.
    pub edges: Vec<GraphEdge>,
}

/// A cyclic strongly connected component, reported by member indices.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Cycle {
    /// Node indices in the component (sorted).
    pub members: Vec<usize>,
    /// Whether the component is cyclic using definite edges alone.
    pub definite: bool,
}

impl TriggeringGraph {
    /// Find cyclic strongly connected components. Each returned
    /// [`Cycle`] is either cyclic through definite edges alone
    /// (`definite == true`) or only when conservative edges are added.
    /// A component cyclic on definite edges is *not* re-reported at the
    /// conservative level.
    pub fn cycles(&self) -> Vec<Cycle> {
        let all = self.sccs(|_| true);
        let definite = self.sccs(|e| e.definite);
        let mut out: Vec<Cycle> = definite
            .iter()
            .map(|m| Cycle {
                members: m.clone(),
                definite: true,
            })
            .collect();
        // Conservative-level components that add something new: cyclic
        // with all edges, not a subset relationship already reported.
        for members in all {
            let covered = definite
                .iter()
                .any(|d| members.iter().all(|m| d.contains(m)));
            if !covered {
                out.push(Cycle {
                    members,
                    definite: false,
                });
            }
        }
        out.sort_by(|a, b| a.members.cmp(&b.members));
        out
    }

    /// Tarjan's SCC over the subgraph of edges passing `keep`, returning
    /// only *cyclic* components (size > 1, or a single node with a kept
    /// self-loop), members sorted.
    fn sccs(&self, keep: impl Fn(&GraphEdge) -> bool) -> Vec<Vec<usize>> {
        let n = self.nodes.len();
        let mut adj: Vec<Vec<usize>> = vec![Vec::new(); n];
        let mut self_loop = vec![false; n];
        for e in &self.edges {
            if keep(e) {
                adj[e.from].push(e.to);
                if e.from == e.to {
                    self_loop[e.from] = true;
                }
            }
        }

        // Iterative Tarjan (explicit stack; rule sets are small but the
        // engine shouldn't be able to overflow the thread stack either).
        const UNSET: usize = usize::MAX;
        let mut index = vec![UNSET; n];
        let mut low = vec![0usize; n];
        let mut on_stack = vec![false; n];
        let mut stack: Vec<usize> = Vec::new();
        let mut next_index = 0usize;
        let mut comps: Vec<Vec<usize>> = Vec::new();
        // (node, next child position)
        let mut work: Vec<(usize, usize)> = Vec::new();

        for start in 0..n {
            if index[start] != UNSET {
                continue;
            }
            work.push((start, 0));
            while let Some(&(v, ci)) = work.last() {
                if ci == 0 {
                    index[v] = next_index;
                    low[v] = next_index;
                    next_index += 1;
                    stack.push(v);
                    on_stack[v] = true;
                }
                if let Some(&w) = adj[v].get(ci) {
                    work.last_mut().expect("frame present").1 += 1;
                    if index[w] == UNSET {
                        work.push((w, 0));
                    } else if on_stack[w] {
                        low[v] = low[v].min(index[w]);
                    }
                } else {
                    work.pop();
                    if let Some(&(parent, _)) = work.last() {
                        low[parent] = low[parent].min(low[v]);
                    }
                    if low[v] == index[v] {
                        let mut comp = Vec::new();
                        while let Some(w) = stack.pop() {
                            on_stack[w] = false;
                            comp.push(w);
                            if w == v {
                                break;
                            }
                        }
                        if comp.len() > 1 || self_loop[comp[0]] {
                            comp.sort_unstable();
                            comps.push(comp);
                        }
                    }
                }
            }
        }
        comps.sort();
        comps
    }

    /// Graphviz DOT rendering: solid edges are definite, dashed are
    /// conservative; disabled rules are grayed.
    pub fn to_dot(&self) -> String {
        use std::fmt::Write;
        let mut s = String::from("digraph triggering {\n  rankdir=LR;\n  node [shape=box];\n");
        for node in &self.nodes {
            let style = if node.enabled {
                String::new()
            } else {
                ", style=dashed, color=gray".to_string()
            };
            let _ = writeln!(
                s,
                "  \"{}\" [label=\"{}\\n{}\"{}];",
                node.rule,
                node.rule,
                node.coupling.name(),
                style
            );
        }
        for e in &self.edges {
            let style = if e.definite { "solid" } else { "dashed" };
            let _ = writeln!(
                s,
                "  \"{}\" -> \"{}\" [label=\"{}\", style={}];",
                self.nodes[e.from].rule, self.nodes[e.to].rule, e.via, style
            );
        }
        s.push_str("}\n");
        s
    }

    /// Node index by rule name.
    pub fn node_of(&self, rule: &str) -> Option<usize> {
        self.nodes.iter().position(|n| n.rule == rule)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn node(name: &str) -> GraphNode {
        GraphNode {
            rule: name.into(),
            coupling: CouplingMode::Immediate,
            enabled: true,
        }
    }

    fn edge(from: usize, to: usize, definite: bool) -> GraphEdge {
        GraphEdge {
            from,
            to,
            definite,
            via: if definite {
                "X::m (end)".into()
            } else {
                "effects unknown".into()
            },
        }
    }

    #[test]
    fn finds_definite_cycle_and_ignores_dag() {
        let g = TriggeringGraph {
            nodes: vec![node("a"), node("b"), node("c"), node("d")],
            // a -> b -> a is a cycle; c -> d is not.
            edges: vec![edge(0, 1, true), edge(1, 0, true), edge(2, 3, true)],
        };
        let cycles = g.cycles();
        assert_eq!(cycles.len(), 1);
        assert_eq!(cycles[0].members, vec![0, 1]);
        assert!(cycles[0].definite);
    }

    #[test]
    fn self_loop_is_a_cycle() {
        let g = TriggeringGraph {
            nodes: vec![node("a")],
            edges: vec![edge(0, 0, true)],
        };
        let cycles = g.cycles();
        assert_eq!(cycles.len(), 1);
        assert_eq!(cycles[0].members, vec![0]);
    }

    #[test]
    fn conservative_cycle_reported_separately() {
        let g = TriggeringGraph {
            nodes: vec![node("a"), node("b")],
            // Cycle only closes through the conservative edge.
            edges: vec![edge(0, 1, true), edge(1, 0, false)],
        };
        let cycles = g.cycles();
        assert_eq!(cycles.len(), 1);
        assert!(!cycles[0].definite);
        assert_eq!(cycles[0].members, vec![0, 1]);
    }

    #[test]
    fn definite_cycle_not_rereported_at_conservative_level() {
        let g = TriggeringGraph {
            nodes: vec![node("a"), node("b"), node("c")],
            // a <-> b definitely; c joins the component conservatively.
            edges: vec![
                edge(0, 1, true),
                edge(1, 0, true),
                edge(1, 2, false),
                edge(2, 0, false),
            ],
        };
        let cycles = g.cycles();
        // One definite {a, b}; one conservative {a, b, c} (it is not a
        // subset of the definite component, so it adds information).
        assert_eq!(cycles.len(), 2);
        assert!(cycles.iter().any(|c| c.definite && c.members == vec![0, 1]));
        assert!(cycles
            .iter()
            .any(|c| !c.definite && c.members == vec![0, 1, 2]));
    }

    #[test]
    fn dot_renders_nodes_and_edge_styles() {
        let mut g = TriggeringGraph {
            nodes: vec![node("a"), node("b")],
            edges: vec![edge(0, 1, true), edge(1, 0, false)],
        };
        g.nodes[1].enabled = false;
        let dot = g.to_dot();
        assert!(dot.contains("digraph triggering"));
        assert!(dot.contains("\"a\" -> \"b\" [label=\"X::m (end)\", style=solid]"));
        assert!(dot.contains("\"b\" -> \"a\" [label=\"effects unknown\", style=dashed]"));
        assert!(dot.contains("style=dashed, color=gray"));
    }
}
