//! The triggering graph: which rule's action can trigger which rule.

use sentinel_rules::CouplingMode;
use serde::{Deserialize, Serialize};

/// A rule node.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct GraphNode {
    /// Rule name.
    pub rule: String,
    /// Coupling mode (drives cycle severity).
    pub coupling: CouplingMode,
    /// Whether the rule is currently enabled. Disabled rules keep their
    /// node (so the DOT dump shows them) but get no edges.
    pub enabled: bool,
}

/// How much the analyzer believes a triggering edge — the refinement
/// lattice `Definite > Conservative > Refuted`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum EdgeKind {
    /// Derived from a declared effect: the source provably raises an
    /// event in the target's audible alphabet.
    Definite,
    /// Cannot be ruled out: the source's effects are undeclared ("may
    /// raise anything"), or its declared writes touch the target's
    /// read-set (data feedback that can re-enable the target's
    /// condition even though no event connects them).
    Conservative,
    /// Proven impossible: the source declares effects, raises nothing in
    /// the target's alphabet, and writes nothing the target reads. Kept
    /// in the edge list so the pruning is auditable (DOT, `graph_edges`
    /// relation), but excluded from cycle detection and cascade bounds.
    Refuted,
}

impl EdgeKind {
    /// Stable lowercase label (`definite` / `conservative` / `refuted`).
    pub fn as_str(self) -> &'static str {
        match self {
            EdgeKind::Definite => "definite",
            EdgeKind::Conservative => "conservative",
            EdgeKind::Refuted => "refuted",
        }
    }
}

/// A triggering edge: the `from` rule's action can raise an event that
/// triggers the `to` rule (or, for refuted edges, provably cannot).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct GraphEdge {
    /// Index of the triggering rule in [`TriggeringGraph::nodes`].
    pub from: usize,
    /// Index of the triggered rule.
    pub to: usize,
    /// Where the edge sits in the refinement lattice.
    pub kind: EdgeKind,
    /// What carries the trigger, e.g. `Account::Withdraw (end)`;
    /// `effects unknown` / `data feedback: ...` for conservative edges;
    /// the refutation argument for refuted edges.
    pub via: String,
}

impl GraphEdge {
    /// `true` only for [`EdgeKind::Definite`] edges.
    pub fn is_definite(&self) -> bool {
        self.kind == EdgeKind::Definite
    }

    /// `true` for edges that may carry a trigger (not refuted).
    pub fn is_live(&self) -> bool {
        self.kind != EdgeKind::Refuted
    }
}

/// Rules as nodes, possible triggerings as edges.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct TriggeringGraph {
    /// One node per rule, in engine iteration order (sorted by name at
    /// construction so output is deterministic).
    pub nodes: Vec<GraphNode>,
    /// All edges: definite, conservative, and refuted.
    pub edges: Vec<GraphEdge>,
}

/// A cyclic strongly connected component, reported by member indices.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Cycle {
    /// Node indices in the component (sorted).
    pub members: Vec<usize>,
    /// Whether the component is cyclic using definite edges alone.
    pub definite: bool,
}

impl TriggeringGraph {
    /// Count edges of one kind.
    pub fn count(&self, kind: EdgeKind) -> usize {
        self.edges.iter().filter(|e| e.kind == kind).count()
    }

    /// Find cyclic strongly connected components over the *live* (non-
    /// refuted) edges. Each returned [`Cycle`] is either cyclic through
    /// definite edges alone (`definite == true`) or only when
    /// conservative edges are added. A component cyclic on definite
    /// edges is *not* re-reported at the conservative level. Refuted
    /// edges never participate.
    pub fn cycles(&self) -> Vec<Cycle> {
        let all = self.sccs(|e| e.is_live());
        let definite = self.sccs(|e| e.is_definite());
        let mut out: Vec<Cycle> = definite
            .iter()
            .map(|m| Cycle {
                members: m.clone(),
                definite: true,
            })
            .collect();
        // Conservative-level components that add something new: cyclic
        // with all live edges, not a subset relationship already
        // reported.
        for members in all {
            let covered = definite
                .iter()
                .any(|d| members.iter().all(|m| d.contains(m)));
            if !covered {
                out.push(Cycle {
                    members,
                    definite: false,
                });
            }
        }
        out.sort_by(|a, b| a.members.cmp(&b.members));
        out
    }

    /// Tarjan's SCC over the subgraph of edges passing `keep`, returning
    /// only *cyclic* components (size > 1, or a single node with a kept
    /// self-loop), members sorted.
    pub(crate) fn sccs(&self, keep: impl Fn(&GraphEdge) -> bool) -> Vec<Vec<usize>> {
        let n = self.nodes.len();
        let mut adj: Vec<Vec<usize>> = vec![Vec::new(); n];
        let mut self_loop = vec![false; n];
        for e in &self.edges {
            if keep(e) {
                adj[e.from].push(e.to);
                if e.from == e.to {
                    self_loop[e.from] = true;
                }
            }
        }

        // Iterative Tarjan (explicit stack; rule sets are small but the
        // engine shouldn't be able to overflow the thread stack either).
        const UNSET: usize = usize::MAX;
        let mut index = vec![UNSET; n];
        let mut low = vec![0usize; n];
        let mut on_stack = vec![false; n];
        let mut stack: Vec<usize> = Vec::new();
        let mut next_index = 0usize;
        let mut comps: Vec<Vec<usize>> = Vec::new();
        // (node, next child position)
        let mut work: Vec<(usize, usize)> = Vec::new();

        for start in 0..n {
            if index[start] != UNSET {
                continue;
            }
            work.push((start, 0));
            while let Some(&(v, ci)) = work.last() {
                if ci == 0 {
                    index[v] = next_index;
                    low[v] = next_index;
                    next_index += 1;
                    stack.push(v);
                    on_stack[v] = true;
                }
                if let Some(&w) = adj[v].get(ci) {
                    work.last_mut().expect("frame present").1 += 1;
                    if index[w] == UNSET {
                        work.push((w, 0));
                    } else if on_stack[w] {
                        low[v] = low[v].min(index[w]);
                    }
                } else {
                    work.pop();
                    if let Some(&(parent, _)) = work.last() {
                        low[parent] = low[parent].min(low[v]);
                    }
                    if low[v] == index[v] {
                        let mut comp = Vec::new();
                        while let Some(w) = stack.pop() {
                            on_stack[w] = false;
                            comp.push(w);
                            if w == v {
                                break;
                            }
                        }
                        if comp.len() > 1 || self_loop[comp[0]] {
                            comp.sort_unstable();
                            comps.push(comp);
                        }
                    }
                }
            }
        }
        comps.sort();
        comps
    }

    /// Graphviz DOT rendering: solid edges are definite, dashed are
    /// conservative, dashed gray are refuted (provably impossible, kept
    /// for audit); disabled rules are grayed. A bottom label spells the
    /// legend out.
    pub fn to_dot(&self) -> String {
        use std::fmt::Write;
        let mut s = String::from("digraph triggering {\n  rankdir=LR;\n  node [shape=box];\n");
        s.push_str(
            "  label=\"solid = definite, dashed = conservative, dashed gray = refuted\";\n  labelloc=b;\n",
        );
        for node in &self.nodes {
            let style = if node.enabled {
                String::new()
            } else {
                ", style=dashed, color=gray".to_string()
            };
            let _ = writeln!(
                s,
                "  \"{}\" [label=\"{}\\n{}\"{}];",
                node.rule,
                node.rule,
                node.coupling.name(),
                style
            );
        }
        for e in &self.edges {
            let style = match e.kind {
                EdgeKind::Definite => "solid]",
                EdgeKind::Conservative => "dashed]",
                EdgeKind::Refuted => "dashed, color=gray, fontcolor=gray]",
            };
            let _ = writeln!(
                s,
                "  \"{}\" -> \"{}\" [label=\"{}\", style={}",
                self.nodes[e.from].rule, self.nodes[e.to].rule, e.via, style
            );
        }
        s.push_str("}\n");
        s
    }

    /// Node index by rule name.
    pub fn node_of(&self, rule: &str) -> Option<usize> {
        self.nodes.iter().position(|n| n.rule == rule)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn node(name: &str) -> GraphNode {
        GraphNode {
            rule: name.into(),
            coupling: CouplingMode::Immediate,
            enabled: true,
        }
    }

    fn edge(from: usize, to: usize, kind: EdgeKind) -> GraphEdge {
        GraphEdge {
            from,
            to,
            kind,
            via: match kind {
                EdgeKind::Definite => "X::m (end)".into(),
                EdgeKind::Conservative => "effects unknown".into(),
                EdgeKind::Refuted => "refuted: cannot trigger".into(),
            },
        }
    }

    #[test]
    fn finds_definite_cycle_and_ignores_dag() {
        let g = TriggeringGraph {
            nodes: vec![node("a"), node("b"), node("c"), node("d")],
            // a -> b -> a is a cycle; c -> d is not.
            edges: vec![
                edge(0, 1, EdgeKind::Definite),
                edge(1, 0, EdgeKind::Definite),
                edge(2, 3, EdgeKind::Definite),
            ],
        };
        let cycles = g.cycles();
        assert_eq!(cycles.len(), 1);
        assert_eq!(cycles[0].members, vec![0, 1]);
        assert!(cycles[0].definite);
    }

    #[test]
    fn self_loop_is_a_cycle() {
        let g = TriggeringGraph {
            nodes: vec![node("a")],
            edges: vec![edge(0, 0, EdgeKind::Definite)],
        };
        let cycles = g.cycles();
        assert_eq!(cycles.len(), 1);
        assert_eq!(cycles[0].members, vec![0]);
    }

    #[test]
    fn conservative_cycle_reported_separately() {
        let g = TriggeringGraph {
            nodes: vec![node("a"), node("b")],
            // Cycle only closes through the conservative edge.
            edges: vec![
                edge(0, 1, EdgeKind::Definite),
                edge(1, 0, EdgeKind::Conservative),
            ],
        };
        let cycles = g.cycles();
        assert_eq!(cycles.len(), 1);
        assert!(!cycles[0].definite);
        assert_eq!(cycles[0].members, vec![0, 1]);
    }

    #[test]
    fn refuted_edges_close_no_cycle() {
        let g = TriggeringGraph {
            nodes: vec![node("a"), node("b")],
            // The same shape, but the back edge is refuted: no cycle.
            edges: vec![
                edge(0, 1, EdgeKind::Definite),
                edge(1, 0, EdgeKind::Refuted),
                edge(0, 0, EdgeKind::Refuted),
            ],
        };
        assert!(g.cycles().is_empty());
        assert_eq!(g.count(EdgeKind::Refuted), 2);
        assert_eq!(g.count(EdgeKind::Definite), 1);
    }

    #[test]
    fn definite_cycle_not_rereported_at_conservative_level() {
        let g = TriggeringGraph {
            nodes: vec![node("a"), node("b"), node("c")],
            // a <-> b definitely; c joins the component conservatively.
            edges: vec![
                edge(0, 1, EdgeKind::Definite),
                edge(1, 0, EdgeKind::Definite),
                edge(1, 2, EdgeKind::Conservative),
                edge(2, 0, EdgeKind::Conservative),
            ],
        };
        let cycles = g.cycles();
        // One definite {a, b}; one conservative {a, b, c} (it is not a
        // subset of the definite component, so it adds information).
        assert_eq!(cycles.len(), 2);
        assert!(cycles.iter().any(|c| c.definite && c.members == vec![0, 1]));
        assert!(cycles
            .iter()
            .any(|c| !c.definite && c.members == vec![0, 1, 2]));
    }

    #[test]
    fn dot_renders_nodes_edge_styles_and_legend() {
        let mut g = TriggeringGraph {
            nodes: vec![node("a"), node("b")],
            edges: vec![
                edge(0, 1, EdgeKind::Definite),
                edge(1, 0, EdgeKind::Conservative),
                edge(1, 1, EdgeKind::Refuted),
            ],
        };
        g.nodes[1].enabled = false;
        let dot = g.to_dot();
        assert!(dot.contains("digraph triggering"));
        assert!(dot.contains("\"a\" -> \"b\" [label=\"X::m (end)\", style=solid]"));
        assert!(dot.contains("\"b\" -> \"a\" [label=\"effects unknown\", style=dashed]"));
        assert!(dot
            .contains("\"b\" -> \"b\" [label=\"refuted: cannot trigger\", style=dashed, color=gray, fontcolor=gray]"));
        assert!(dot.contains("style=dashed, color=gray];"));
        assert!(dot.contains("dashed gray = refuted"));
    }
}
