//! Intentionally-broken rule sets under `tests/fixtures/` must produce
//! exactly the documented diagnostic codes — this is what makes the CI
//! `analyze-gate` step trustworthy: the gate that passes the shipped
//! examples is proven here to fail on broken input.

use sentinel_analyze::{diff_effects, ObservedEffects, RuleAnalyzer, Severity, Verdict};
use sentinel_events::{parse_signature, EventExpr};
use sentinel_object::{ClassDecl, ClassRegistry, Oid};
use sentinel_rules::{ActionEffects, CouplingMode, RuleDef, RuleEngine};
use serde::Deserialize;
use std::collections::HashMap;

#[derive(Deserialize)]
struct Fixture {
    #[allow(dead_code)]
    comment: String,
    classes: Vec<FixtureClass>,
    rules: Vec<FixtureRule>,
    effects: Vec<(String, FixtureEffects)>,
    class_subs: Vec<(String, String)>,
    object_subs: Vec<(String, String)>,
    observed: Vec<(String, FixtureEffectPairs)>,
    expect: Vec<FixtureExpect>,
}

#[derive(Deserialize)]
struct FixtureClass {
    name: String,
    reactive: bool,
    parent: String,
    methods: Vec<String>,
}

#[derive(Deserialize)]
struct FixtureRule {
    name: String,
    event: String,
    condition: String,
    action: String,
    coupling: String,
    priority: i64,
    enabled: bool,
}

#[derive(Deserialize)]
struct FixtureEffects {
    raises: Vec<(String, String)>,
    writes: Vec<(String, String)>,
}

#[derive(Deserialize)]
struct FixtureEffectPairs {
    raises: Vec<(String, String)>,
    writes: Vec<(String, String)>,
}

#[derive(Deserialize)]
struct FixtureExpect {
    code: String,
    /// Empty string = finding not attached to a rule.
    rule: String,
}

fn load(name: &str) -> Fixture {
    let path = format!("{}/tests/fixtures/{name}", env!("CARGO_MANIFEST_DIR"));
    let text = std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("read {path}: {e}"));
    serde_json::from_str(&text).unwrap_or_else(|e| panic!("parse {path}: {e}"))
}

/// Build schema + engine + subscriptions from a fixture and run the
/// analyzer plus the declared-vs-observed diff.
fn analyze(fixture: &Fixture) -> sentinel_analyze::AnalysisReport {
    let mut registry = ClassRegistry::new();
    for c in &fixture.classes {
        let mut decl = if c.reactive {
            ClassDecl::reactive(&c.name)
        } else {
            ClassDecl::new(&c.name)
        };
        if !c.parent.is_empty() {
            decl = decl.parent(&c.parent);
        }
        for m in &c.methods {
            decl = decl.method(m, &[]);
        }
        registry.define(decl).unwrap();
    }

    let mut engine = RuleEngine::new();
    for r in &fixture.rules {
        if !engine.bodies.has_condition(&r.condition) {
            engine
                .bodies
                .register_condition(&r.condition, |_, _| Ok(true));
        }
        if !engine.bodies.has_action(&r.action) {
            engine.bodies.register_action(&r.action, |_, _| Ok(()));
        }
    }
    for (action, fx) in &fixture.effects {
        let mut effects = ActionEffects::none();
        for (class, method) in &fx.raises {
            effects = effects.raising(class, method);
        }
        for (class, attr) in &fx.writes {
            effects = effects.writing(class, attr);
        }
        engine
            .bodies
            .declare_action_effects(action, effects)
            .unwrap();
    }

    let mut object_classes = HashMap::new();
    let mut next_oid = 1000u64;
    for r in &fixture.rules {
        let coupling = match r.coupling.as_str() {
            "Immediate" => CouplingMode::Immediate,
            "Deferred" => CouplingMode::Deferred,
            "Detached" => CouplingMode::Detached,
            other => panic!("fixture coupling `{other}`"),
        };
        let spec = parse_signature(&r.event).unwrap();
        let def = RuleDef::new(&r.name, EventExpr::primitive(spec), &r.action)
            .condition(&r.condition)
            .coupling(coupling)
            .priority(r.priority as i32);
        let id = engine.add_rule(def, Oid::NIL, &registry).unwrap();
        if !r.enabled {
            engine.disable(id).unwrap();
        }
        for (class, rule) in &fixture.class_subs {
            if rule == &r.name {
                engine
                    .subscriptions
                    .subscribe_class(registry.id_of(class).unwrap(), id);
            }
        }
        for (class, rule) in &fixture.object_subs {
            if rule == &r.name {
                let oid = Oid(next_oid);
                next_oid += 1;
                object_classes.insert(oid, registry.id_of(class).unwrap());
                engine.subscriptions.subscribe_object(oid, id);
            }
        }
    }

    let mut report = RuleAnalyzer::new(&registry, &engine)
        .with_object_classes(object_classes)
        .analyze();
    for (action, obs) in &fixture.observed {
        let declared = engine
            .bodies
            .action_effects(action)
            .unwrap_or_else(|| panic!("fixture observes undeclared action `{action}`"))
            .clone();
        let mut observed = ObservedEffects::default();
        for (class, method) in &obs.raises {
            observed.record_raise(class, method);
        }
        for (class, attr) in &obs.writes {
            observed.record_write(class, attr);
        }
        report
            .diagnostics
            .extend(diff_effects(action, &declared, &observed, &registry));
    }
    report
}

/// Every expected (code, rule) pair must be found, with multiplicity.
fn assert_expected(fixture: &Fixture, report: &sentinel_analyze::AnalysisReport) {
    let mut unmatched: Vec<&sentinel_analyze::Diagnostic> = report.diagnostics.iter().collect();
    for want in &fixture.expect {
        let rule = (!want.rule.is_empty()).then_some(want.rule.as_str());
        let pos = unmatched
            .iter()
            .position(|d| d.code.as_str() == want.code && d.rule.as_deref() == rule)
            .unwrap_or_else(|| {
                panic!(
                    "expected `{}` on rule {:?}; got:\n{}",
                    want.code,
                    rule,
                    report.render_table()
                )
            });
        unmatched.remove(pos);
    }
}

#[test]
fn immediate_cycle_fixture_fails_the_gate() {
    let fixture = load("immediate_cycle.json");
    let report = analyze(&fixture);
    assert_expected(&fixture, &report);
    // Both cycle members are named in the finding.
    let cycle = report
        .diagnostics
        .iter()
        .find(|d| d.code.as_str() == "immediate-cycle")
        .unwrap();
    assert!(cycle.message.contains("`DecOnInc`") && cycle.message.contains("`IncOnDec`"));
    assert_eq!(cycle.severity, Severity::Error);
    assert!(report.has_errors());
    assert!(report.gate().is_err());
    // The DOT dump shows both definite edges.
    let dot = report.to_dot();
    assert!(dot.contains("\"DecOnInc\" -> \"IncOnDec\""));
    assert!(dot.contains("\"IncOnDec\" -> \"DecOnInc\""));
}

#[test]
fn unreachable_fixture_fails_the_gate() {
    let fixture = load("unreachable.json");
    let report = analyze(&fixture);
    assert_expected(&fixture, &report);
    assert!(report.has_errors());
    let err = report.gate().unwrap_err().to_string();
    assert!(err.contains("unreachable-rule"), "{err}");
}

#[test]
fn effects_mismatch_fixture_fails_the_gate() {
    let fixture = load("effects_mismatch.json");
    let report = analyze(&fixture);
    assert_expected(&fixture, &report);
    assert_eq!(
        report
            .diagnostics
            .iter()
            .filter(|d| d.code.as_str() == "effect-mismatch")
            .count(),
        2,
        "one mismatch per undeclared raise/write"
    );
    assert!(report.gate().is_err());
}

/// Known-terminating corpus: a definite acyclic chain must prove every
/// rule with the exact longest-path bound and raise no termination
/// findings at all.
#[test]
fn terminating_chain_fixture_is_fully_proven() {
    let fixture = load("terminating_chain.json");
    let report = analyze(&fixture);
    assert_expected(&fixture, &report);
    assert!(!report.has_errors(), "{}", report.render_table());
    assert!(report.termination.all_proven(), "{}", report.render_table());
    let bound = |rule: &str| report.termination.verdict_of(rule).unwrap().verdict;
    assert_eq!(bound("OnIngest"), Verdict::Proven(2));
    assert_eq!(bound("OnRefine"), Verdict::Proven(1));
    assert_eq!(bound("OnPublish"), Verdict::Proven(0));
    assert_eq!(report.termination.max_proven_bound(), Some(2));
    assert!(!report
        .diagnostics
        .iter()
        .any(|d| d.code.as_str() == "unproven-termination"));
    assert!(report.gate().is_ok());
}

/// Known-diverging corpus: a definite two-rule cycle with trivial
/// conditions defeats every discharge predicate, so both members are
/// Unbounded and the gate still passes (warnings, not errors).
#[test]
fn diverging_cycle_fixture_is_unbounded() {
    let fixture = load("diverging_cycle.json");
    let report = analyze(&fixture);
    assert_expected(&fixture, &report);
    for rule in ["AonB", "BonA"] {
        assert_eq!(
            report.termination.verdict_of(rule).unwrap().verdict,
            Verdict::Unbounded,
            "{}",
            report.render_table()
        );
    }
    assert_eq!(report.termination.max_proven_bound(), None);
    assert_eq!(report.termination.undischarged.len(), 1);
}

/// Discharge-able corpus: a data-feedback self-loop (declared-empty
/// raises, writes overlapping its own read-set) is discharged and the
/// rule proven at bound 0; the conservative cycle warning is superseded
/// by the discharge info.
#[test]
fn discharged_cycle_fixture_is_proven() {
    let fixture = load("discharged_cycle.json");
    let report = analyze(&fixture);
    assert_expected(&fixture, &report);
    assert_eq!(
        report.termination.verdict_of("SelfTune").unwrap().verdict,
        Verdict::Proven(0),
        "{}",
        report.render_table()
    );
    assert_eq!(report.termination.discharged.len(), 1);
    assert_eq!(report.termination.discharged[0].witness, "SelfTune");
    // The discharge proof silences the potential-cycle warning.
    assert!(
        !report
            .diagnostics
            .iter()
            .any(|d| d.code.as_str() == "potential-cycle"),
        "{}",
        report.render_table()
    );
    assert!(report.gate().is_ok());
}

/// Negative control: the same schema with truthful declarations and a
/// reachable subscription produces no error-severity findings — the
/// gate passes clean rule sets.
#[test]
fn clean_rule_set_passes_the_gate() {
    let mut registry = ClassRegistry::new();
    registry
        .define(ClassDecl::reactive("Sensor").method("Beep", &[]))
        .unwrap();
    let mut engine = RuleEngine::new();
    engine
        .bodies
        .register_action_with_effects("log", ActionEffects::none(), |_, _| Ok(()));
    let def = RuleDef::new(
        "BeepLog",
        EventExpr::primitive(parse_signature("end Sensor::Beep").unwrap()),
        "log",
    );
    let id = engine.add_rule(def, Oid::NIL, &registry).unwrap();
    engine
        .subscriptions
        .subscribe_class(registry.id_of("Sensor").unwrap(), id);
    let report = RuleAnalyzer::new(&registry, &engine).analyze();
    assert!(!report.has_errors(), "{}", report.render_table());
    assert!(report.gate().is_ok());
    assert!(report.render_table().contains("no findings"));
}
