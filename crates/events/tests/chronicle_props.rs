//! Chronicle-parity property test: the production detector — with its
//! symbol routing, interning, undo journaling, and cap machinery — must
//! agree exactly with a naive direct interpretation of the Chronicle
//! parameter context on random `And`/`Or`/`Seq` programs over random
//! primitive streams.
//!
//! The oracle below is deliberately dumb: per-node FIFO `VecDeque`s and
//! a recursive step function transcribing the published pairing rules
//! (oldest-first pairing, consume on detection, sequences discard
//! orphan rights). Any divergence — an extra emission, a missing one, a
//! wrong constituent set — fails the property.

use proptest::prelude::*;
use sentinel_events::{
    CompositeOccurrence, DetectorCaps, DetectorInstance, EventExpr, EventModifier, ParamContext,
    PrimitiveEventSpec, PrimitiveOccurrence,
};
use sentinel_object::{ClassDecl, ClassRegistry, Oid, Value};
use std::collections::VecDeque;
use std::sync::Arc;

const METHODS: [&str; 4] = ["m0", "m1", "m2", "m3"];

fn registry() -> ClassRegistry {
    let mut reg = ClassRegistry::new();
    let mut decl = ClassDecl::reactive("C");
    for m in METHODS {
        decl = decl.method(m, &[]);
    }
    reg.define(decl).unwrap();
    reg
}

fn occ(reg: &ClassRegistry, at: u64, method: &str) -> PrimitiveOccurrence {
    let cid = reg.id_of("C").unwrap();
    PrimitiveOccurrence {
        at,
        oid: Oid(at),
        class: cid,
        owner: cid,
        method: method.into(),
        modifier: EventModifier::End,
        params: Arc::from(Vec::<Value>::new()),
    }
}

/// The oracle's occurrence: constituent `at` stamps plus the interval.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
struct Naive {
    start: u64,
    end: u64,
    ats: Vec<u64>,
}

impl Naive {
    fn leaf(at: u64) -> Naive {
        Naive {
            start: at,
            end: at,
            ats: vec![at],
        }
    }

    fn merge(a: &Naive, b: &Naive) -> Naive {
        let mut ats = a.ats.clone();
        ats.extend(b.ats.iter().copied());
        ats.sort_unstable();
        Naive {
            start: a.start.min(b.start),
            end: a.end.max(b.end),
            ats,
        }
    }
}

/// A stateful mirror of the detector tree under Chronicle semantics.
enum Node {
    Leaf(usize),
    And(Box<Node>, Box<Node>, VecDeque<Naive>, VecDeque<Naive>),
    Or(Box<Node>, Box<Node>),
    Seq(Box<Node>, Box<Node>, VecDeque<Naive>),
}

impl Node {
    fn step(&mut self, method: usize, at: u64) -> Vec<Naive> {
        match self {
            Node::Leaf(m) => {
                if *m == method {
                    vec![Naive::leaf(at)]
                } else {
                    vec![]
                }
            }
            Node::And(l, r, lbuf, rbuf) => {
                let le = l.step(method, at);
                let re = r.step(method, at);
                let mut out = Vec::new();
                // Oldest-first pairing, each occurrence consumed once.
                for l in le {
                    match rbuf.pop_front() {
                        Some(r) => out.push(Naive::merge(&l, &r)),
                        None => lbuf.push_back(l),
                    }
                }
                for r in re {
                    match lbuf.pop_front() {
                        Some(l) => out.push(Naive::merge(&l, &r)),
                        None => rbuf.push_back(r),
                    }
                }
                out
            }
            Node::Or(l, r) => {
                let mut out = l.step(method, at);
                out.extend(r.step(method, at));
                out
            }
            Node::Seq(l, r, lbuf) => {
                let le = l.step(method, at);
                let re = r.step(method, at);
                let mut out = Vec::new();
                // A right pairs with the oldest strictly-earlier left or
                // is discarded; new lefts buffer after the rights ran.
                for r in &re {
                    if lbuf.front().map(|l| l.end < r.start).unwrap_or(false) {
                        let l = lbuf.pop_front().unwrap();
                        out.push(Naive::merge(&l, r));
                    }
                }
                for l in le {
                    lbuf.push_back(l);
                }
                out
            }
        }
    }
}

/// A random expression shape the strategies below instantiate both as
/// an `EventExpr` (production) and a `Node` (oracle).
#[derive(Debug, Clone)]
enum Shape {
    Leaf(usize),
    And(Box<Shape>, Box<Shape>),
    Or(Box<Shape>, Box<Shape>),
    Seq(Box<Shape>, Box<Shape>),
}

impl Shape {
    fn to_expr(&self) -> EventExpr {
        match self {
            Shape::Leaf(m) => EventExpr::primitive(PrimitiveEventSpec::end("C", METHODS[*m])),
            Shape::And(a, b) => a.to_expr().and(b.to_expr()),
            Shape::Or(a, b) => a.to_expr().or(b.to_expr()),
            Shape::Seq(a, b) => a.to_expr().then(b.to_expr()),
        }
    }

    fn to_node(&self) -> Node {
        match self {
            Shape::Leaf(m) => Node::Leaf(*m),
            Shape::And(a, b) => Node::And(
                Box::new(a.to_node()),
                Box::new(b.to_node()),
                VecDeque::new(),
                VecDeque::new(),
            ),
            Shape::Or(a, b) => Node::Or(Box::new(a.to_node()), Box::new(b.to_node())),
            Shape::Seq(a, b) => Node::Seq(
                Box::new(a.to_node()),
                Box::new(b.to_node()),
                VecDeque::new(),
            ),
        }
    }
}

/// Random expression trees, depth ≤ 3 (the vendored proptest has no
/// `prop_recursive`, so this drives the rng directly).
struct ArbShape;

fn gen_shape(rng: &mut proptest::TestRng, depth: u32) -> Shape {
    if depth == 0 || rng.next_u64().is_multiple_of(3) {
        return Shape::Leaf((rng.next_u64() % METHODS.len() as u64) as usize);
    }
    let a = Box::new(gen_shape(rng, depth - 1));
    let b = Box::new(gen_shape(rng, depth - 1));
    match rng.next_u64() % 3 {
        0 => Shape::And(a, b),
        1 => Shape::Or(a, b),
        _ => Shape::Seq(a, b),
    }
}

impl Strategy for ArbShape {
    type Value = Shape;
    fn generate(&self, rng: &mut proptest::TestRng) -> Shape {
        gen_shape(rng, 3)
    }
}

fn arb_shape() -> impl Strategy<Value = Shape> {
    ArbShape
}

fn canon(o: &CompositeOccurrence) -> Naive {
    let mut ats: Vec<u64> = o.constituents.iter().map(|c| c.at).collect();
    ats.sort_unstable();
    Naive {
        start: o.start,
        end: o.end,
        ats,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Per-stimulus parity: for every event in the stream, the multiset
    /// of composites the production detector emits equals the oracle's.
    #[test]
    fn chronicle_detector_matches_naive_oracle(
        shape in arb_shape(),
        stream in prop::collection::vec(0usize..METHODS.len(), 0..40),
    ) {
        let reg = registry();
        let expr = shape.to_expr();
        let mut det = DetectorInstance::compile(
            &expr,
            &reg,
            ParamContext::Chronicle,
            DetectorCaps::default(),
        )
        .unwrap();
        let mut oracle = shape.to_node();
        for (i, &m) in stream.iter().enumerate() {
            let at = (i + 1) as u64;
            let mut got: Vec<Naive> = det
                .process(&reg, &occ(&reg, at, METHODS[m]))
                .iter()
                .map(canon)
                .collect();
            let mut want = oracle.step(m, at);
            got.sort();
            want.sort();
            prop_assert_eq!(
                got,
                want,
                "divergence at stimulus {} ({}) for {:?}",
                at,
                METHODS[m],
                shape
            );
        }
    }

    /// The same parity holds across an abort: state journaled during a
    /// transaction and rolled back must leave the detector exactly where
    /// the oracle (which never saw the aborted suffix) stands.
    #[test]
    fn chronicle_parity_survives_aborted_transactions(
        shape in arb_shape(),
        committed in prop::collection::vec(0usize..METHODS.len(), 0..20),
        aborted in prop::collection::vec(0usize..METHODS.len(), 1..10),
        resumed in prop::collection::vec(0usize..METHODS.len(), 0..20),
    ) {
        let reg = registry();
        let expr = shape.to_expr();
        let mut det = DetectorInstance::compile(
            &expr,
            &reg,
            ParamContext::Chronicle,
            DetectorCaps::default(),
        )
        .unwrap();
        let mut oracle = shape.to_node();
        let mut at = 0u64;
        for &m in &committed {
            at += 1;
            let mut got: Vec<Naive> =
                det.process(&reg, &occ(&reg, at, METHODS[m])).iter().map(canon).collect();
            let mut want = oracle.step(m, at);
            got.sort();
            want.sort();
            prop_assert_eq!(got, want);
        }
        // The aborted suffix is visible to the detector only.
        det.begin_txn();
        for &m in &aborted {
            at += 1;
            det.process(&reg, &occ(&reg, at, METHODS[m]));
        }
        det.abort_txn();
        // Parity resumes as if the aborted events never happened. The
        // clock does not rewind, so resumed stimuli keep fresh stamps.
        for &m in &resumed {
            at += 1;
            let mut got: Vec<Naive> =
                det.process(&reg, &occ(&reg, at, METHODS[m])).iter().map(canon).collect();
            let mut want = oracle.step(m, at);
            got.sort();
            want.sort();
            prop_assert_eq!(got, want, "post-abort divergence for {:?}", shape);
        }
    }
}
