//! Property tests for the event-signature parser.

use proptest::prelude::*;
use sentinel_events::{parse_signature, EventModifier, PrimitiveEventSpec};

fn arb_ident() -> impl Strategy<Value = String> {
    // The paper's identifiers include hyphens (Set-Salary) and
    // alphanumerics; keep `::`, whitespace and parens out.
    "[A-Za-z][A-Za-z0-9_-]{0,20}"
}

proptest! {
    /// Display form of a spec parses back to the same spec — for every
    /// modifier synonym accepted by the grammar.
    #[test]
    fn display_parse_round_trip(class in arb_ident(), method in arb_ident(), end in any::<bool>()) {
        let spec = if end {
            PrimitiveEventSpec::end(&class, &method)
        } else {
            PrimitiveEventSpec::begin(&class, &method)
        };
        let parsed = parse_signature(&spec.to_string()).unwrap();
        prop_assert_eq!(parsed, spec);
    }

    /// A parameter list never changes the parse.
    #[test]
    fn parameter_list_is_ignored(
        class in arb_ident(),
        method in arb_ident(),
        params in "[a-z ,*&0-9]{0,30}",
    ) {
        let bare = parse_signature(&format!("end {class}::{method}")).unwrap();
        let with = parse_signature(&format!("end {class}::{method}({params})")).unwrap();
        prop_assert_eq!(bare, with);
    }

    /// Synonyms map to the right modifier.
    #[test]
    fn modifier_synonyms(class in arb_ident(), method in arb_ident(), pick in 0usize..6) {
        let (word, expected) = [
            ("begin", EventModifier::Begin),
            ("bom", EventModifier::Begin),
            ("before", EventModifier::Begin),
            ("end", EventModifier::End),
            ("eom", EventModifier::End),
            ("after", EventModifier::End),
        ][pick];
        let parsed = parse_signature(&format!("{word} {class}::{method}")).unwrap();
        prop_assert_eq!(parsed.modifier, expected);
        prop_assert_eq!(parsed.class, class);
        prop_assert_eq!(parsed.method, method);
    }

    /// The parser never panics on arbitrary input.
    #[test]
    fn never_panics(input in ".{0,60}") {
        let _ = parse_signature(&input);
    }
}
