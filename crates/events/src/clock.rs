//! Logical time.
//!
//! The paper time-stamps every generated event (§4.1). Event-operator
//! semantics — in particular *sequence* — need only a total order, so the
//! default clock is a monotone counter. (The substitution from Sun4
//! wall-clock time is recorded in DESIGN.md §3.)

use std::sync::atomic::{AtomicU64, Ordering};

/// A monotone logical clock shared by the whole database.
#[derive(Debug)]
pub struct LogicalClock {
    now: AtomicU64,
}

impl Default for LogicalClock {
    fn default() -> Self {
        Self::new()
    }
}

impl LogicalClock {
    /// A clock starting at time 0.
    pub fn new() -> Self {
        LogicalClock {
            now: AtomicU64::new(0),
        }
    }

    /// Advance the clock and return the new timestamp (strictly greater
    /// than every previously returned timestamp).
    pub fn tick(&self) -> u64 {
        self.now.fetch_add(1, Ordering::Relaxed) + 1
    }

    /// The most recently issued timestamp.
    pub fn now(&self) -> u64 {
        self.now.load(Ordering::Relaxed)
    }

    /// Advance the clock to at least `t` (recovery path: resume after the
    /// highest timestamp found in the log).
    pub fn advance_to(&self, t: u64) {
        self.now.fetch_max(t, Ordering::Relaxed);
    }
}

// The clock is shared by reference between the write core and every
// reader session; it must stay lock-free and thread-safe.
const _: () = {
    const fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<LogicalClock>()
};

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ticks_are_strictly_increasing() {
        let c = LogicalClock::new();
        let a = c.tick();
        let b = c.tick();
        assert!(b > a);
        assert_eq!(c.now(), b);
    }

    #[test]
    fn advance_to_never_goes_backwards() {
        let c = LogicalClock::new();
        c.advance_to(10);
        assert_eq!(c.now(), 10);
        c.advance_to(5);
        assert_eq!(c.now(), 10);
        assert_eq!(c.tick(), 11);
    }
}
