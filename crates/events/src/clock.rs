//! Logical and real time.
//!
//! The paper time-stamps every generated event (§4.1). Event-operator
//! semantics — in particular *sequence* — need only a total order, so the
//! default clock is a monotone counter. (The substitution from Sun4
//! wall-clock time is recorded in DESIGN.md §3.)
//!
//! Temporal operators (`at`, `every`, windows) need more than an order:
//! they need an *instant axis* that timers and window edges live on.
//! [`TimeSource`] layers that axis over the counter. Every issued
//! [`Timestamp`] is an `(instant, seq)` pair: `seq` is the strictly
//! increasing counter every occurrence carries (sequence semantics are
//! untouched), `instant` is where the occurrence sits on the time axis.
//! Three modes supply the instant:
//!
//! * [`TimeMode::Logical`] — `instant == seq`; the seed behaviour, and
//!   the default. Timer periods are measured in events.
//! * [`TimeMode::Virtual`] — the instant is a manually driven counter
//!   ([`TimeSource::advance_virtual`] / [`TimeSource::set_virtual`]).
//!   Deterministic tests drive rate-limit and SLA scenarios without a
//!   single sleep.
//! * [`TimeMode::Wall`] — the instant is milliseconds since the source
//!   was created, read from the OS monotonic clock.

use serde::{Deserialize, Serialize};
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

/// A monotone logical clock shared by the whole database.
#[derive(Debug)]
pub struct LogicalClock {
    now: AtomicU64,
}

impl Default for LogicalClock {
    fn default() -> Self {
        Self::new()
    }
}

impl LogicalClock {
    /// A clock starting at time 0.
    pub fn new() -> Self {
        LogicalClock {
            now: AtomicU64::new(0),
        }
    }

    /// Advance the clock and return the new timestamp (strictly greater
    /// than every previously returned timestamp).
    pub fn tick(&self) -> u64 {
        self.now.fetch_add(1, Ordering::Relaxed) + 1
    }

    /// The most recently issued timestamp.
    pub fn now(&self) -> u64 {
        self.now.load(Ordering::Relaxed)
    }

    /// Advance the clock to at least `t` (recovery path: resume after the
    /// highest timestamp found in the log).
    pub fn advance_to(&self, t: u64) {
        self.now.fetch_max(t, Ordering::Relaxed);
    }
}

/// Where a [`TimeSource`]'s instant axis comes from.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub enum TimeMode {
    /// Instant = the logical counter itself (one instant per event).
    #[default]
    Logical,
    /// Instant = a manually advanced virtual counter.
    Virtual,
    /// Instant = milliseconds since the source was created (monotonic).
    Wall,
}

impl TimeMode {
    /// Stable lowercase name (`logical` / `virtual` / `wall`).
    pub fn name(self) -> &'static str {
        match self {
            TimeMode::Logical => "logical",
            TimeMode::Virtual => "virtual",
            TimeMode::Wall => "wall",
        }
    }
}

/// An `(instant, seq)` timestamp issued by a [`TimeSource`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Serialize, Deserialize)]
pub struct Timestamp {
    /// Position on the time axis (mode-dependent).
    pub instant: u64,
    /// The strictly increasing sequence number (total order over
    /// occurrences; what `PrimitiveOccurrence::at` carries).
    pub seq: u64,
}

/// The database's time authority: a [`LogicalClock`] for the sequence
/// axis plus a mode-dependent instant axis for timers and windows.
///
/// Shared by `Arc` between the write core, reader sessions, and the
/// engine's timer wheel; all state is lock-free atomics.
#[derive(Debug)]
pub struct TimeSource {
    mode: TimeMode,
    clock: LogicalClock,
    virtual_now: AtomicU64,
    origin: Instant,
}

impl Default for TimeSource {
    fn default() -> Self {
        Self::new(TimeMode::Logical)
    }
}

impl TimeSource {
    /// A source in the given mode, starting at instant 0 / seq 0.
    pub fn new(mode: TimeMode) -> Self {
        TimeSource {
            mode,
            clock: LogicalClock::new(),
            virtual_now: AtomicU64::new(0),
            origin: Instant::now(),
        }
    }

    /// The source's mode.
    pub fn mode(&self) -> TimeMode {
        self.mode
    }

    /// Advance the sequence counter and return the new seq (strictly
    /// greater than every previously returned one). Drop-in for
    /// [`LogicalClock::tick`].
    pub fn tick(&self) -> u64 {
        self.clock.tick()
    }

    /// The most recently issued seq. Drop-in for [`LogicalClock::now`].
    pub fn now(&self) -> u64 {
        self.clock.now()
    }

    /// Advance the sequence counter to at least `t` (recovery).
    pub fn advance_to(&self, t: u64) {
        self.clock.advance_to(t);
    }

    /// The current instant on the time axis.
    pub fn instant_now(&self) -> u64 {
        match self.mode {
            TimeMode::Logical => self.clock.now(),
            TimeMode::Virtual => self.virtual_now.load(Ordering::Relaxed),
            TimeMode::Wall => self.origin.elapsed().as_millis() as u64,
        }
    }

    /// Issue a full `(instant, seq)` timestamp (advances the seq axis).
    pub fn timestamp(&self) -> Timestamp {
        let seq = self.tick();
        let instant = match self.mode {
            // In logical mode the fresh seq *is* the instant, so an
            // occurrence's instant equals its `at`.
            TimeMode::Logical => seq,
            _ => self.instant_now(),
        };
        Timestamp { instant, seq }
    }

    /// Advance the virtual instant by `delta`. No-op outside
    /// [`TimeMode::Virtual`]. Returns the new instant.
    pub fn advance_virtual(&self, delta: u64) -> u64 {
        if self.mode == TimeMode::Virtual {
            self.virtual_now.fetch_add(delta, Ordering::Relaxed) + delta
        } else {
            self.instant_now()
        }
    }

    /// Set the virtual instant to at least `t`. No-op outside
    /// [`TimeMode::Virtual`].
    pub fn set_virtual(&self, t: u64) {
        if self.mode == TimeMode::Virtual {
            self.virtual_now.fetch_max(t, Ordering::Relaxed);
        }
    }
}

// The clock is shared by reference between the write core and every
// reader session; it must stay lock-free and thread-safe.
const _: () = {
    const fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<LogicalClock>();
    assert_send_sync::<TimeSource>()
};

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ticks_are_strictly_increasing() {
        let c = LogicalClock::new();
        let a = c.tick();
        let b = c.tick();
        assert!(b > a);
        assert_eq!(c.now(), b);
    }

    #[test]
    fn advance_to_never_goes_backwards() {
        let c = LogicalClock::new();
        c.advance_to(10);
        assert_eq!(c.now(), 10);
        c.advance_to(5);
        assert_eq!(c.now(), 10);
        assert_eq!(c.tick(), 11);
    }

    #[test]
    fn logical_mode_instant_tracks_seq() {
        let t = TimeSource::new(TimeMode::Logical);
        let ts = t.timestamp();
        assert_eq!(ts.instant, ts.seq);
        assert_eq!(t.instant_now(), ts.seq);
        // Virtual advancement is a no-op outside Virtual mode.
        t.advance_virtual(100);
        assert_eq!(t.instant_now(), ts.seq);
    }

    #[test]
    fn virtual_mode_is_manually_driven() {
        let t = TimeSource::new(TimeMode::Virtual);
        assert_eq!(t.instant_now(), 0);
        let a = t.timestamp();
        assert_eq!(a.instant, 0);
        t.advance_virtual(50);
        let b = t.timestamp();
        assert_eq!(b.instant, 50);
        assert!(b.seq > a.seq);
        t.set_virtual(40); // never backwards
        assert_eq!(t.instant_now(), 50);
        t.set_virtual(60);
        assert_eq!(t.instant_now(), 60);
    }

    #[test]
    fn wall_mode_is_monotone() {
        let t = TimeSource::new(TimeMode::Wall);
        let a = t.instant_now();
        let b = t.instant_now();
        assert!(b >= a);
    }

    #[test]
    fn seq_axis_survives_recovery_advance() {
        let t = TimeSource::new(TimeMode::Virtual);
        t.advance_to(42);
        assert_eq!(t.now(), 42);
        assert_eq!(t.tick(), 43);
    }
}
