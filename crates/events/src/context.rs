//! Parameter contexts — occurrence-buffering policies for composite
//! detection.
//!
//! The 1993 paper stores the parameters of constituent events in the
//! event object ("The state information associated with each event
//! includes the occurrence of the event and the parameters computed when
//! an event is raised") but leaves the pairing policy implicit, which
//! corresponds to the *unrestricted* context: every combination of
//! constituent occurrences is a detection, and nothing is discarded.
//! That policy has unbounded state and combinatorial output; the
//! restricted contexts later formalised by the same group (Snoop) bound
//! both. They are implemented here as an ablation (experiment E12):
//!
//! * **Unrestricted** — all combinations; buffers grow without bound
//!   (subject to [`DetectorCaps`](crate::detector::DetectorCaps)).
//! * **Recent** — only the most recent occurrence of each constituent
//!   participates; new occurrences overwrite old ones.
//! * **Chronicle** — occurrences pair up in FIFO order and are consumed
//!   by detection.
//! * **Continuous** — every initiator opens its own detection window; a
//!   terminator completes *all* open windows at once (one detection per
//!   initiator), consuming them.
//! * **Cumulative** — all occurrences accumulate and are flushed into a
//!   single detection once the composite completes.

use serde::{Deserialize, Serialize};

/// The buffering/pairing policy used by every binary operator node in a
/// detector.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub enum ParamContext {
    /// Paper semantics: every combination detects; nothing consumed.
    #[default]
    Unrestricted,
    /// Most recent occurrence wins; older ones are discarded.
    Recent,
    /// FIFO pairing; participating occurrences are consumed.
    Chronicle,
    /// Every initiator starts a detection; a terminator completes them
    /// all (one detection per initiator) and consumes them.
    Continuous,
    /// Accumulate everything; flush all constituents in one detection.
    Cumulative,
}

impl ParamContext {
    /// All contexts, for sweep experiments.
    pub const ALL: [ParamContext; 5] = [
        ParamContext::Unrestricted,
        ParamContext::Recent,
        ParamContext::Chronicle,
        ParamContext::Continuous,
        ParamContext::Cumulative,
    ];

    /// Short name used in experiment tables.
    pub fn name(self) -> &'static str {
        match self {
            ParamContext::Unrestricted => "unrestricted",
            ParamContext::Recent => "recent",
            ParamContext::Chronicle => "chronicle",
            ParamContext::Continuous => "continuous",
            ParamContext::Cumulative => "cumulative",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_paper_semantics() {
        assert_eq!(ParamContext::default(), ParamContext::Unrestricted);
    }

    #[test]
    fn names_are_distinct() {
        let names: std::collections::HashSet<_> =
            ParamContext::ALL.iter().map(|c| c.name()).collect();
        assert_eq!(names.len(), 5);
    }
}
