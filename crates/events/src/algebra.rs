//! The composite-event algebra (paper Figure 5 plus extensions).
//!
//! The paper supports three operators:
//!
//! * **conjunction** `E1 && E2` — signalled when both have occurred, in
//!   any order;
//! * **disjunction** `E1 || E2` — signalled when either occurs;
//! * **sequence** `E1 ; E2` — signalled when `E2` occurs after `E1`.
//!
//! The crate also implements three operators from the Snoop lineage that
//! the paper's group published subsequently; they are flagged as
//! *extensions* and exercised only by the ablation experiments:
//!
//! * `any(m, [E...])` — m distinct members of the list have occurred;
//! * `not(W) in (S, E)` — `E` occurs after `S` with no `W` in between;
//! * `aperiodic(S, M, E)` — every `M` between an `S` and the next `E`.
//!
//! Five *temporal* operators put events on the real time axis supplied
//! by [`TimeSource`](crate::TimeSource) (DESIGN.md §19):
//!
//! * `at(t)` — an absolute timer, fired once at instant `t`;
//! * `every(p)` — a periodic timer, fired at `p`, `2p`, `3p`, …;
//! * `within(E, d)` — occurrences of `E` whose own interval fits in `d`
//!   (deadline-scoped composites; subsumes `plus`);
//! * `window(E, s)` — `E` observed through a sliding or tumbling window
//!   of `s` instants (expired operand state is evicted);
//! * `aggregate(count|sum(i) over E, s) >= k` — fires when the windowed
//!   count (or parameter sum) of `E` reaches the threshold.

use crate::spec::PrimitiveEventSpec;
use sentinel_object::{ClassRegistry, EventSym};
use serde::{Deserialize, Serialize};
use std::fmt;

/// A composite event expression.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
#[allow(missing_docs)] // operand fields are positional and described per variant
pub enum EventExpr {
    /// A primitive event (leaf).
    Primitive(PrimitiveEventSpec),
    /// Conjunction: both sides occur, any order.
    And(Box<EventExpr>, Box<EventExpr>),
    /// Disjunction: either side occurs.
    Or(Box<EventExpr>, Box<EventExpr>),
    /// Sequence: right side occurs strictly after the left side.
    Seq(Box<EventExpr>, Box<EventExpr>),
    /// Extension — `m` distinct members of `exprs` have occurred.
    Any { m: usize, exprs: Vec<EventExpr> },
    /// Extension — `end` occurs after `start` with no `watch` between.
    Not {
        watch: Box<EventExpr>,
        start: Box<EventExpr>,
        end: Box<EventExpr>,
    },
    /// Extension — every `each` between a `start` and the next `end`.
    Aperiodic {
        start: Box<EventExpr>,
        each: Box<EventExpr>,
        end: Box<EventExpr>,
    },
    /// Extension — every `n`-th occurrence of the operand (counting
    /// semantics; occurrences are consumed in arrival order).
    Times { n: usize, expr: Box<EventExpr> },
    /// Extension — `delta` logical-time units after an occurrence of
    /// the operand. Detection is lazy: it is signalled by the first
    /// subsequently delivered occurrence whose timestamp reaches the
    /// deadline (an event-driven stand-in for Snoop's timer events).
    Plus { expr: Box<EventExpr>, delta: u64 },
    /// Temporal — an absolute timer: fires once, at instant `at` on the
    /// time axis. Delivered by the engine's timer drain, not by any
    /// object's events (no routing key).
    At { at: u64 },
    /// Temporal — a periodic timer: fires at `period`, `2·period`, …
    /// on the time axis.
    Every { period: u64 },
    /// Temporal — deadline-scoped composites: occurrences of the
    /// operand whose own interval (`end - start`) is at most
    /// `deadline`. Operand state older than the deadline is evicted, so
    /// a never-completing composite cannot grow without bound.
    Within { expr: Box<EventExpr>, deadline: u64 },
    /// Temporal — the operand observed through a window of `size`
    /// instants: emissions pass through, and operand occurrences that
    /// fall out of the window (sliding) or behind the current window
    /// epoch (tumbling) are evicted.
    Window {
        expr: Box<EventExpr>,
        size: u64,
        tumbling: bool,
    },
    /// Temporal — windowed aggregation: fires when the aggregate of the
    /// operand's occurrences inside the window reaches `threshold`.
    Aggregate {
        expr: Box<EventExpr>,
        size: u64,
        tumbling: bool,
        agg: AggFn,
        threshold: i64,
    },
}

/// The aggregation function of [`EventExpr::Aggregate`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum AggFn {
    /// Number of operand occurrences in the window.
    Count,
    /// Sum of the i-th parameter of each occurrence's completing
    /// constituent (integers and floats; floats truncate).
    Sum(usize),
}

impl fmt::Display for AggFn {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AggFn::Count => f.write_str("count"),
            AggFn::Sum(i) => write!(f, "sum(p{i})"),
        }
    }
}

impl EventExpr {
    /// Leaf constructor from a spec.
    pub fn primitive(spec: PrimitiveEventSpec) -> Self {
        EventExpr::Primitive(spec)
    }

    /// `self && other` (paper's conjunction).
    pub fn and(self, other: EventExpr) -> Self {
        EventExpr::And(Box::new(self), Box::new(other))
    }

    /// `self || other` (paper's disjunction).
    pub fn or(self, other: EventExpr) -> Self {
        EventExpr::Or(Box::new(self), Box::new(other))
    }

    /// `self ; other` (paper's sequence).
    pub fn then(self, other: EventExpr) -> Self {
        EventExpr::Seq(Box::new(self), Box::new(other))
    }

    /// Extension constructor: `m` of the given events.
    pub fn any(m: usize, exprs: Vec<EventExpr>) -> Self {
        EventExpr::Any { m, exprs }
    }

    /// Extension constructor: non-occurrence of `watch` between `start`
    /// and `end`.
    pub fn not_between(watch: EventExpr, start: EventExpr, end: EventExpr) -> Self {
        EventExpr::Not {
            watch: Box::new(watch),
            start: Box::new(start),
            end: Box::new(end),
        }
    }

    /// Extension constructor: every `each` inside a `(start, end)` window.
    pub fn aperiodic(start: EventExpr, each: EventExpr, end: EventExpr) -> Self {
        EventExpr::Aperiodic {
            start: Box::new(start),
            each: Box::new(each),
            end: Box::new(end),
        }
    }

    /// Extension constructor: every `n`-th occurrence of `self`.
    pub fn times(self, n: usize) -> Self {
        EventExpr::Times {
            n,
            expr: Box::new(self),
        }
    }

    /// Extension constructor: `delta` logical ticks after `self`.
    pub fn plus(self, delta: u64) -> Self {
        EventExpr::Plus {
            expr: Box::new(self),
            delta,
        }
    }

    /// Temporal constructor: an absolute timer at instant `t`.
    pub fn at(t: u64) -> Self {
        EventExpr::At { at: t }
    }

    /// Temporal constructor: a periodic timer every `period` instants.
    pub fn every(period: u64) -> Self {
        EventExpr::Every { period }
    }

    /// Temporal constructor: occurrences of `self` completing within
    /// `deadline` time units of their first constituent.
    pub fn within(self, deadline: u64) -> Self {
        EventExpr::Within {
            expr: Box::new(self),
            deadline,
        }
    }

    /// Temporal constructor: `self` through a sliding window of `size`
    /// instants.
    pub fn sliding_window(self, size: u64) -> Self {
        EventExpr::Window {
            expr: Box::new(self),
            size,
            tumbling: false,
        }
    }

    /// Temporal constructor: `self` through a tumbling window of `size`
    /// instants (epochs aligned to multiples of `size`).
    pub fn tumbling_window(self, size: u64) -> Self {
        EventExpr::Window {
            expr: Box::new(self),
            size,
            tumbling: true,
        }
    }

    /// Temporal constructor: windowed aggregation of `self`.
    pub fn aggregate(self, size: u64, tumbling: bool, agg: AggFn, threshold: i64) -> Self {
        EventExpr::Aggregate {
            expr: Box::new(self),
            size,
            tumbling,
            agg,
            threshold,
        }
    }

    /// Convenience: `count(self) over a sliding window >= threshold`.
    pub fn count_within(self, size: u64, threshold: i64) -> Self {
        self.aggregate(size, false, AggFn::Count, threshold)
    }

    /// Convenience: `sum(param i of self) over a sliding window >=
    /// threshold`.
    pub fn sum_within(self, size: u64, param: usize, threshold: i64) -> Self {
        self.aggregate(size, false, AggFn::Sum(param), threshold)
    }

    /// All primitive specs referenced by this expression, in leaf order.
    pub fn primitives(&self) -> Vec<&PrimitiveEventSpec> {
        let mut out = Vec::new();
        self.collect_primitives(&mut out);
        out
    }

    fn collect_primitives<'a>(&'a self, out: &mut Vec<&'a PrimitiveEventSpec>) {
        match self {
            EventExpr::Primitive(s) => out.push(s),
            EventExpr::And(a, b) | EventExpr::Or(a, b) | EventExpr::Seq(a, b) => {
                a.collect_primitives(out);
                b.collect_primitives(out);
            }
            EventExpr::Any { exprs, .. } => {
                for e in exprs {
                    e.collect_primitives(out);
                }
            }
            EventExpr::Not { watch, start, end } => {
                watch.collect_primitives(out);
                start.collect_primitives(out);
                end.collect_primitives(out);
            }
            EventExpr::Aperiodic { start, each, end } => {
                start.collect_primitives(out);
                each.collect_primitives(out);
                end.collect_primitives(out);
            }
            EventExpr::Times { expr, .. } | EventExpr::Plus { expr, .. } => {
                expr.collect_primitives(out);
            }
            EventExpr::At { .. } | EventExpr::Every { .. } => {}
            EventExpr::Within { expr, .. }
            | EventExpr::Window { expr, .. }
            | EventExpr::Aggregate { expr, .. } => expr.collect_primitives(out),
        }
    }

    /// The timers this expression needs: `(due, period)` pairs —
    /// `(t, None)` per `at(t)`, `(p, Some(p))` per `every(p)` — in leaf
    /// order. The engine schedules them on the timer wheel when the
    /// owning rule is added or enabled.
    pub fn timer_specs(&self) -> Vec<(u64, Option<u64>)> {
        let mut out = Vec::new();
        self.collect_timers(&mut out);
        out
    }

    fn collect_timers(&self, out: &mut Vec<(u64, Option<u64>)>) {
        match self {
            EventExpr::Primitive(_) => {}
            EventExpr::At { at } => out.push((*at, None)),
            EventExpr::Every { period } => out.push((*period, Some(*period))),
            EventExpr::And(a, b) | EventExpr::Or(a, b) | EventExpr::Seq(a, b) => {
                a.collect_timers(out);
                b.collect_timers(out);
            }
            EventExpr::Any { exprs, .. } => {
                for e in exprs {
                    e.collect_timers(out);
                }
            }
            // Visit children in the same order the detector compiles
            // them, so a spec's index here is its delivery index.
            EventExpr::Not { watch, start, end } => {
                watch.collect_timers(out);
                start.collect_timers(out);
                end.collect_timers(out);
            }
            EventExpr::Aperiodic { start, each, end } => {
                start.collect_timers(out);
                each.collect_timers(out);
                end.collect_timers(out);
            }
            EventExpr::Times { expr, .. }
            | EventExpr::Plus { expr, .. }
            | EventExpr::Within { expr, .. }
            | EventExpr::Window { expr, .. }
            | EventExpr::Aggregate { expr, .. } => expr.collect_timers(out),
        }
    }

    /// `true` when the expression contains a timer operator (`at` /
    /// `every`) anywhere.
    pub fn has_timers(&self) -> bool {
        !self.timer_specs().is_empty()
    }

    /// `true` when every emission of this expression requires at least
    /// one timer constituent: the expression can fire at most once per
    /// timer tick, so its cascades are bounded per-window rather than
    /// per-event. The termination prover uses this to discharge cycles
    /// through periodic rules.
    pub fn timer_gated(&self) -> bool {
        match self {
            EventExpr::Primitive(_) => false,
            EventExpr::At { .. } | EventExpr::Every { .. } => true,
            // A conjunction/sequence emission contains both operands: one
            // gated side gates the whole emission.
            EventExpr::And(a, b) | EventExpr::Seq(a, b) => a.timer_gated() || b.timer_gated(),
            // A disjunction emission contains either side: both must gate.
            EventExpr::Or(a, b) => a.timer_gated() && b.timer_gated(),
            // An any(m, ...) emission picks m members: it is gated only
            // when fewer than m members are ungated.
            EventExpr::Any { m, exprs } => exprs.iter().filter(|e| !e.timer_gated()).count() < *m,
            // Not/Aperiodic emissions are completed by `end` / `each`.
            EventExpr::Not { end, .. } => end.timer_gated(),
            EventExpr::Aperiodic { each, .. } => each.timer_gated(),
            EventExpr::Times { expr, .. }
            | EventExpr::Plus { expr, .. }
            | EventExpr::Within { expr, .. }
            | EventExpr::Window { expr, .. }
            | EventExpr::Aggregate { expr, .. } => expr.timer_gated(),
        }
    }

    /// The expression's primitive-event *alphabet*: the sorted, deduped
    /// set of interned [`EventSym`]s any leaf can consume, closed over
    /// subclass linearizations. `None` means the alphabet is unbounded:
    /// a `Plus` operand uses a lazy timer whose deadline is signalled by
    /// the *first subsequently delivered occurrence of any kind*, so an
    /// expression containing `Plus` must be routed every event its
    /// producers raise, not just alphabet members. Timer operators
    /// (`at` / `every`) poison the alphabet the same way: a timer-
    /// bearing rule sits in the engine's broad routing tables so every
    /// delivered occurrence advances its windows and deadlines.
    pub fn alphabet(&self, registry: &ClassRegistry) -> Option<Vec<EventSym>> {
        let mut syms = Vec::new();
        self.collect_alphabet(registry, true, &mut syms)?;
        syms.sort_unstable();
        syms.dedup();
        Some(syms)
    }

    /// The *event* alphabet: like [`alphabet`](Self::alphabet), but
    /// timer operators contribute nothing instead of poisoning the walk
    /// — the set of interned symbols actual objects can deliver. The
    /// analyzer uses this for triggering-edge precision (a timer tick is
    /// not an event another rule's action can raise); `Plus` still
    /// yields `None`.
    pub fn event_alphabet(&self, registry: &ClassRegistry) -> Option<Vec<EventSym>> {
        let mut syms = Vec::new();
        self.collect_alphabet(registry, false, &mut syms)?;
        syms.sort_unstable();
        syms.dedup();
        Some(syms)
    }

    /// Recursive helper for [`EventExpr::alphabet`]; `None` aborts the
    /// walk when an unbounded operator is found. `timers_poison` makes
    /// `at` / `every` unbounded (routing view) rather than silent
    /// (analyzer view).
    fn collect_alphabet(
        &self,
        registry: &ClassRegistry,
        timers_poison: bool,
        out: &mut Vec<EventSym>,
    ) -> Option<()> {
        match self {
            EventExpr::Primitive(s) => {
                out.extend(s.alphabet(registry));
                Some(())
            }
            EventExpr::And(a, b) | EventExpr::Or(a, b) | EventExpr::Seq(a, b) => {
                a.collect_alphabet(registry, timers_poison, out)?;
                b.collect_alphabet(registry, timers_poison, out)
            }
            EventExpr::Any { exprs, .. } => {
                for e in exprs {
                    e.collect_alphabet(registry, timers_poison, out)?;
                }
                Some(())
            }
            EventExpr::Not { watch, start, end }
            | EventExpr::Aperiodic {
                start,
                each: watch,
                end,
            } => {
                watch.collect_alphabet(registry, timers_poison, out)?;
                start.collect_alphabet(registry, timers_poison, out)?;
                end.collect_alphabet(registry, timers_poison, out)
            }
            EventExpr::Times { expr, .. }
            | EventExpr::Within { expr, .. }
            | EventExpr::Window { expr, .. }
            | EventExpr::Aggregate { expr, .. } => {
                expr.collect_alphabet(registry, timers_poison, out)
            }
            EventExpr::Plus { .. } => None,
            EventExpr::At { .. } | EventExpr::Every { .. } => {
                if timers_poison {
                    None
                } else {
                    Some(())
                }
            }
        }
    }

    /// Depth of the operator tree (a primitive has depth 1). Used by the
    /// event-management-cost experiment (E2) to sweep expression depth.
    pub fn depth(&self) -> usize {
        match self {
            EventExpr::Primitive(_) => 1,
            EventExpr::And(a, b) | EventExpr::Or(a, b) | EventExpr::Seq(a, b) => {
                1 + a.depth().max(b.depth())
            }
            EventExpr::Any { exprs, .. } => {
                1 + exprs.iter().map(EventExpr::depth).max().unwrap_or(0)
            }
            EventExpr::Not { watch, start, end } => {
                1 + watch.depth().max(start.depth()).max(end.depth())
            }
            EventExpr::Aperiodic { start, each, end } => {
                1 + start.depth().max(each.depth()).max(end.depth())
            }
            EventExpr::Times { expr, .. } | EventExpr::Plus { expr, .. } => 1 + expr.depth(),
            EventExpr::At { .. } | EventExpr::Every { .. } => 1,
            EventExpr::Within { expr, .. }
            | EventExpr::Window { expr, .. }
            | EventExpr::Aggregate { expr, .. } => 1 + expr.depth(),
        }
    }

    /// Number of operator nodes (primitives excluded).
    pub fn operator_count(&self) -> usize {
        match self {
            EventExpr::Primitive(_) => 0,
            EventExpr::And(a, b) | EventExpr::Or(a, b) | EventExpr::Seq(a, b) => {
                1 + a.operator_count() + b.operator_count()
            }
            EventExpr::Any { exprs, .. } => {
                1 + exprs.iter().map(EventExpr::operator_count).sum::<usize>()
            }
            EventExpr::Not { watch, start, end } => {
                1 + watch.operator_count() + start.operator_count() + end.operator_count()
            }
            EventExpr::Aperiodic { start, each, end } => {
                1 + start.operator_count() + each.operator_count() + end.operator_count()
            }
            EventExpr::Times { expr, .. } | EventExpr::Plus { expr, .. } => {
                1 + expr.operator_count()
            }
            EventExpr::At { .. } | EventExpr::Every { .. } => 1,
            EventExpr::Within { expr, .. }
            | EventExpr::Window { expr, .. }
            | EventExpr::Aggregate { expr, .. } => 1 + expr.operator_count(),
        }
    }
}

impl fmt::Display for EventExpr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EventExpr::Primitive(s) => write!(f, "{s}"),
            EventExpr::And(a, b) => write!(f, "({a} && {b})"),
            EventExpr::Or(a, b) => write!(f, "({a} || {b})"),
            EventExpr::Seq(a, b) => write!(f, "({a} ; {b})"),
            EventExpr::Any { m, exprs } => {
                write!(f, "any({m}, [")?;
                for (i, e) in exprs.iter().enumerate() {
                    if i > 0 {
                        f.write_str(", ")?;
                    }
                    write!(f, "{e}")?;
                }
                f.write_str("])")
            }
            EventExpr::Not { watch, start, end } => {
                write!(f, "not({watch}) in ({start}, {end})")
            }
            EventExpr::Aperiodic { start, each, end } => {
                write!(f, "aperiodic({start}, {each}, {end})")
            }
            EventExpr::Times { n, expr } => write!(f, "times({n}, {expr})"),
            EventExpr::Plus { expr, delta } => write!(f, "({expr} + {delta})"),
            EventExpr::At { at } => write!(f, "at({at})"),
            EventExpr::Every { period } => write!(f, "every({period})"),
            EventExpr::Within { expr, deadline } => write!(f, "within({expr}, {deadline})"),
            EventExpr::Window {
                expr,
                size,
                tumbling,
            } => write!(
                f,
                "window({expr}, {size}, {})",
                if *tumbling { "tumbling" } else { "sliding" }
            ),
            EventExpr::Aggregate {
                expr,
                size,
                tumbling,
                agg,
                threshold,
            } => write!(
                f,
                "aggregate({agg}({expr}) >= {threshold}, {size}, {})",
                if *tumbling { "tumbling" } else { "sliding" }
            ),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::PrimitiveEventSpec as P;

    fn leaf(m: &str) -> EventExpr {
        EventExpr::primitive(P::end("C", m))
    }

    #[test]
    fn builders_and_display() {
        let e = leaf("a").and(leaf("b").or(leaf("c"))).then(leaf("d"));
        assert_eq!(
            e.to_string(),
            "((end C::a && (end C::b || end C::c)) ; end C::d)"
        );
        assert_eq!(e.depth(), 4);
        assert_eq!(e.operator_count(), 3);
    }

    #[test]
    fn primitives_in_leaf_order() {
        let e = leaf("a").and(leaf("b")).or(leaf("c"));
        let names: Vec<_> = e.primitives().iter().map(|s| s.method.as_str()).collect();
        assert_eq!(names, ["a", "b", "c"]);
    }

    #[test]
    fn extension_constructors() {
        let any = EventExpr::any(2, vec![leaf("a"), leaf("b"), leaf("c")]);
        assert_eq!(any.depth(), 2);
        assert_eq!(any.primitives().len(), 3);
        let not = EventExpr::not_between(leaf("w"), leaf("s"), leaf("e"));
        assert_eq!(not.to_string(), "not(end C::w) in (end C::s, end C::e)");
        let ap = EventExpr::aperiodic(leaf("s"), leaf("m"), leaf("e"));
        assert_eq!(ap.operator_count(), 1);
    }

    #[test]
    fn alphabet_closes_over_subclasses_and_flags_plus_unbounded() {
        use sentinel_object::ClassDecl;
        let mut reg = sentinel_object::ClassRegistry::new();
        reg.define(
            ClassDecl::reactive("Base")
                .method("a", &[])
                .method("b", &[]),
        )
        .unwrap();
        reg.define(ClassDecl::reactive("Sub").parent("Base"))
            .unwrap();

        let base = reg.id_of("Base").unwrap();
        let sub = reg.id_of("Sub").unwrap();
        let e = EventExpr::primitive(P::end("Base", "a"))
            .and(EventExpr::primitive(P::end("Base", "b")));
        let alpha = e.alphabet(&reg).unwrap();
        // Each leaf contributes its Base symbol plus the Sub closure.
        assert_eq!(alpha.len(), 4);
        assert!(alpha.contains(&reg.event_sym(base, "a", true).unwrap()));
        assert!(alpha.contains(&reg.event_sym(sub, "a", true).unwrap()));
        assert!(alpha.contains(&reg.event_sym(base, "b", true).unwrap()));
        assert!(alpha.contains(&reg.event_sym(sub, "b", true).unwrap()));
        // Begin symbols are not in an end-spec's alphabet.
        assert!(!alpha.contains(&reg.event_sym(base, "a", false).unwrap()));

        // A Plus anywhere makes the alphabet unbounded.
        assert!(e.clone().plus(5).alphabet(&reg).is_none());
        assert!(e
            .then(EventExpr::primitive(P::end("Base", "a")).plus(1))
            .alphabet(&reg)
            .is_none());

        // Specs on unknown classes have empty alphabets (string fallback).
        let unknown = EventExpr::primitive(P::end("Nope", "a"));
        assert_eq!(unknown.alphabet(&reg).unwrap(), vec![]);
    }

    /// Analyzer-feeding edge cases: `Plus` nested arbitrarily deep under
    /// `Seq` (and other operators) must still poison the whole alphabet,
    /// because the unboundedness is about routing, not tree position.
    #[test]
    fn nested_plus_under_seq_propagates_unbounded() {
        use sentinel_object::ClassDecl;
        let mut reg = sentinel_object::ClassRegistry::new();
        reg.define(ClassDecl::reactive("C").method("a", &[]).method("b", &[]))
            .unwrap();

        // Plus as the *left* Seq operand.
        let left = leaf("a").plus(5).then(leaf("b"));
        assert!(left.alphabet(&reg).is_none());
        // Plus buried two operators deep: Seq(a, Times(3, Plus(b))).
        let deep = leaf("a").then(EventExpr::times(leaf("b").plus(1), 3));
        assert!(deep.alphabet(&reg).is_none());
        // Plus inside a Not window under a Seq.
        let in_not = leaf("a").then(EventExpr::not_between(
            leaf("b").plus(2),
            leaf("a"),
            leaf("b"),
        ));
        assert!(in_not.alphabet(&reg).is_none());
        // Control: the same shapes without Plus stay bounded.
        let bounded = leaf("a").then(EventExpr::times(leaf("b"), 3));
        assert_eq!(bounded.alphabet(&reg).unwrap().len(), 2);
    }

    /// Duplicate primitives across `And`/`Or` operands collapse to one
    /// alphabet entry (sorted + deduped), so the analyzer sees set
    /// semantics, not leaf counts.
    #[test]
    fn duplicate_primitives_in_and_or_dedupe() {
        use sentinel_object::ClassDecl;
        let mut reg = sentinel_object::ClassRegistry::new();
        reg.define(ClassDecl::reactive("C").method("a", &[]).method("b", &[]))
            .unwrap();
        let cid = reg.id_of("C").unwrap();

        let and_dup = leaf("a").and(leaf("a"));
        assert_eq!(and_dup.primitives().len(), 2, "leaves are not deduped");
        assert_eq!(
            and_dup.alphabet(&reg).unwrap(),
            vec![reg.event_sym(cid, "a", true).unwrap()]
        );
        let or_dup = leaf("a").or(leaf("a").and(leaf("b")));
        let alpha = or_dup.alphabet(&reg).unwrap();
        assert_eq!(alpha.len(), 2, "`a` appears once despite two leaves");
        // Deduped output stays sorted (binary-search invariant downstream).
        let mut sorted = alpha.clone();
        sorted.sort_unstable();
        assert_eq!(alpha, sorted);
    }

    /// The symbol-less string-fallback path: a spec naming a known class
    /// but an *undeclared* method interns no symbols, so the alphabet is
    /// `Some(empty)` — bounded but deaf. The analyzer turns this into a
    /// reachability lint rather than a routing entry.
    #[test]
    fn undeclared_method_yields_empty_alphabet() {
        use sentinel_object::ClassDecl;
        let mut reg = sentinel_object::ClassRegistry::new();
        reg.define(ClassDecl::reactive("C").method("a", &[]))
            .unwrap();

        let ghost = EventExpr::primitive(P::end("C", "no-such-method"));
        assert_eq!(ghost.alphabet(&reg).unwrap(), vec![]);
        // Composed with a live leaf, only the live leaf contributes.
        let mixed = ghost.or(leaf("a"));
        assert_eq!(mixed.alphabet(&reg).unwrap().len(), 1);
    }

    #[test]
    fn serde_round_trip() {
        let e = leaf("a").then(leaf("b")).and(leaf("c"));
        let json = serde_json::to_string(&e).unwrap();
        let back: EventExpr = serde_json::from_str(&json).unwrap();
        assert_eq!(e, back);
        let t = EventExpr::every(5)
            .and(leaf("a").count_within(10, 3))
            .or(EventExpr::at(100).then(leaf("b").within(7)));
        let json = serde_json::to_string(&t).unwrap();
        assert_eq!(serde_json::from_str::<EventExpr>(&json).unwrap(), t);
    }

    #[test]
    fn temporal_display_and_shape() {
        assert_eq!(EventExpr::at(5).to_string(), "at(5)");
        assert_eq!(EventExpr::every(9).to_string(), "every(9)");
        assert_eq!(leaf("a").within(3).to_string(), "within(end C::a, 3)");
        assert_eq!(
            leaf("a").sliding_window(10).to_string(),
            "window(end C::a, 10, sliding)"
        );
        assert_eq!(
            leaf("a").tumbling_window(10).to_string(),
            "window(end C::a, 10, tumbling)"
        );
        assert_eq!(
            leaf("a").count_within(10, 3).to_string(),
            "aggregate(count(end C::a) >= 3, 10, sliding)"
        );
        assert_eq!(
            leaf("a").aggregate(4, true, AggFn::Sum(1), 100).to_string(),
            "aggregate(sum(p1)(end C::a) >= 100, 4, tumbling)"
        );
        assert_eq!(EventExpr::at(5).depth(), 1);
        assert_eq!(EventExpr::at(5).operator_count(), 1);
        assert_eq!(leaf("a").within(3).depth(), 2);
        assert_eq!(leaf("a").count_within(10, 3).operator_count(), 1);
        assert!(EventExpr::at(5).primitives().is_empty());
        assert_eq!(leaf("a").tumbling_window(10).primitives().len(), 1);
    }

    #[test]
    fn timer_operators_poison_routing_but_not_event_alphabet() {
        use sentinel_object::ClassDecl;
        let mut reg = sentinel_object::ClassRegistry::new();
        reg.define(ClassDecl::reactive("C").method("a", &[]))
            .unwrap();
        let cid = reg.id_of("C").unwrap();

        let timered = EventExpr::every(5).and(leaf("a"));
        // Routing view: unbounded, so the rule lands in the broad tables.
        assert!(timered.alphabet(&reg).is_none());
        assert!(EventExpr::at(3).alphabet(&reg).is_none());
        // Analyzer view: only the real event symbols.
        assert_eq!(
            timered.event_alphabet(&reg).unwrap(),
            vec![reg.event_sym(cid, "a", true).unwrap()]
        );
        assert_eq!(EventExpr::at(3).event_alphabet(&reg).unwrap(), vec![]);
        // Windows and deadlines do not poison anything by themselves.
        let windowed = leaf("a").count_within(10, 3);
        assert_eq!(windowed.alphabet(&reg).unwrap().len(), 1);
        assert_eq!(windowed.event_alphabet(&reg).unwrap().len(), 1);
        // Plus still poisons both views.
        assert!(leaf("a").plus(1).event_alphabet(&reg).is_none());
    }

    #[test]
    fn timer_specs_collect_in_leaf_order() {
        let e = EventExpr::at(30)
            .and(EventExpr::every(5))
            .then(leaf("a").within(4));
        assert_eq!(e.timer_specs(), vec![(30, None), (5, Some(5))]);
        assert!(e.has_timers());
        assert!(!leaf("a").count_within(10, 2).has_timers());
    }

    #[test]
    fn timer_gating_classifies_emission_paths() {
        // Pure timers gate; pure events do not.
        assert!(EventExpr::at(1).timer_gated());
        assert!(EventExpr::every(2).timer_gated());
        assert!(!leaf("a").timer_gated());
        // Conjunction/sequence: one gated side suffices.
        assert!(EventExpr::every(2).and(leaf("a")).timer_gated());
        assert!(leaf("a").then(EventExpr::every(2)).timer_gated());
        // Disjunction: both sides must gate.
        assert!(!EventExpr::every(2).or(leaf("a")).timer_gated());
        assert!(EventExpr::every(2).or(EventExpr::at(9)).timer_gated());
        // any(m): gated when fewer than m members are ungated.
        assert!(EventExpr::any(2, vec![EventExpr::every(2), leaf("a")]).timer_gated());
        assert!(!EventExpr::any(1, vec![EventExpr::every(2), leaf("a")]).timer_gated());
        // Wrappers follow the operand.
        assert!(EventExpr::every(2).and(leaf("a")).within(5).timer_gated());
        assert!(!leaf("a").count_within(10, 3).timer_gated());
    }
}
