//! Primitive event specifications.

use sentinel_object::{ClassId, ClassRegistry, EventSym};
use serde::{Deserialize, Serialize};
use std::fmt;

/// The shade of a primitive event: before or after method execution.
///
/// The paper uses `begin`/`end` (bom/eom) in §4.3 and `before`/`after` in
/// §4.6's signature examples; both surface syntaxes map to this enum.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum EventModifier {
    /// begin-of-method: signalled before the body executes.
    Begin,
    /// end-of-method: signalled after the body returns.
    End,
}

impl EventModifier {
    /// Is this the end-of-method half? (Selects the symbol slot in the
    /// schema's per-method `[begin, end]` pair.)
    pub fn is_end(self) -> bool {
        matches!(self, EventModifier::End)
    }
}

impl fmt::Display for EventModifier {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            EventModifier::Begin => "begin",
            EventModifier::End => "end",
        })
    }
}

/// The interned-symbol *alphabet* of one primitive spec: the sorted set of
/// [`EventSym`]s the spec can consume, closed over subclasses — a spec on
/// `Employee::Change-Salary` also matches the `Manager` symbol for that
/// method, because a manager *is an* employee. Matching an occurrence then
/// reduces to an integer membership test instead of a string compare plus
/// a linearization walk.
pub fn sym_alphabet(
    registry: &ClassRegistry,
    class: ClassId,
    method: &str,
    modifier: EventModifier,
) -> Vec<EventSym> {
    let mut syms: Vec<EventSym> = registry
        .iter()
        .filter(|def| registry.is_subclass(def.id, class))
        .filter_map(|def| def.event_syms(method))
        .map(|pair| pair[modifier.is_end() as usize])
        .collect();
    syms.sort_unstable();
    syms
}

/// A primitive event specification: *which* method invocations, on
/// instances of *which* class, at *which* shade.
///
/// A specification written against a class also matches invocations on
/// instances of its subclasses (matching ADAM's inheritance of rules and
/// the natural OO reading of "an employee object executes the method
/// Change-Income" — a manager *is an* employee). Matching against the
/// dynamic class is performed by the detector, which resolves the class
/// name against the schema at compile time.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct PrimitiveEventSpec {
    /// The class whose instances (and subclass instances) generate it.
    pub class: String,
    /// The generating method.
    pub method: String,
    /// begin-of-method or end-of-method.
    pub modifier: EventModifier,
}

impl PrimitiveEventSpec {
    /// Spec for the begin-of-method event of `class::method`.
    pub fn begin(class: impl Into<String>, method: impl Into<String>) -> Self {
        PrimitiveEventSpec {
            class: class.into(),
            method: method.into(),
            modifier: EventModifier::Begin,
        }
    }

    /// Spec for the end-of-method event of `class::method`.
    pub fn end(class: impl Into<String>, method: impl Into<String>) -> Self {
        PrimitiveEventSpec {
            class: class.into(),
            method: method.into(),
            modifier: EventModifier::End,
        }
    }

    /// The spec's interned-symbol alphabet (see [`sym_alphabet`]). Empty
    /// when the class is unknown or the method is undeclared — such specs
    /// only ever match through the string-compare fallback.
    pub fn alphabet(&self, registry: &ClassRegistry) -> Vec<EventSym> {
        match registry.id_of(&self.class) {
            Ok(cid) => sym_alphabet(registry, cid, &self.method, self.modifier),
            Err(_) => Vec::new(),
        }
    }
}

impl fmt::Display for PrimitiveEventSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} {}::{}", self.modifier, self.class, self.method)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors_and_display() {
        let s = PrimitiveEventSpec::end("Employee", "Set-Salary");
        assert_eq!(s.modifier, EventModifier::End);
        assert_eq!(s.to_string(), "end Employee::Set-Salary");
        let b = PrimitiveEventSpec::begin("Person", "Marry");
        assert_eq!(b.to_string(), "begin Person::Marry");
    }
}
