//! The timer wheel: due-time scheduling for temporal event operators.
//!
//! `at` and `every` occurrences are not raised by any object — they have
//! no `(target, EventSym)` routing key — so the engine cannot reach them
//! through the routing index. Instead, each timer-bearing rule registers
//! its timers here when it is added or enabled, and the database drains
//! due timers at dispatch and deferred-round boundaries.
//!
//! The wheel hashes entries into `SLOTS` buckets by due instant and
//! keeps a cursor at the last drained instant; draining visits only the
//! buckets between the cursor and `now` (clamped to one full rotation),
//! so a drain is O(slots visited + entries due) rather than O(entries).

use std::sync::Arc;

/// Number of buckets in the wheel. Power of two so the slot index is a
/// mask.
const SLOTS: usize = 256;

/// Identity of one scheduled timer (unique per wheel).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct TimerId(pub u64);

/// One scheduled timer.
#[derive(Debug, Clone)]
struct TimerEntry {
    id: TimerId,
    due: u64,
    period: Option<u64>,
    owner: u64,
    label: Arc<str>,
}

/// A due timer handed to the engine by [`TimerWheel::advance`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TimerFire {
    /// The timer's identity.
    pub id: TimerId,
    /// The instant the timer was due (≤ the drain instant).
    pub due: u64,
    /// `Some(p)` for periodic timers (already rescheduled at `due + p`).
    pub period: Option<u64>,
    /// Opaque owner key (the engine uses the owning rule's id).
    pub owner: u64,
    /// Human-readable label (`at(t)` / `every(p)`), for telemetry and
    /// the `timers` meta relation.
    pub label: Arc<str>,
}

/// A snapshot row for operability (the `timers` meta relation).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TimerRow {
    /// The timer's identity.
    pub id: TimerId,
    /// Next due instant.
    pub due: u64,
    /// Period for `every` timers.
    pub period: Option<u64>,
    /// Opaque owner key.
    pub owner: u64,
    /// Human-readable label.
    pub label: Arc<str>,
}

/// The wheel itself.
#[derive(Debug)]
pub struct TimerWheel {
    slots: Vec<Vec<TimerEntry>>,
    /// Entries further than one rotation ahead of the cursor.
    overflow: Vec<TimerEntry>,
    /// Last drained instant: everything due at or before it has fired.
    cursor: u64,
    next_id: u64,
    len: usize,
}

impl Default for TimerWheel {
    fn default() -> Self {
        Self::new()
    }
}

impl TimerWheel {
    /// An empty wheel with its cursor at instant 0.
    pub fn new() -> Self {
        TimerWheel {
            slots: vec![Vec::new(); SLOTS],
            overflow: Vec::new(),
            cursor: 0,
            next_id: 0,
            len: 0,
        }
    }

    /// Number of scheduled timers.
    pub fn len(&self) -> usize {
        self.len
    }

    /// `true` when nothing is scheduled.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// The wheel's cursor (last drained instant).
    pub fn cursor(&self) -> u64 {
        self.cursor
    }

    /// Schedule a one-shot (`period: None`) or periodic timer. A due
    /// instant at or before the cursor fires on the next drain.
    pub fn schedule(
        &mut self,
        due: u64,
        period: Option<u64>,
        owner: u64,
        label: impl Into<Arc<str>>,
    ) -> TimerId {
        self.next_id += 1;
        let id = TimerId(self.next_id);
        self.insert(TimerEntry {
            id,
            due,
            period: period.filter(|&p| p > 0),
            owner,
            label: label.into(),
        });
        id
    }

    fn insert(&mut self, e: TimerEntry) {
        self.len += 1;
        if e.due > self.cursor + SLOTS as u64 {
            self.overflow.push(e);
        } else {
            // An already-ripe entry (due ≤ cursor) is parked in the next
            // bucket the cursor will visit, so it fires on the next
            // drain rather than waiting a full rotation.
            let slot = (e.due.max(self.cursor + 1) as usize) & (SLOTS - 1);
            self.slots[slot].push(e);
        }
    }

    /// Cancel a timer. Returns `true` if it was scheduled.
    pub fn cancel(&mut self, id: TimerId) -> bool {
        for bucket in self
            .slots
            .iter_mut()
            .chain(std::iter::once(&mut self.overflow))
        {
            if let Some(i) = bucket.iter().position(|e| e.id == id) {
                bucket.swap_remove(i);
                self.len -= 1;
                return true;
            }
        }
        false
    }

    /// Cancel every timer owned by `owner`. Returns how many were
    /// cancelled (rule removal / disable).
    pub fn cancel_owner(&mut self, owner: u64) -> usize {
        let mut n = 0;
        for bucket in self
            .slots
            .iter_mut()
            .chain(std::iter::once(&mut self.overflow))
        {
            let before = bucket.len();
            bucket.retain(|e| e.owner != owner);
            n += before - bucket.len();
        }
        self.len -= n;
        n
    }

    /// The earliest due instant, if anything is scheduled.
    pub fn next_due(&self) -> Option<u64> {
        self.slots
            .iter()
            .chain(std::iter::once(&self.overflow))
            .flatten()
            .map(|e| e.due)
            .min()
    }

    /// Advance the cursor to `now` and return every timer that came due,
    /// sorted by `(due, id)` so drains are deterministic. Periodic
    /// timers fire once per elapsed period boundary and are rescheduled;
    /// one-shot timers are removed.
    pub fn advance(&mut self, now: u64) -> Vec<TimerFire> {
        if now <= self.cursor && self.cursor != 0 {
            return Vec::new();
        }
        let mut fires: Vec<TimerFire> = Vec::new();
        let mut reinsert: Vec<TimerEntry> = Vec::new();

        // Visit at most one full rotation of buckets; with a larger jump
        // every bucket is visited exactly once anyway.
        let span = (now.saturating_sub(self.cursor)).min(SLOTS as u64) as usize;
        let visit = |bucket: &mut Vec<TimerEntry>,
                     fires: &mut Vec<TimerFire>,
                     reinsert: &mut Vec<TimerEntry>,
                     len: &mut usize| {
            let mut i = 0;
            while i < bucket.len() {
                if bucket[i].due <= now {
                    let mut e = bucket.swap_remove(i);
                    *len -= 1;
                    // Periodic: one fire per elapsed boundary, then the
                    // entry rides again at the first future boundary.
                    loop {
                        fires.push(TimerFire {
                            id: e.id,
                            due: e.due,
                            period: e.period,
                            owner: e.owner,
                            label: e.label.clone(),
                        });
                        match e.period {
                            Some(p) => {
                                e.due += p;
                                if e.due > now {
                                    reinsert.push(e);
                                    break;
                                }
                            }
                            None => break,
                        }
                    }
                } else {
                    i += 1;
                }
            }
        };

        if span >= SLOTS {
            for s in 0..SLOTS {
                let mut bucket = std::mem::take(&mut self.slots[s]);
                visit(&mut bucket, &mut fires, &mut reinsert, &mut self.len);
                self.slots[s] = bucket;
            }
        } else {
            for step in 1..=span as u64 {
                let slot = ((self.cursor + step) as usize) & (SLOTS - 1);
                let mut bucket = std::mem::take(&mut self.slots[slot]);
                visit(&mut bucket, &mut fires, &mut reinsert, &mut self.len);
                self.slots[slot] = bucket;
            }
        }
        // Overflow entries may have rotated into range (or come due on a
        // big jump).
        let mut overflow = std::mem::take(&mut self.overflow);
        visit(&mut overflow, &mut fires, &mut reinsert, &mut self.len);
        self.cursor = now;
        // Re-home surviving overflow entries now that the cursor moved.
        for e in overflow {
            self.len -= 1;
            self.insert(e);
        }
        for e in reinsert {
            self.insert(e);
        }
        fires.sort_by_key(|f| (f.due, f.id));
        fires
    }

    /// Snapshot of every scheduled timer, sorted by `(due, id)`.
    pub fn rows(&self) -> Vec<TimerRow> {
        let mut rows: Vec<TimerRow> = self
            .slots
            .iter()
            .chain(std::iter::once(&self.overflow))
            .flatten()
            .map(|e| TimerRow {
                id: e.id,
                due: e.due,
                period: e.period,
                owner: e.owner,
                label: e.label.clone(),
            })
            .collect();
        rows.sort_by_key(|r| (r.due, r.id));
        rows
    }
}

const _: () = {
    const fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<TimerWheel>()
};

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn one_shot_fires_once_in_order() {
        let mut w = TimerWheel::new();
        let b = w.schedule(20, None, 2, "at(20)");
        let a = w.schedule(10, None, 1, "at(10)");
        assert_eq!(w.len(), 2);
        assert_eq!(w.next_due(), Some(10));
        let fires = w.advance(15);
        assert_eq!(fires.len(), 1);
        assert_eq!(fires[0].id, a);
        assert_eq!(fires[0].due, 10);
        let fires = w.advance(25);
        assert_eq!(fires.len(), 1);
        assert_eq!(fires[0].id, b);
        assert!(w.is_empty());
        assert!(w.advance(30).is_empty());
    }

    #[test]
    fn periodic_fires_each_boundary_and_reschedules() {
        let mut w = TimerWheel::new();
        let id = w.schedule(5, Some(5), 7, "every(5)");
        let fires = w.advance(17);
        // Boundaries 5, 10, 15 elapsed.
        assert_eq!(fires.iter().map(|f| f.due).collect::<Vec<_>>(), [5, 10, 15]);
        assert!(fires.iter().all(|f| f.id == id && f.owner == 7));
        assert_eq!(w.len(), 1);
        assert_eq!(w.next_due(), Some(20));
        let fires = w.advance(20);
        assert_eq!(fires.len(), 1);
        assert_eq!(fires[0].due, 20);
    }

    #[test]
    fn far_future_lands_in_overflow_and_still_fires() {
        let mut w = TimerWheel::new();
        w.schedule(10_000, None, 1, "at(10000)");
        assert_eq!(w.next_due(), Some(10_000));
        assert!(w.advance(9_999).is_empty());
        let fires = w.advance(10_000);
        assert_eq!(fires.len(), 1);
        assert_eq!(fires[0].due, 10_000);
    }

    #[test]
    fn overflow_rehomes_after_partial_advance() {
        let mut w = TimerWheel::new();
        w.schedule(300, None, 1, "at(300)");
        assert!(w.advance(100).is_empty());
        // 300 is now within one rotation of the cursor.
        assert!(w.advance(299).is_empty());
        assert_eq!(w.advance(300).len(), 1);
    }

    #[test]
    fn cancel_by_id_and_owner() {
        let mut w = TimerWheel::new();
        let a = w.schedule(10, None, 1, "at(10)");
        w.schedule(20, Some(20), 2, "every(20)");
        w.schedule(30, None, 2, "at(30)");
        assert!(w.cancel(a));
        assert!(!w.cancel(a));
        assert_eq!(w.cancel_owner(2), 2);
        assert!(w.is_empty());
        assert!(w.advance(100).is_empty());
    }

    #[test]
    fn rows_snapshot_is_sorted() {
        let mut w = TimerWheel::new();
        w.schedule(20, Some(20), 2, "every(20)");
        w.schedule(10, None, 1, "at(10)");
        let rows = w.rows();
        assert_eq!(rows.len(), 2);
        assert_eq!(rows[0].due, 10);
        assert_eq!(rows[1].period, Some(20));
        assert_eq!(&*rows[1].label, "every(20)");
    }

    #[test]
    fn due_at_cursor_fires_on_next_drain() {
        let mut w = TimerWheel::new();
        w.advance(50);
        w.schedule(40, None, 1, "at(40)"); // already past
        let fires = w.advance(51);
        assert_eq!(fires.len(), 1);
        assert_eq!(fires[0].due, 40);
    }
}
