#![warn(missing_docs)]
//! # sentinel-events — event specification and detection
//!
//! Implements the paper's event model (§3.3, §4.3, §4.6):
//!
//! * **Primitive events** are method invocations, of two shades:
//!   *begin-of-method* (bom) and *end-of-method* (eom). A primitive event
//!   specification names a class, a method, and the shade — written in
//!   the paper's signature syntax, e.g.
//!   `"end Employee::Set-Salary(float x)"` (parsed by [`parse`]).
//! * **Composite events** are built by applying operators to events:
//!   the paper's **conjunction**, **disjunction**, and **sequence**
//!   (Figure 5), plus the Snoop-lineage extensions `any`, `not`, and
//!   `aperiodic` that the project's DESIGN.md lists as future-work
//!   ablations.
//! * An **occurrence** carries the tuple the paper prescribes:
//!   `Oid + Class + Method + Actual parameters + Time stamp` (§3.1).
//! * A [`DetectorInstance`] incrementally detects a compiled
//!   [`EventExpr`] over a stream of primitive occurrences — the "local
//!   event detector" each rule owns in the paper's Figure 2.
//! * [`ParamContext`] selects the occurrence-buffering policy. The paper
//!   leaves this implicit (all combinations); the contexts named after
//!   the Snoop work (`Recent`, `Chronicle`, `Cumulative`) bound detector
//!   state and are compared in experiment E12.

pub mod algebra;
pub mod clock;
pub mod context;
pub mod detector;
pub mod occurrence;
pub mod parse;
pub mod spec;
pub mod timer;

pub use algebra::{AggFn, EventExpr};
pub use clock::{LogicalClock, TimeMode, TimeSource, Timestamp};
pub use context::ParamContext;
pub use detector::{DetectorCaps, DetectorInstance, DetectorState, DetectorStats};
pub use occurrence::{CompositeOccurrence, PrimitiveOccurrence};
pub use parse::parse_signature;
pub use spec::{sym_alphabet, EventModifier, PrimitiveEventSpec};
pub use timer::{TimerFire, TimerId, TimerRow, TimerWheel};

// Everything the concurrent session API moves across threads — event
// expressions inside rule definitions, occurrences inside firings, and
// detector state owned by the engine behind the core lock — must be
// `Send + Sync`. Assert it here so a non-thread-safe field added to any
// of these types fails to compile in this crate, not two layers up.
const _: () = {
    const fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<EventExpr>();
    assert_send_sync::<PrimitiveOccurrence>();
    assert_send_sync::<CompositeOccurrence>();
    assert_send_sync::<DetectorInstance>();
    assert_send_sync::<LogicalClock>();
    assert_send_sync::<TimeSource>();
    assert_send_sync::<TimerWheel>()
};
