//! Parser for the paper's event-signature strings (§4.6).
//!
//! The paper creates primitive event objects from signature strings:
//!
//! ```text
//! Event* empsal   = new Primitive ("end Employee::Set-Salary(float x)")
//! Event* withdraw = new Primitive ("before Account::Withdraw(float x)")
//! ```
//!
//! Accepted grammar (whitespace-insensitive around tokens):
//!
//! ```text
//! signature := modifier class "::" method [ "(" params ")" ]
//! modifier  := "begin" | "bom" | "before" | "end" | "eom" | "after"
//! ```
//!
//! The parenthesised parameter list is accepted and ignored — the schema
//! is the source of truth for parameter types; the paper includes the
//! list purely to make the signature unique and readable.

use crate::spec::{EventModifier, PrimitiveEventSpec};
use sentinel_object::{ObjectError, Result};

/// Parse a paper-style signature string into a [`PrimitiveEventSpec`].
pub fn parse_signature(sig: &str) -> Result<PrimitiveEventSpec> {
    let s = sig.trim();
    let (modifier, rest) = match s.split_once(char::is_whitespace) {
        Some((m, rest)) => (m, rest.trim_start()),
        None => {
            return Err(ObjectError::EventParse(format!(
                "`{sig}`: expected `<modifier> <Class>::<method>`"
            )))
        }
    };
    let modifier = match modifier {
        "begin" | "bom" | "before" => EventModifier::Begin,
        "end" | "eom" | "after" => EventModifier::End,
        other => {
            return Err(ObjectError::EventParse(format!(
                "`{sig}`: unknown modifier `{other}` (expected begin/before/bom or end/after/eom)"
            )))
        }
    };
    // Strip an optional parameter list.
    let rest = match rest.find('(') {
        Some(idx) => {
            let tail = rest[idx..].trim();
            if !tail.ends_with(')') {
                return Err(ObjectError::EventParse(format!(
                    "`{sig}`: unterminated parameter list"
                )));
            }
            rest[..idx].trim()
        }
        None => rest.trim(),
    };
    let (class, method) = rest.split_once("::").ok_or_else(|| {
        ObjectError::EventParse(format!("`{sig}`: expected `Class::method`, got `{rest}`"))
    })?;
    let class = class.trim();
    let method = method.trim();
    if class.is_empty() || method.is_empty() {
        return Err(ObjectError::EventParse(format!(
            "`{sig}`: empty class or method name"
        )));
    }
    Ok(PrimitiveEventSpec {
        class: class.to_string(),
        method: method.to_string(),
        modifier,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_examples_parse() {
        // §4.6 examples, verbatim.
        let e = parse_signature("end Employee::Set-Salary(float x)").unwrap();
        assert_eq!(e, PrimitiveEventSpec::end("Employee", "Set-Salary"));

        let e = parse_signature("end Account::Deposit(float x)").unwrap();
        assert_eq!(e, PrimitiveEventSpec::end("Account", "Deposit"));

        let e = parse_signature("before Account::Withdraw(float x)").unwrap();
        assert_eq!(e, PrimitiveEventSpec::begin("Account", "Withdraw"));

        // Figure 9 example.
        let e = parse_signature("begin Person::Marry (Person* spouse)").unwrap();
        assert_eq!(e, PrimitiveEventSpec::begin("Person", "Marry"));
    }

    #[test]
    fn modifier_synonyms() {
        for m in ["begin", "bom", "before"] {
            assert_eq!(
                parse_signature(&format!("{m} C::m")).unwrap().modifier,
                EventModifier::Begin
            );
        }
        for m in ["end", "eom", "after"] {
            assert_eq!(
                parse_signature(&format!("{m} C::m")).unwrap().modifier,
                EventModifier::End
            );
        }
    }

    #[test]
    fn parameter_list_optional_and_ignored() {
        assert_eq!(
            parse_signature("end C::m").unwrap(),
            parse_signature("end C::m(int a, float b)").unwrap()
        );
    }

    #[test]
    fn malformed_signatures_rejected() {
        for bad in [
            "",
            "end",
            "banana C::m",
            "end Cm",
            "end ::m",
            "end C::",
            "end C::m(unclosed",
        ] {
            assert!(
                matches!(parse_signature(bad), Err(ObjectError::EventParse(_))),
                "should reject `{bad}`"
            );
        }
    }

    #[test]
    fn whitespace_tolerated() {
        let e = parse_signature("  end   Stock::SetPrice ( float p ) ").unwrap();
        assert_eq!(e, PrimitiveEventSpec::end("Stock", "SetPrice"));
    }
}
