//! Windows and windowed aggregation.
//!
//! A window lives on the *instant* axis (the detector's
//! [`TimeSource`](crate::clock::TimeSource)), while operand state is
//! stamped on the *sequence* axis. Two structures bridge the gap:
//!
//! * [`Watermarks`] — a monotone record of `(instant, seq)` samples the
//!   window node collects from every stimulus. Translating a window's
//!   cutoff instant into a sequence cutoff lets the node evict operand
//!   state that has left the window. Samples are clock facts (the
//!   logical clock never rewinds, even on abort), so they need no undo
//!   journaling.
//! * The aggregate window buffer ([`WindowBuf`](super::state::WindowBuf))
//!   — operand occurrences stamped with their arrival instant, from
//!   which `count` / `sum` are evaluated against the threshold.
//!
//! Window geometry: a sliding window at instant `t` covers `(t-size, t]`
//! — an entry exactly at `t-size` has left. Tumbling epochs are aligned
//! to multiples of `size`: instant `t` belongs to epoch `t / size`, so
//! an event exactly on an epoch edge starts the new epoch.
//!
//! Aggregate emission is *latched*: the node fires when the aggregate
//! first reaches the threshold, then stays quiet until the value drops
//! below it (sliding: eviction; tumbling: epoch roll), preventing one
//! breach from firing on every subsequent arrival.

use std::collections::VecDeque;

use crate::algebra::AggFn;
use crate::occurrence::CompositeOccurrence;
use sentinel_object::Value;

use super::state::{Env, NodeUndo, WindowBuf};

/// Bound on retained `(instant, seq)` samples; past it the oldest is
/// dropped, which only delays eviction (never evicts wrongly).
const MAX_SAMPLES: usize = 1024;

/// A monotone `(instant, seq)` record translating instant cutoffs into
/// sequence cutoffs.
#[derive(Debug, Clone, Default)]
pub(super) struct Watermarks {
    samples: VecDeque<(u64, u64)>,
}

impl Watermarks {
    /// Record that the sequence axis had reached `seq` at `instant`.
    pub(super) fn observe(&mut self, instant: u64, seq: u64) {
        if let Some((i, s)) = self.samples.back_mut() {
            if *i == instant {
                *s = (*s).max(seq);
                return;
            }
        }
        self.samples.push_back((instant, seq));
        if self.samples.len() > MAX_SAMPLES {
            self.samples.pop_front();
        }
    }

    /// The largest observed seq issued at or before `instant`, if any.
    /// Consumes older samples (each is popped once), leaving a floor
    /// sample so repeated queries stay monotone.
    pub(super) fn seq_at_or_before(&mut self, instant: u64) -> Option<u64> {
        let mut out = None;
        while self
            .samples
            .front()
            .map(|(i, _)| *i <= instant)
            .unwrap_or(false)
        {
            out = self.samples.pop_front().map(|(_, s)| s);
        }
        if let Some(s) = out {
            self.samples.push_front((instant, s));
        }
        out
    }

    /// Export the raw samples (checkpoint persistence).
    pub(super) fn export(&self) -> Vec<(u64, u64)> {
        self.samples.iter().copied().collect()
    }

    /// Restore from exported samples.
    pub(super) fn import(samples: Vec<(u64, u64)>) -> Self {
        Watermarks {
            samples: samples.into_iter().collect(),
        }
    }
}

/// The sequence cutoff for a window at instant `now`: operand state
/// issued at or before the returned seq has left the window.
pub(super) fn window_cutoff(
    marks: &mut Watermarks,
    now: u64,
    size: u64,
    tumbling: bool,
) -> Option<u64> {
    let cut_instant = if tumbling {
        // State strictly before the current epoch's start is out.
        (now / size.max(1)).checked_mul(size)?.checked_sub(1)
    } else {
        // Sliding covers (now-size, now]: the entry at now-size is out.
        now.checked_sub(size)
    }?;
    marks.seq_at_or_before(cut_instant)
}

/// One aggregate step: roll/evict the window to `now`, absorb the
/// operand's new occurrences, evaluate, and emit on an unlatched
/// threshold crossing.
#[allow(clippy::too_many_arguments)]
pub(super) fn step_aggregate(
    id: u32,
    arrivals: Vec<CompositeOccurrence>,
    now: u64,
    size: u64,
    tumbling: bool,
    agg: AggFn,
    threshold: i64,
    wbuf: &mut WindowBuf,
    epoch: &mut u64,
    latched: &mut bool,
    env: &mut Env<'_>,
) -> Vec<CompositeOccurrence> {
    if tumbling {
        let cur = now / size.max(1);
        if cur != *epoch {
            if env.journaling() {
                env.record(
                    id,
                    NodeUndo::RestoreWindow {
                        items: wbuf.clone(),
                        epoch: *epoch,
                        latched: *latched,
                    },
                );
            }
            wbuf.clear();
            *epoch = cur;
            *latched = false;
        }
    } else if let Some(cut) = now.checked_sub(size) {
        // Steady-state eviction pops only from the front, so the undo
        // records just the evicted entries — never a full window clone.
        if wbuf.front().map(|(t, _)| *t <= cut).unwrap_or(false) {
            let journaling = env.journaling();
            let mut evicted = Vec::new();
            while wbuf.front().map(|(t, _)| *t <= cut).unwrap_or(false) {
                let e = wbuf.pop_front().unwrap();
                if journaling {
                    evicted.push(e);
                }
            }
            if journaling {
                env.record(id, NodeUndo::RestoreWindowFront { items: evicted });
            }
        }
    }
    for a in arrivals {
        wbuf.push_back((now, a));
        env.record(id, NodeUndo::PopWindowBack);
    }
    let value = eval(agg, wbuf);
    let mut out = Vec::new();
    if value >= threshold && !wbuf.is_empty() {
        if !*latched {
            env.record(id, NodeUndo::SetLatched { prev: false });
            *latched = true;
            out.push(CompositeOccurrence::merge_all(wbuf.iter().map(|(_, o)| o)));
        }
    } else if *latched {
        env.record(id, NodeUndo::SetLatched { prev: true });
        *latched = false;
    }
    out
}

/// Evaluate the aggregate over the current window contents.
pub(super) fn eval(agg: AggFn, wbuf: &WindowBuf) -> i64 {
    match agg {
        AggFn::Count => wbuf.len() as i64,
        AggFn::Sum(i) => wbuf
            .iter()
            .map(|(_, o)| {
                o.last()
                    .and_then(|c| c.params.get(i))
                    .map(as_i64)
                    .unwrap_or(0)
            })
            .sum(),
    }
}

fn as_i64(v: &Value) -> i64 {
    match v {
        Value::Int(i) => *i,
        Value::Float(f) => *f as i64,
        Value::Bool(b) => i64::from(*b),
        _ => 0,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn watermarks_translate_instants_to_seqs() {
        let mut m = Watermarks::default();
        m.observe(10, 1);
        m.observe(10, 2); // coalesced per instant
        m.observe(20, 3);
        m.observe(35, 4);
        assert_eq!(m.seq_at_or_before(5), None);
        assert_eq!(m.seq_at_or_before(20), Some(3));
        // Floor sample keeps repeated queries monotone.
        assert_eq!(m.seq_at_or_before(20), Some(3));
        assert_eq!(m.seq_at_or_before(40), Some(4));
    }

    #[test]
    fn capped_samples_only_delay_eviction() {
        let mut m = Watermarks::default();
        for i in 0..(MAX_SAMPLES as u64 + 100) {
            m.observe(i, i);
        }
        // The oldest samples were dropped: early cutoffs find nothing
        // (no eviction yet) rather than a wrong seq.
        assert_eq!(m.seq_at_or_before(10), None);
        assert!(m.seq_at_or_before(MAX_SAMPLES as u64 + 99).is_some());
    }

    #[test]
    fn window_cutoffs_follow_the_geometry() {
        // Sliding (t-size, t]: at now=30, size=10 the cutoff instant is
        // 20 — an entry at 20 is out.
        let mut m = Watermarks::default();
        m.observe(20, 7);
        m.observe(30, 9);
        assert_eq!(window_cutoff(&mut m, 30, 10, false), Some(7));
        // Tumbling: at now=30, size=10 the epoch starts at 30 itself, so
        // everything at instants <= 29 is out.
        let mut m = Watermarks::default();
        m.observe(29, 8);
        m.observe(30, 9);
        assert_eq!(window_cutoff(&mut m, 30, 10, true), Some(8));
    }
}
