//! Timer leaves (`at` / `every`) and deadline scoping (`within`).
//!
//! Timer occurrences are not raised by any object: the engine's timer
//! wheel delivers a fire straight to the owning detector
//! ([`DetectorInstance::process_timer`](super::DetectorInstance::process_timer)),
//! addressed by the leaf's index in
//! [`EventExpr::timer_specs`](crate::EventExpr::timer_specs) order. A
//! fire contributes an occurrence with no constituents — a tick carries
//! no parameters — whose interval is pinned to the fresh logical
//! timestamp the engine assigned to the fire, so sequence and
//! conjunction pairing work on timers exactly as on events.

use crate::occurrence::CompositeOccurrence;

/// The occurrence a timer fire contributes at its leaf.
pub(super) fn timer_occurrence(seq: u64) -> CompositeOccurrence {
    CompositeOccurrence {
        constituents: Vec::new(),
        start: seq,
        end: seq,
    }
}

/// `within` eviction cutoff: operand state whose interval *started* at
/// or before the returned timestamp can never complete inside the
/// deadline, so it is dead weight. `None` when nothing can be stale yet.
pub(super) fn within_cutoff(seq: u64, deadline: u64) -> Option<u64> {
    seq.checked_sub(deadline.saturating_add(1))
}

/// `within` emission filter: the operand occurrence's own interval must
/// fit inside the deadline.
pub(super) fn within_span_ok(o: &CompositeOccurrence, deadline: u64) -> bool {
    o.end.saturating_sub(o.start) <= deadline
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cutoff_is_exactly_complementary_to_the_span_filter() {
        // An occurrence started at the cutoff timestamp would, if it
        // completed right now, have span deadline+1: just over.
        let (seq, deadline) = (100, 10);
        let cut = within_cutoff(seq, deadline).unwrap();
        assert_eq!(cut, 89);
        let kept = CompositeOccurrence {
            constituents: Vec::new(),
            start: cut + 1,
            end: seq,
        };
        assert!(within_span_ok(&kept, deadline));
        let evicted = CompositeOccurrence {
            constituents: Vec::new(),
            start: cut,
            end: seq,
        };
        assert!(!within_span_ok(&evicted, deadline));
        // Early in the stream nothing is stale.
        assert_eq!(within_cutoff(5, 10), None);
    }
}
