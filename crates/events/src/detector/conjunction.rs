//! Conjunction (`And`) pairing: how a new occurrence on one side
//! combines with the buffered occurrences of the other under each
//! parameter context.

use crate::context::ParamContext;
use crate::occurrence::CompositeOccurrence;

use super::state::{Buffer, Env};

/// Conjunction pairing under each parameter context.
pub(super) fn pair_and(
    id: u32,
    le: Vec<CompositeOccurrence>,
    re: Vec<CompositeOccurrence>,
    lbuf: &mut Buffer,
    rbuf: &mut Buffer,
    env: &mut Env<'_>,
) -> Vec<CompositeOccurrence> {
    let mut out = Vec::new();
    match env.context {
        ParamContext::Unrestricted => {
            for l in &le {
                for r in rbuf.items.iter() {
                    out.push(CompositeOccurrence::merge(l, r));
                }
            }
            for r in &re {
                for l in lbuf.items.iter() {
                    out.push(CompositeOccurrence::merge(l, r));
                }
            }
            for l in &le {
                for r in &re {
                    out.push(CompositeOccurrence::merge(l, r));
                }
            }
            for l in le {
                lbuf.push(id, 0, l, env);
            }
            for r in re {
                rbuf.push(id, 1, r, env);
            }
        }
        ParamContext::Recent => {
            // Each side retains at most its most recent occurrence. A new
            // arrival pairs with the retained occurrence of the opposite
            // side (which is kept — the initiator survives detections);
            // an arrival that finds no partner becomes the retained one.
            for l in le {
                if let Some(r) = rbuf.items.back() {
                    out.push(CompositeOccurrence::merge(&l, r));
                } else {
                    lbuf.clear(id, 0, env);
                    lbuf.push(id, 0, l, env);
                }
            }
            for r in re {
                if let Some(l) = lbuf.items.back() {
                    out.push(CompositeOccurrence::merge(l, &r));
                } else {
                    rbuf.clear(id, 1, env);
                    rbuf.push(id, 1, r, env);
                }
            }
        }
        ParamContext::Chronicle => {
            for l in le {
                match rbuf.pop_front(id, 1, env) {
                    Some(r) => out.push(CompositeOccurrence::merge(&l, &r)),
                    None => lbuf.push(id, 0, l, env),
                }
            }
            for r in re {
                match lbuf.pop_front(id, 0, env) {
                    Some(l) => out.push(CompositeOccurrence::merge(&l, &r)),
                    None => rbuf.push(id, 1, r, env),
                }
            }
        }
        ParamContext::Continuous => {
            // Every buffered occurrence opened its own detection window;
            // an opposite-side arrival terminates them all at once (one
            // detection per initiator) and consumes them. An arrival
            // with no open windows becomes an initiator itself.
            for l in le {
                if rbuf.len() > 0 {
                    for r in rbuf.items.iter() {
                        out.push(CompositeOccurrence::merge(&l, r));
                    }
                    rbuf.clear(id, 1, env);
                } else {
                    lbuf.push(id, 0, l, env);
                }
            }
            for r in re {
                if lbuf.len() > 0 {
                    for l in lbuf.items.iter() {
                        out.push(CompositeOccurrence::merge(l, &r));
                    }
                    lbuf.clear(id, 0, env);
                } else {
                    rbuf.push(id, 1, r, env);
                }
            }
        }
        ParamContext::Cumulative => {
            for l in le {
                lbuf.push(id, 0, l, env);
            }
            for r in re {
                rbuf.push(id, 1, r, env);
            }
            if lbuf.len() > 0 && rbuf.len() > 0 {
                out.push(CompositeOccurrence::merge_all(
                    lbuf.items.iter().chain(rbuf.items.iter()),
                ));
                lbuf.clear(id, 0, env);
                rbuf.clear(id, 1, env);
            }
        }
    }
    out
}
