//! Detection-state machinery shared by every operator node: the
//! per-transaction undo journal (entry types + buffer-shaped replay)
//! and the bounded occurrence buffers that hold partial detections.

use crate::context::ParamContext;
use crate::occurrence::{CompositeOccurrence, PrimitiveOccurrence};
use sentinel_object::{ClassRegistry, EventSym};
use std::collections::VecDeque;

use super::{DetectorCaps, Node};

/// One stimulus driven through the node tree: either a primitive
/// occurrence (raised by an object) or a timer fire (delivered by the
/// engine's due-timer drain to the `at`/`every` leaf at `idx` in
/// [`EventExpr::timer_specs`](crate::EventExpr::timer_specs) order).
#[derive(Debug, Clone, Copy)]
pub(super) enum Stim<'a> {
    Prim(&'a PrimitiveOccurrence),
    Timer { idx: usize, seq: u64 },
}

impl Stim<'_> {
    /// The stimulus's logical timestamp on the sequence axis.
    #[inline]
    pub(super) fn seq(&self) -> u64 {
        match self {
            Stim::Prim(o) => o.at,
            Stim::Timer { seq, .. } => *seq,
        }
    }
}

/// A window buffer: operand occurrences stamped with the instant they
/// arrived at the window node.
pub(super) type WindowBuf = VecDeque<(u64, CompositeOccurrence)>;

/// Inverse of one state mutation, tagged with the stateful node it
/// applies to. Entries are applied in reverse journal order on abort.
#[derive(Debug, Clone)]
pub(super) enum NodeUndo {
    /// Undo an append to a buffer side.
    PopBack { side: u8 },
    /// Undo a consumption (or cap-drop) from the front of a buffer side.
    PushFront { side: u8, occ: CompositeOccurrence },
    /// Undo a clear/retain of a whole buffer side.
    RestoreSide {
        side: u8,
        items: VecDeque<CompositeOccurrence>,
    },
    /// Undo a write to an `Any` node's latest-per-child slot.
    SetLatest {
        i: usize,
        prev: Option<CompositeOccurrence>,
    },
    /// Undo a write to a window node's `open` slot.
    SetOpen { prev: Option<CompositeOccurrence> },
    /// Undo a write to a `Not` node's violation flag.
    SetViolated { prev: bool },
    /// Undo an append to an `Aggregate` node's window buffer.
    PopWindowBack,
    /// Undo an eviction/roll of an `Aggregate` node's window state.
    RestoreWindow {
        items: WindowBuf,
        epoch: u64,
        latched: bool,
    },
    /// Undo a sliding eviction from the front of an `Aggregate` node's
    /// window buffer: `items` hold the evicted entries in eviction
    /// order and are re-prepended in reverse. Recorded instead of a
    /// full `RestoreWindow` snapshot on the steady-state path, where
    /// cloning the whole window per stimulus would cost O(window).
    RestoreWindowFront {
        items: Vec<(u64, CompositeOccurrence)>,
    },
    /// Undo a write to an `Aggregate` node's emission latch.
    SetLatched { prev: bool },
}

#[derive(Debug, Clone)]
pub(super) enum JournalEntry {
    Node {
        node: u32,
        undo: NodeUndo,
    },
    /// A full pre-state snapshot (recorded by `reset` when a journal is
    /// active — rare, so the clone is acceptable there).
    Full(Box<Node>),
}

/// Per-call environment threaded through the node recursion.
pub(super) struct Env<'a> {
    pub(super) registry: &'a ClassRegistry,
    /// The occurrence's interned symbol (`None` = out-of-schema event).
    pub(super) sym: Option<EventSym>,
    pub(super) context: ParamContext,
    pub(super) caps: DetectorCaps,
    /// The stimulus's position on the instant axis (from the detector's
    /// [`TimeSource`](crate::clock::TimeSource); falls back to the
    /// stimulus's seq when none is attached — logical-mode semantics).
    /// Windows and epochs are measured on this axis.
    pub(super) now: u64,
    pub(super) matched: bool,
    pub(super) dropped: u64,
    pub(super) journal: Option<&'a mut Vec<JournalEntry>>,
}

impl Env<'_> {
    #[inline]
    pub(super) fn record(&mut self, node: u32, undo: NodeUndo) {
        if let Some(j) = self.journal.as_deref_mut() {
            j.push(JournalEntry::Node { node, undo });
        }
    }

    #[inline]
    pub(super) fn journaling(&self) -> bool {
        self.journal.is_some()
    }
}

/// A bounded occurrence buffer (one side of a binary operator).
#[derive(Debug, Default, Clone)]
pub(super) struct Buffer {
    pub(super) items: VecDeque<CompositeOccurrence>,
}

impl Buffer {
    /// Append, honouring the cap; journals the append (and any cap-drop).
    pub(super) fn push(
        &mut self,
        node: u32,
        side: u8,
        occ: CompositeOccurrence,
        env: &mut Env<'_>,
    ) {
        if self.items.len() >= env.caps.max_buffered_per_node {
            if let Some(dropped) = self.items.pop_front() {
                env.record(node, NodeUndo::PushFront { side, occ: dropped });
                env.dropped += 1;
            }
        }
        self.items.push_back(occ);
        env.record(node, NodeUndo::PopBack { side });
    }

    /// Consume from the front; journals the consumption.
    pub(super) fn pop_front(
        &mut self,
        node: u32,
        side: u8,
        env: &mut Env<'_>,
    ) -> Option<CompositeOccurrence> {
        let occ = self.items.pop_front()?;
        if env.journaling() {
            env.record(
                node,
                NodeUndo::PushFront {
                    side,
                    occ: occ.clone(),
                },
            );
        }
        Some(occ)
    }

    /// Drop everything; journals the old contents.
    pub(super) fn clear(&mut self, node: u32, side: u8, env: &mut Env<'_>) {
        if self.items.is_empty() {
            return;
        }
        let old = std::mem::take(&mut self.items);
        if env.journaling() {
            env.record(node, NodeUndo::RestoreSide { side, items: old });
        }
    }

    pub(super) fn len(&self) -> usize {
        self.items.len()
    }
}

/// Evict from `buf` every occurrence whose scope key (`start` when
/// `by_start`, the `within` axis; `end` otherwise, the window axis) is
/// at or before `cutoff`. Journals the pre-eviction contents when
/// anything is evicted.
pub(super) fn evict_buffer(
    buf: &mut Buffer,
    node: u32,
    side: u8,
    cutoff: u64,
    by_start: bool,
    env: &mut Env<'_>,
) {
    let key = |o: &CompositeOccurrence| if by_start { o.start } else { o.end };
    if !buf.items.iter().any(|o| key(o) <= cutoff) {
        return;
    }
    if env.journaling() {
        env.record(
            node,
            NodeUndo::RestoreSide {
                side,
                items: buf.items.clone(),
            },
        );
    }
    buf.items.retain(|o| key(o) > cutoff);
}

/// Apply a buffer-shaped undo to an And node (both sides) or a Seq node
/// (left side only; `rbuf` is `None`).
pub(super) fn apply_buffer_undo(undo: NodeUndo, lbuf: &mut Buffer, rbuf: Option<&mut Buffer>) {
    let side_of = |undo: &NodeUndo| match undo {
        NodeUndo::PopBack { side }
        | NodeUndo::PushFront { side, .. }
        | NodeUndo::RestoreSide { side, .. } => Some(*side),
        _ => None,
    };
    let buf = match side_of(&undo) {
        Some(0) => lbuf,
        Some(1) => match rbuf {
            Some(r) => r,
            None => return,
        },
        _ => return,
    };
    match undo {
        NodeUndo::PopBack { .. } => {
            buf.items.pop_back();
        }
        NodeUndo::PushFront { occ, .. } => {
            buf.items.push_front(occ);
        }
        NodeUndo::RestoreSide { items, .. } => {
            buf.items = items;
        }
        _ => {}
    }
}
