//! Incremental composite-event detection.
//!
//! Each rule in the paper owns a "local event detector" (Figure 2) that
//! receives the primitive events propagated to the rule and signals the
//! rule when its (possibly composite) event occurs. A
//! [`DetectorInstance`] is that detector: an [`EventExpr`] compiled into
//! a tree of operator nodes, each holding the partial-detection state the
//! paper describes for the `Conjunction` subclass (Figure 6: the two
//! constituent event references plus a `Raised` flag — generalised here
//! to occurrence buffers so that constituent *parameters* survive until
//! the composite completes).
//!
//! Detection is driven one primitive occurrence at a time through
//! [`DetectorInstance::process`]; occurrences must arrive in timestamp
//! order (the database's logical clock guarantees this).
//!
//! ## Operator semantics (with `Unrestricted`, the paper's context)
//!
//! * `And(a, b)` — every occurrence of `a` pairs with every occurrence of
//!   `b`, regardless of order.
//! * `Or(a, b)` — every occurrence of either side is an occurrence of the
//!   whole.
//! * `Seq(a, b)` — every occurrence of `b` pairs with every *earlier*
//!   occurrence of `a` (strictly: `a.end < b.start`).
//!
//! The restricted contexts ([`ParamContext`]) change which buffered
//! occurrences participate and whether they are consumed; see the module
//! docs in [`crate::context`].
//!
//! ## Transactional detection state
//!
//! Rules are "subject to the same transaction semantics" as other
//! objects (paper §2) — which must include their *detection state*: an
//! occurrence generated inside a rolled-back transaction must not later
//! complete a composite event, and an occurrence *consumed* by a
//! detection that was rolled back must be re-armed. The detector
//! therefore supports an undo journal: between
//! [`begin_txn`](DetectorInstance::begin_txn) and
//! [`commit_txn`](DetectorInstance::commit_txn) /
//! [`abort_txn`](DetectorInstance::abort_txn) every state mutation
//! records its inverse. The journal costs O(1) per mutation (a marker
//! for appends; a clone only for destructive pops/clears), so a
//! transaction over a detector with a large buffer does **not** pay for
//! the buffer size — the reason this design replaced an earlier
//! clone-the-detector checkpoint (see DESIGN.md §9).

mod conjunction;
mod leaf;
mod sequence;
mod state;

use crate::algebra::EventExpr;
use crate::context::ParamContext;
use crate::occurrence::{CompositeOccurrence, PrimitiveOccurrence};
use crate::spec::EventModifier;
use sentinel_object::{ClassId, ClassRegistry, EventSym, Result};
use sentinel_telemetry::{Stage, Telemetry, Timer};
use std::sync::Arc;

use conjunction::pair_and;
use sequence::pair_seq;
use state::{apply_buffer_undo, Buffer, Env, JournalEntry, NodeUndo};

/// Resource limits protecting against unbounded detector state (the
/// unrestricted context never discards occurrences on its own).
#[derive(Debug, Clone, Copy)]
pub struct DetectorCaps {
    /// Maximum occurrences buffered per operator-node side; the oldest
    /// occurrence is dropped (and counted) when the cap is exceeded.
    pub max_buffered_per_node: usize,
}

impl Default for DetectorCaps {
    fn default() -> Self {
        DetectorCaps {
            max_buffered_per_node: 65_536,
        }
    }
}

/// Counters exposed for the event-management-cost experiments (E2, E12).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DetectorStats {
    /// Occurrences offered to the detector.
    pub offered: u64,
    /// Occurrences that matched at least one primitive leaf.
    pub matched: u64,
    /// Composite occurrences emitted at the root.
    pub emitted: u64,
    /// Occurrences dropped because a node buffer hit its cap.
    pub dropped: u64,
}

/// A compiled, stateful detector for one event expression.
///
/// `Clone` duplicates the full partial-detection state (used by tests to
/// cross-check the journal against brute-force snapshots).
#[derive(Clone)]
pub struct DetectorInstance {
    root: Node,
    context: ParamContext,
    caps: DetectorCaps,
    stats: DetectorStats,
    journal: Option<Vec<JournalEntry>>,
    telemetry: Option<Arc<Telemetry>>,
    label: Arc<str>,
    /// Registry length the leaf alphabets were computed against. The
    /// registry is append-only, so a length mismatch means classes were
    /// defined since compile time and subclass closures may be stale.
    schema_len: usize,
}

impl std::fmt::Debug for DetectorInstance {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("DetectorInstance")
            .field("context", &self.context)
            .field("stats", &self.stats)
            .field("buffered", &self.buffered())
            .field("in_txn", &self.journal.is_some())
            .finish()
    }
}

impl DetectorInstance {
    /// Compile an expression against the schema. Class names in primitive
    /// specs are resolved here; unknown classes are reported immediately
    /// rather than silently never matching.
    pub fn compile(
        expr: &EventExpr,
        registry: &ClassRegistry,
        context: ParamContext,
        caps: DetectorCaps,
    ) -> Result<Self> {
        let mut next_id = 0u32;
        Ok(DetectorInstance {
            root: Node::compile(expr, registry, &mut next_id)?,
            context,
            caps,
            stats: DetectorStats::default(),
            journal: None,
            telemetry: None,
            label: Arc::from(""),
            schema_len: registry.len(),
        })
    }

    /// Attach an observability handle. `label` (typically the owning
    /// rule's name) becomes the subject of the detector's trace records.
    pub fn set_telemetry(&mut self, telemetry: Arc<Telemetry>, label: impl Into<Arc<str>>) {
        self.telemetry = Some(telemetry);
        self.label = label.into();
    }

    /// Compile with default context and caps.
    pub fn compile_default(expr: &EventExpr, registry: &ClassRegistry) -> Result<Self> {
        Self::compile(
            expr,
            registry,
            ParamContext::default(),
            DetectorCaps::default(),
        )
    }

    /// Feed one primitive occurrence; returns the composite occurrences
    /// of the whole expression completed by it (possibly several under
    /// the unrestricted context, at most one under the restricted ones
    /// for binary operators).
    pub fn process(
        &mut self,
        registry: &ClassRegistry,
        occ: &PrimitiveOccurrence,
    ) -> Vec<CompositeOccurrence> {
        let sym = registry.event_sym(occ.class, &occ.method, occ.modifier.is_end());
        self.process_resolved(registry, occ, sym)
    }

    /// [`process`](Self::process) with the occurrence's interned symbol
    /// already resolved by the caller (the engine resolves once per event
    /// and shares the symbol across every notified detector). `None`
    /// means the occurrence names a method outside the schema — leaves
    /// then match by the string-compare fallback.
    pub fn process_resolved(
        &mut self,
        registry: &ClassRegistry,
        occ: &PrimitiveOccurrence,
        sym: Option<EventSym>,
    ) -> Vec<CompositeOccurrence> {
        if self.schema_len != registry.len() {
            self.root.refresh_alphabets(registry);
            self.schema_len = registry.len();
        }
        self.stats.offered += 1;
        let timer = match &self.telemetry {
            Some(t) => t.timer(),
            None => Timer::off(),
        };
        let mut env = Env {
            registry,
            sym,
            context: self.context,
            caps: self.caps,
            matched: false,
            dropped: 0,
            journal: self.journal.as_mut(),
        };
        let out = self.root.process(occ, &mut env);
        if env.matched {
            self.stats.matched += 1;
        }
        self.stats.dropped += env.dropped;
        self.stats.emitted += out.len() as u64;
        if let Some(tel) = &self.telemetry {
            // The enabled check also guards the `buffered` tree walk, which
            // is not free on deep expressions.
            if tel.is_enabled() {
                let label = &self.label;
                tel.observe_timer(Stage::DetectorTransition, occ.at, timer, || {
                    label.to_string()
                });
                tel.observe(
                    Stage::DetectorDepth,
                    occ.at,
                    self.root.buffered() as u64,
                    || label.to_string(),
                );
            }
        }
        out
    }

    /// Start journaling state mutations for the enclosing transaction.
    pub fn begin_txn(&mut self) {
        debug_assert!(self.journal.is_none(), "nested detector transactions");
        self.journal = Some(Vec::new());
    }

    /// The transaction committed: discard the journal.
    pub fn commit_txn(&mut self) {
        self.journal = None;
    }

    /// The transaction aborted: replay the journal in reverse, restoring
    /// exactly the pre-transaction detection state.
    pub fn abort_txn(&mut self) {
        let Some(journal) = self.journal.take() else {
            return;
        };
        for entry in journal.into_iter().rev() {
            match entry {
                JournalEntry::Full(node) => {
                    self.root = *node;
                }
                JournalEntry::Node { node, undo } => {
                    self.root.apply_undo(node, undo);
                }
            }
        }
    }

    /// Is a journal currently active?
    pub fn in_txn(&self) -> bool {
        self.journal.is_some()
    }

    /// Total occurrences currently buffered across all operator nodes —
    /// the detector-state metric of experiment E12.
    pub fn buffered(&self) -> usize {
        self.root.buffered()
    }

    /// Counters so far.
    pub fn stats(&self) -> DetectorStats {
        self.stats
    }

    /// Discard all partial state (e.g. when a rule is disabled; the paper
    /// says a disabled rule no longer records propagated events). When a
    /// journal is active the pre-reset state is recorded so an abort can
    /// restore it.
    pub fn reset(&mut self) {
        if let Some(j) = self.journal.as_mut() {
            j.push(JournalEntry::Full(Box::new(self.root.clone())));
        }
        self.root.reset();
    }

    /// Discard partial state involving occurrences newer than `ts` —
    /// a backstop for abort paths that could not be journaled (e.g. a
    /// rule created inside the aborted transaction). Not journaled.
    pub fn prune_newer_than(&mut self, ts: u64) {
        self.root.prune_newer_than(ts);
    }

    /// The parameter context the detector was compiled with.
    pub fn context(&self) -> ParamContext {
        self.context
    }
}

#[derive(Debug, Clone)]
enum Node {
    Primitive {
        class: ClassId,
        method: String,
        modifier: EventModifier,
        /// Sorted interned symbols this leaf consumes (the spec closed
        /// over subclasses). Occurrences carrying a symbol match by
        /// binary search; symbol-less occurrences fall back to the
        /// string compare.
        alphabet: Vec<EventSym>,
    },
    And {
        id: u32,
        left: Box<Node>,
        right: Box<Node>,
        lbuf: Buffer,
        rbuf: Buffer,
    },
    Or {
        left: Box<Node>,
        right: Box<Node>,
    },
    Seq {
        id: u32,
        left: Box<Node>,
        right: Box<Node>,
        lbuf: Buffer,
    },
    Any {
        id: u32,
        m: usize,
        children: Vec<Node>,
        latest: Vec<Option<CompositeOccurrence>>,
    },
    Not {
        id: u32,
        watch: Box<Node>,
        start: Box<Node>,
        end: Box<Node>,
        open: Option<CompositeOccurrence>,
        violated: bool,
    },
    Aperiodic {
        id: u32,
        start: Box<Node>,
        each: Box<Node>,
        end: Box<Node>,
        open: Option<CompositeOccurrence>,
    },
    Times {
        id: u32,
        n: usize,
        child: Box<Node>,
        buf: Buffer,
    },
    Plus {
        id: u32,
        child: Box<Node>,
        delta: u64,
        pending: Buffer,
    },
}

impl Node {
    fn compile(expr: &EventExpr, registry: &ClassRegistry, next_id: &mut u32) -> Result<Node> {
        let mut fresh = || {
            let id = *next_id;
            *next_id += 1;
            id
        };
        Ok(match expr {
            EventExpr::Primitive(spec) => leaf::compile(spec, registry)?,
            EventExpr::And(a, b) => Node::And {
                id: fresh(),
                left: Box::new(Node::compile(a, registry, next_id)?),
                right: Box::new(Node::compile(b, registry, next_id)?),
                lbuf: Buffer::default(),
                rbuf: Buffer::default(),
            },
            EventExpr::Or(a, b) => Node::Or {
                left: Box::new(Node::compile(a, registry, next_id)?),
                right: Box::new(Node::compile(b, registry, next_id)?),
            },
            EventExpr::Seq(a, b) => Node::Seq {
                id: fresh(),
                left: Box::new(Node::compile(a, registry, next_id)?),
                right: Box::new(Node::compile(b, registry, next_id)?),
                lbuf: Buffer::default(),
            },
            EventExpr::Any { m, exprs } => Node::Any {
                id: fresh(),
                m: *m,
                latest: exprs.iter().map(|_| None).collect(),
                children: exprs
                    .iter()
                    .map(|e| Node::compile(e, registry, next_id))
                    .collect::<Result<_>>()?,
            },
            EventExpr::Not { watch, start, end } => Node::Not {
                id: fresh(),
                watch: Box::new(Node::compile(watch, registry, next_id)?),
                start: Box::new(Node::compile(start, registry, next_id)?),
                end: Box::new(Node::compile(end, registry, next_id)?),
                open: None,
                violated: false,
            },
            EventExpr::Aperiodic { start, each, end } => Node::Aperiodic {
                id: fresh(),
                start: Box::new(Node::compile(start, registry, next_id)?),
                each: Box::new(Node::compile(each, registry, next_id)?),
                end: Box::new(Node::compile(end, registry, next_id)?),
                open: None,
            },
            EventExpr::Times { n, expr } => Node::Times {
                id: fresh(),
                n: (*n).max(1),
                child: Box::new(Node::compile(expr, registry, next_id)?),
                buf: Buffer::default(),
            },
            EventExpr::Plus { expr, delta } => Node::Plus {
                id: fresh(),
                child: Box::new(Node::compile(expr, registry, next_id)?),
                delta: *delta,
                pending: Buffer::default(),
            },
        })
    }

    fn process(
        &mut self,
        occ: &PrimitiveOccurrence,
        env: &mut Env<'_>,
    ) -> Vec<CompositeOccurrence> {
        match self {
            Node::Primitive {
                class,
                method,
                modifier,
                alphabet,
            } => {
                if leaf::matches(env, *class, method, *modifier, alphabet, occ) {
                    env.matched = true;
                    vec![CompositeOccurrence::from_primitive(occ.clone())]
                } else {
                    Vec::new()
                }
            }

            Node::Or { left, right } => {
                let mut out = left.process(occ, env);
                out.extend(right.process(occ, env));
                out
            }

            Node::And {
                id,
                left,
                right,
                lbuf,
                rbuf,
            } => {
                let le = left.process(occ, env);
                let re = right.process(occ, env);
                pair_and(*id, le, re, lbuf, rbuf, env)
            }

            Node::Seq {
                id,
                left,
                right,
                lbuf,
            } => {
                let le = left.process(occ, env);
                let re = right.process(occ, env);
                pair_seq(*id, le, re, lbuf, env)
            }

            Node::Any {
                id,
                m,
                children,
                latest,
            } => {
                let id = *id;
                let mut completed = Vec::new();
                for (i, child) in children.iter_mut().enumerate() {
                    let es = child.process(occ, env);
                    if let Some(e) = es.into_iter().next_back() {
                        let prev = latest[i].replace(e);
                        let was_present = prev.is_some();
                        env.record(id, NodeUndo::SetLatest { i, prev });
                        if !was_present {
                            let present = latest.iter().filter(|l| l.is_some()).count();
                            if present >= *m {
                                let merged =
                                    CompositeOccurrence::merge_all(latest.iter().flatten());
                                for (j, l) in latest.iter_mut().enumerate() {
                                    let prev = l.take();
                                    if prev.is_some() {
                                        env.record(id, NodeUndo::SetLatest { i: j, prev });
                                    }
                                }
                                completed.push(merged);
                            }
                        }
                    }
                }
                completed
            }

            Node::Not {
                id,
                watch,
                start,
                end,
                open,
                violated,
            } => {
                let id = *id;
                // Deterministic intra-occurrence ordering: close windows
                // first, then record violations, then open new windows.
                let ee = end.process(occ, env);
                let mut out = Vec::new();
                if let Some(e) = ee.into_iter().next() {
                    let prev_open = open.take();
                    if let Some(s) = prev_open.clone() {
                        if !*violated {
                            out.push(CompositeOccurrence::merge(&s, &e));
                        }
                    }
                    env.record(id, NodeUndo::SetOpen { prev: prev_open });
                    if *violated {
                        env.record(id, NodeUndo::SetViolated { prev: true });
                        *violated = false;
                    }
                }
                if open.is_some() && !watch.process(occ, env).is_empty() && !*violated {
                    env.record(id, NodeUndo::SetViolated { prev: false });
                    *violated = true;
                }
                if let Some(s) = start.process(occ, env).into_iter().next_back() {
                    let prev = open.replace(s);
                    env.record(id, NodeUndo::SetOpen { prev });
                    if *violated {
                        env.record(id, NodeUndo::SetViolated { prev: true });
                        *violated = false;
                    }
                }
                out
            }

            Node::Aperiodic {
                id,
                start,
                each,
                end,
                open,
            } => {
                let id = *id;
                if !end.process(occ, env).is_empty() && open.is_some() {
                    let prev = open.take();
                    env.record(id, NodeUndo::SetOpen { prev });
                }
                let mut out = Vec::new();
                if let Some(s) = open.as_ref() {
                    for e in each.process(occ, env) {
                        out.push(CompositeOccurrence::merge(s, &e));
                    }
                } else {
                    // Still drive the child so its own state stays fresh.
                    let _ = each.process(occ, env);
                }
                if let Some(s) = start.process(occ, env).into_iter().next_back() {
                    let prev = open.replace(s);
                    env.record(id, NodeUndo::SetOpen { prev });
                }
                out
            }

            Node::Times { id, n, child, buf } => {
                let id = *id;
                let mut out = Vec::new();
                for e in child.process(occ, env) {
                    buf.push(id, 0, e, env);
                    if buf.len() >= *n {
                        let merged = CompositeOccurrence::merge_all(buf.items.iter());
                        buf.clear(id, 0, env);
                        out.push(merged);
                    }
                }
                out
            }

            Node::Plus {
                id,
                child,
                delta,
                pending,
            } => {
                let id = *id;
                // Deadlines are checked against the *current* occurrence's
                // timestamp first (lazy timer), then new bases enqueue.
                let mut out = Vec::new();
                while pending
                    .items
                    .front()
                    .map(|b| b.end + *delta <= occ.at)
                    .unwrap_or(false)
                {
                    let base = pending.pop_front(id, 0, env).expect("checked non-empty");
                    out.push(CompositeOccurrence {
                        constituents: base.constituents.clone(),
                        start: base.start,
                        end: occ.at,
                    });
                }
                for e in child.process(occ, env) {
                    pending.push(id, 0, e, env);
                }
                out
            }
        }
    }

    /// Locate the stateful node `target` and apply one undo entry.
    /// Returns true when applied (search stops).
    fn apply_undo(&mut self, target: u32, undo: NodeUndo) -> bool {
        match self {
            Node::Primitive { .. } => false,
            Node::Or { left, right } => {
                // `undo` moves into whichever branch matches; try left
                // first, then right.
                match left.apply_undo(target, undo.clone()) {
                    true => true,
                    false => right.apply_undo(target, undo),
                }
            }
            Node::And {
                id,
                left,
                right,
                lbuf,
                rbuf,
            } => {
                if *id == target {
                    apply_buffer_undo(undo, lbuf, Some(rbuf));
                    true
                } else {
                    match left.apply_undo(target, undo.clone()) {
                        true => true,
                        false => right.apply_undo(target, undo),
                    }
                }
            }
            Node::Seq {
                id,
                left,
                right,
                lbuf,
            } => {
                if *id == target {
                    apply_buffer_undo(undo, lbuf, None);
                    true
                } else {
                    match left.apply_undo(target, undo.clone()) {
                        true => true,
                        false => right.apply_undo(target, undo),
                    }
                }
            }
            Node::Any {
                id,
                children,
                latest,
                ..
            } => {
                if *id == target {
                    if let NodeUndo::SetLatest { i, prev } = undo {
                        latest[i] = prev;
                    }
                    true
                } else {
                    children
                        .iter_mut()
                        .any(|c| c.apply_undo(target, undo.clone()))
                }
            }
            Node::Not {
                id,
                watch,
                start,
                end,
                open,
                violated,
            } => {
                if *id == target {
                    match undo {
                        NodeUndo::SetOpen { prev } => *open = prev,
                        NodeUndo::SetViolated { prev } => *violated = prev,
                        _ => {}
                    }
                    true
                } else {
                    watch.apply_undo(target, undo.clone())
                        || start.apply_undo(target, undo.clone())
                        || end.apply_undo(target, undo)
                }
            }
            Node::Aperiodic {
                id,
                start,
                each,
                end,
                open,
            } => {
                if *id == target {
                    if let NodeUndo::SetOpen { prev } = undo {
                        *open = prev;
                    }
                    true
                } else {
                    start.apply_undo(target, undo.clone())
                        || each.apply_undo(target, undo.clone())
                        || end.apply_undo(target, undo)
                }
            }
            Node::Times { id, child, buf, .. } => {
                if *id == target {
                    apply_buffer_undo(undo, buf, None);
                    true
                } else {
                    child.apply_undo(target, undo)
                }
            }
            Node::Plus {
                id, child, pending, ..
            } => {
                if *id == target {
                    apply_buffer_undo(undo, pending, None);
                    true
                } else {
                    child.apply_undo(target, undo)
                }
            }
        }
    }

    fn buffered(&self) -> usize {
        match self {
            Node::Primitive { .. } => 0,
            Node::Or { left, right } => left.buffered() + right.buffered(),
            Node::And {
                left,
                right,
                lbuf,
                rbuf,
                ..
            } => left.buffered() + right.buffered() + lbuf.len() + rbuf.len(),
            Node::Seq {
                left, right, lbuf, ..
            } => left.buffered() + right.buffered() + lbuf.len(),
            Node::Any {
                children, latest, ..
            } => {
                children.iter().map(Node::buffered).sum::<usize>()
                    + latest.iter().filter(|l| l.is_some()).count()
            }
            Node::Not {
                watch,
                start,
                end,
                open,
                ..
            } => watch.buffered() + start.buffered() + end.buffered() + usize::from(open.is_some()),
            Node::Aperiodic {
                start,
                each,
                end,
                open,
                ..
            } => start.buffered() + each.buffered() + end.buffered() + usize::from(open.is_some()),
            Node::Times { child, buf, .. } => child.buffered() + buf.len(),
            Node::Plus { child, pending, .. } => child.buffered() + pending.len(),
        }
    }

    fn prune_newer_than(&mut self, ts: u64) {
        match self {
            Node::Primitive { .. } => {}
            Node::Or { left, right } => {
                left.prune_newer_than(ts);
                right.prune_newer_than(ts);
            }
            Node::And {
                left,
                right,
                lbuf,
                rbuf,
                ..
            } => {
                left.prune_newer_than(ts);
                right.prune_newer_than(ts);
                lbuf.items.retain(|o| o.end <= ts);
                rbuf.items.retain(|o| o.end <= ts);
            }
            Node::Seq {
                left, right, lbuf, ..
            } => {
                left.prune_newer_than(ts);
                right.prune_newer_than(ts);
                lbuf.items.retain(|o| o.end <= ts);
            }
            Node::Any {
                children, latest, ..
            } => {
                for c in children {
                    c.prune_newer_than(ts);
                }
                for l in latest {
                    if l.as_ref().map(|o| o.end > ts).unwrap_or(false) {
                        *l = None;
                    }
                }
            }
            Node::Not {
                watch,
                start,
                end,
                open,
                violated,
                ..
            } => {
                watch.prune_newer_than(ts);
                start.prune_newer_than(ts);
                end.prune_newer_than(ts);
                if open.as_ref().map(|o| o.end > ts).unwrap_or(false) {
                    *open = None;
                    *violated = false;
                }
            }
            Node::Aperiodic {
                start,
                each,
                end,
                open,
                ..
            } => {
                start.prune_newer_than(ts);
                each.prune_newer_than(ts);
                end.prune_newer_than(ts);
                if open.as_ref().map(|o| o.end > ts).unwrap_or(false) {
                    *open = None;
                }
            }
            Node::Times { child, buf, .. } => {
                child.prune_newer_than(ts);
                buf.items.retain(|o| o.end <= ts);
            }
            Node::Plus { child, pending, .. } => {
                child.prune_newer_than(ts);
                pending.items.retain(|o| o.end <= ts);
            }
        }
    }

    fn reset(&mut self) {
        match self {
            Node::Primitive { .. } => {}
            Node::Or { left, right } => {
                left.reset();
                right.reset();
            }
            Node::And {
                left,
                right,
                lbuf,
                rbuf,
                ..
            } => {
                left.reset();
                right.reset();
                lbuf.items.clear();
                rbuf.items.clear();
            }
            Node::Seq {
                left, right, lbuf, ..
            } => {
                left.reset();
                right.reset();
                lbuf.items.clear();
            }
            Node::Any {
                children, latest, ..
            } => {
                for c in children {
                    c.reset();
                }
                for l in latest {
                    *l = None;
                }
            }
            Node::Not {
                watch,
                start,
                end,
                open,
                violated,
                ..
            } => {
                watch.reset();
                start.reset();
                end.reset();
                *open = None;
                *violated = false;
            }
            Node::Aperiodic {
                start,
                each,
                end,
                open,
                ..
            } => {
                start.reset();
                each.reset();
                end.reset();
                *open = None;
            }
            Node::Times { child, buf, .. } => {
                child.reset();
                buf.items.clear();
            }
            Node::Plus { child, pending, .. } => {
                child.reset();
                pending.items.clear();
            }
        }
    }

    /// Recompute every leaf's symbol alphabet against a grown schema
    /// (classes defined after compile time may add subclass symbols).
    fn refresh_alphabets(&mut self, registry: &ClassRegistry) {
        match self {
            Node::Primitive {
                class,
                method,
                modifier,
                alphabet,
            } => {
                *alphabet = leaf::alphabet(registry, *class, method, *modifier);
            }
            Node::Or { left, right } => {
                left.refresh_alphabets(registry);
                right.refresh_alphabets(registry);
            }
            Node::And { left, right, .. } | Node::Seq { left, right, .. } => {
                left.refresh_alphabets(registry);
                right.refresh_alphabets(registry);
            }
            Node::Any { children, .. } => {
                for c in children {
                    c.refresh_alphabets(registry);
                }
            }
            Node::Not {
                watch, start, end, ..
            } => {
                watch.refresh_alphabets(registry);
                start.refresh_alphabets(registry);
                end.refresh_alphabets(registry);
            }
            Node::Aperiodic {
                start, each, end, ..
            } => {
                start.refresh_alphabets(registry);
                each.refresh_alphabets(registry);
                end.refresh_alphabets(registry);
            }
            Node::Times { child, .. } | Node::Plus { child, .. } => {
                child.refresh_alphabets(registry);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::PrimitiveEventSpec as P;
    use sentinel_object::{ClassDecl, Oid, Value};
    use std::sync::Arc;

    /// Schema with two reactive classes used throughout.
    fn registry() -> ClassRegistry {
        let mut reg = ClassRegistry::new();
        reg.define(ClassDecl::reactive("Stock").method("SetPrice", &[]))
            .unwrap();
        reg.define(ClassDecl::reactive("FinancialInfo").method("SetValue", &[]))
            .unwrap();
        reg.define(ClassDecl::reactive("Growth").parent("Stock"))
            .unwrap();
        reg
    }

    fn occ(reg: &ClassRegistry, at: u64, class: &str, method: &str) -> PrimitiveOccurrence {
        let cid = reg.id_of(class).unwrap();
        PrimitiveOccurrence {
            at,
            oid: Oid(at),
            class: cid,
            owner: cid,
            method: method.into(),
            modifier: EventModifier::End,
            params: Arc::from(vec![Value::Int(at as i64)]),
        }
    }

    fn stock(m: &str) -> EventExpr {
        EventExpr::primitive(P::end("Stock", m))
    }
    fn fininfo(m: &str) -> EventExpr {
        EventExpr::primitive(P::end("FinancialInfo", m))
    }

    #[test]
    fn primitive_matches_class_method_modifier() {
        let reg = registry();
        let mut d = DetectorInstance::compile_default(&stock("SetPrice"), &reg).unwrap();
        assert_eq!(d.process(&reg, &occ(&reg, 1, "Stock", "SetPrice")).len(), 1);
        // Wrong method.
        assert!(d.process(&reg, &occ(&reg, 2, "Stock", "Other")).is_empty());
        // Wrong class.
        assert!(d
            .process(&reg, &occ(&reg, 3, "FinancialInfo", "SetPrice"))
            .is_empty());
        // Wrong modifier.
        let mut begin_occ = occ(&reg, 4, "Stock", "SetPrice");
        begin_occ.modifier = EventModifier::Begin;
        assert!(d.process(&reg, &begin_occ).is_empty());
        let s = d.stats();
        assert_eq!(s.offered, 4);
        assert_eq!(s.matched, 1);
        assert_eq!(s.emitted, 1);
    }

    #[test]
    fn primitive_matches_subclass_instances() {
        let reg = registry();
        let mut d = DetectorInstance::compile_default(&stock("SetPrice"), &reg).unwrap();
        // Growth is a subclass of Stock: its invocations match.
        assert_eq!(
            d.process(&reg, &occ(&reg, 1, "Growth", "SetPrice")).len(),
            1
        );
    }

    #[test]
    fn subclass_defined_after_compile_still_matches() {
        // The leaf alphabet is computed at compile time; defining a new
        // subclass afterwards must refresh it (lazily, keyed on registry
        // length) so the subclass's fresh symbols match.
        let mut reg = registry();
        let mut d = DetectorInstance::compile_default(&stock("SetPrice"), &reg).unwrap();
        assert_eq!(d.process(&reg, &occ(&reg, 1, "Stock", "SetPrice")).len(), 1);
        reg.define(ClassDecl::reactive("Late").parent("Stock"))
            .unwrap();
        assert_eq!(d.process(&reg, &occ(&reg, 2, "Late", "SetPrice")).len(), 1);
        // And the pre-resolved entry point agrees.
        let o = occ(&reg, 3, "Late", "SetPrice");
        let sym = o.sym(&reg);
        assert!(sym.is_some());
        assert_eq!(d.process_resolved(&reg, &o, sym).len(), 1);
    }

    #[test]
    fn compile_rejects_unknown_class() {
        let reg = registry();
        let err =
            DetectorInstance::compile_default(&EventExpr::primitive(P::end("Nope", "m")), &reg)
                .err()
                .unwrap();
        assert!(matches!(err, sentinel_object::ObjectError::UnknownClass(_)));
    }

    #[test]
    fn conjunction_detects_in_any_order() {
        let reg = registry();
        let expr = stock("SetPrice").and(fininfo("SetValue"));
        let mut d = DetectorInstance::compile_default(&expr, &reg).unwrap();
        assert!(d
            .process(&reg, &occ(&reg, 1, "Stock", "SetPrice"))
            .is_empty());
        let got = d.process(&reg, &occ(&reg, 2, "FinancialInfo", "SetValue"));
        assert_eq!(got.len(), 1);
        assert_eq!(got[0].start, 1);
        assert_eq!(got[0].end, 2);
        // Reverse order also detects.
        let mut d = DetectorInstance::compile_default(&expr, &reg).unwrap();
        assert!(d
            .process(&reg, &occ(&reg, 3, "FinancialInfo", "SetValue"))
            .is_empty());
        assert_eq!(d.process(&reg, &occ(&reg, 4, "Stock", "SetPrice")).len(), 1);
    }

    #[test]
    fn conjunction_unrestricted_all_combinations() {
        let reg = registry();
        let expr = stock("SetPrice").and(fininfo("SetValue"));
        let mut d = DetectorInstance::compile_default(&expr, &reg).unwrap();
        d.process(&reg, &occ(&reg, 1, "Stock", "SetPrice"));
        d.process(&reg, &occ(&reg, 2, "Stock", "SetPrice"));
        // Two buffered lefts: one right pairs with both.
        let got = d.process(&reg, &occ(&reg, 3, "FinancialInfo", "SetValue"));
        assert_eq!(got.len(), 2);
        // Nothing is consumed: another right pairs with both lefts again.
        let got = d.process(&reg, &occ(&reg, 4, "FinancialInfo", "SetValue"));
        assert_eq!(got.len(), 2);
        assert_eq!(d.buffered(), 4);
    }

    #[test]
    fn disjunction_forwards_both_sides() {
        let reg = registry();
        let expr = stock("SetPrice").or(fininfo("SetValue"));
        let mut d = DetectorInstance::compile_default(&expr, &reg).unwrap();
        assert_eq!(d.process(&reg, &occ(&reg, 1, "Stock", "SetPrice")).len(), 1);
        assert_eq!(
            d.process(&reg, &occ(&reg, 2, "FinancialInfo", "SetValue"))
                .len(),
            1
        );
        assert!(d
            .process(&reg, &occ(&reg, 3, "Stock", "Nothing"))
            .is_empty());
        assert_eq!(d.buffered(), 0, "disjunction is stateless");
    }

    #[test]
    fn sequence_requires_order() {
        let reg = registry();
        let expr = stock("SetPrice").then(fininfo("SetValue"));
        let mut d = DetectorInstance::compile_default(&expr, &reg).unwrap();
        // Right before left: no detection, right is discarded.
        assert!(d
            .process(&reg, &occ(&reg, 1, "FinancialInfo", "SetValue"))
            .is_empty());
        assert!(d
            .process(&reg, &occ(&reg, 2, "Stock", "SetPrice"))
            .is_empty());
        let got = d.process(&reg, &occ(&reg, 3, "FinancialInfo", "SetValue"));
        assert_eq!(got.len(), 1);
        assert_eq!((got[0].start, got[0].end), (2, 3));
    }

    #[test]
    fn nested_composites_propagate() {
        // (a ; b) && c — paper: "E1 and E2 may potentially be composite".
        let reg = registry();
        let expr = stock("a").then(stock("b")).and(fininfo("c"));
        let mut d = DetectorInstance::compile_default(&expr, &reg).unwrap();
        d.process(&reg, &occ(&reg, 1, "Stock", "a"));
        d.process(&reg, &occ(&reg, 2, "FinancialInfo", "c"));
        // Seq completes now, pairing with buffered c.
        let got = d.process(&reg, &occ(&reg, 3, "Stock", "b"));
        assert_eq!(got.len(), 1);
        assert_eq!(got[0].constituents.len(), 3);
        assert_eq!((got[0].start, got[0].end), (1, 3));
    }

    #[test]
    fn same_primitive_on_both_sides_of_and() {
        // And(e, e): one occurrence matches both children and pairs with
        // itself exactly once.
        let reg = registry();
        let expr = stock("SetPrice").and(stock("SetPrice"));
        let mut d = DetectorInstance::compile_default(&expr, &reg).unwrap();
        let got = d.process(&reg, &occ(&reg, 1, "Stock", "SetPrice"));
        assert_eq!(got.len(), 1);
        assert_eq!(got[0].constituents.len(), 2);
    }

    #[test]
    fn same_primitive_on_both_sides_of_seq_never_self_pairs() {
        // Seq(e, e): an occurrence is not strictly after itself.
        let reg = registry();
        let expr = stock("SetPrice").then(stock("SetPrice"));
        let mut d = DetectorInstance::compile_default(&expr, &reg).unwrap();
        assert!(d
            .process(&reg, &occ(&reg, 1, "Stock", "SetPrice"))
            .is_empty());
        // Second occurrence pairs with the first.
        assert_eq!(d.process(&reg, &occ(&reg, 2, "Stock", "SetPrice")).len(), 1);
    }

    #[test]
    fn recent_context_keeps_latest_initiator() {
        let reg = registry();
        let expr = stock("SetPrice").and(fininfo("SetValue"));
        let mut d =
            DetectorInstance::compile(&expr, &reg, ParamContext::Recent, DetectorCaps::default())
                .unwrap();
        d.process(&reg, &occ(&reg, 1, "Stock", "SetPrice"));
        d.process(&reg, &occ(&reg, 2, "Stock", "SetPrice")); // replaces t=1
        let got = d.process(&reg, &occ(&reg, 3, "FinancialInfo", "SetValue"));
        assert_eq!(got.len(), 1);
        assert_eq!(got[0].start, 2, "most recent left wins");
        // Initiator retained: another terminator pairs again.
        let got = d.process(&reg, &occ(&reg, 4, "FinancialInfo", "SetValue"));
        assert_eq!(got.len(), 1);
        assert!(d.buffered() <= 1, "recent context state is bounded");
    }

    #[test]
    fn chronicle_context_pairs_fifo_and_consumes() {
        let reg = registry();
        let expr = stock("SetPrice").and(fininfo("SetValue"));
        let mut d = DetectorInstance::compile(
            &expr,
            &reg,
            ParamContext::Chronicle,
            DetectorCaps::default(),
        )
        .unwrap();
        d.process(&reg, &occ(&reg, 1, "Stock", "SetPrice"));
        d.process(&reg, &occ(&reg, 2, "Stock", "SetPrice"));
        let got = d.process(&reg, &occ(&reg, 3, "FinancialInfo", "SetValue"));
        assert_eq!(got.len(), 1);
        assert_eq!(got[0].start, 1, "oldest left pairs first");
        let got = d.process(&reg, &occ(&reg, 4, "FinancialInfo", "SetValue"));
        assert_eq!(got.len(), 1);
        assert_eq!(got[0].start, 2);
        // Both lefts consumed.
        let got = d.process(&reg, &occ(&reg, 5, "FinancialInfo", "SetValue"));
        assert!(got.is_empty());
    }

    #[test]
    fn cumulative_context_flushes_everything_once() {
        let reg = registry();
        let expr = stock("SetPrice").and(fininfo("SetValue"));
        let mut d = DetectorInstance::compile(
            &expr,
            &reg,
            ParamContext::Cumulative,
            DetectorCaps::default(),
        )
        .unwrap();
        d.process(&reg, &occ(&reg, 1, "Stock", "SetPrice"));
        d.process(&reg, &occ(&reg, 2, "Stock", "SetPrice"));
        let got = d.process(&reg, &occ(&reg, 3, "FinancialInfo", "SetValue"));
        assert_eq!(got.len(), 1);
        assert_eq!(got[0].constituents.len(), 3, "all occurrences flushed");
        assert_eq!(d.buffered(), 0);
    }

    #[test]
    fn any_two_of_three() {
        let reg = registry();
        let expr = EventExpr::any(2, vec![stock("a"), stock("b"), stock("c")]);
        let mut d = DetectorInstance::compile_default(&expr, &reg).unwrap();
        assert!(d.process(&reg, &occ(&reg, 1, "Stock", "a")).is_empty());
        // Repeats of the same child do not complete.
        assert!(d.process(&reg, &occ(&reg, 2, "Stock", "a")).is_empty());
        let got = d.process(&reg, &occ(&reg, 3, "Stock", "c"));
        assert_eq!(got.len(), 1);
        assert_eq!(got[0].constituents.len(), 2);
        // State cleared after detection.
        assert!(d.process(&reg, &occ(&reg, 4, "Stock", "b")).is_empty());
    }

    #[test]
    fn not_between_window() {
        let reg = registry();
        let expr = EventExpr::not_between(stock("w"), stock("s"), stock("e"));
        let mut d = DetectorInstance::compile_default(&expr, &reg).unwrap();
        // s .. e with no w: detect.
        d.process(&reg, &occ(&reg, 1, "Stock", "s"));
        assert_eq!(d.process(&reg, &occ(&reg, 2, "Stock", "e")).len(), 1);
        // s .. w .. e: suppressed.
        d.process(&reg, &occ(&reg, 3, "Stock", "s"));
        d.process(&reg, &occ(&reg, 4, "Stock", "w"));
        assert!(d.process(&reg, &occ(&reg, 5, "Stock", "e")).is_empty());
        // e without open window: nothing.
        assert!(d.process(&reg, &occ(&reg, 6, "Stock", "e")).is_empty());
    }

    #[test]
    fn aperiodic_emits_each_inside_window() {
        let reg = registry();
        let expr = EventExpr::aperiodic(stock("s"), stock("m"), stock("e"));
        let mut d = DetectorInstance::compile_default(&expr, &reg).unwrap();
        assert!(d.process(&reg, &occ(&reg, 1, "Stock", "m")).is_empty());
        d.process(&reg, &occ(&reg, 2, "Stock", "s"));
        assert_eq!(d.process(&reg, &occ(&reg, 3, "Stock", "m")).len(), 1);
        assert_eq!(d.process(&reg, &occ(&reg, 4, "Stock", "m")).len(), 1);
        d.process(&reg, &occ(&reg, 5, "Stock", "e"));
        assert!(d.process(&reg, &occ(&reg, 6, "Stock", "m")).is_empty());
    }

    #[test]
    fn caps_drop_oldest_and_count() {
        let reg = registry();
        let expr = stock("SetPrice").and(fininfo("SetValue"));
        let mut d = DetectorInstance::compile(
            &expr,
            &reg,
            ParamContext::Unrestricted,
            DetectorCaps {
                max_buffered_per_node: 2,
            },
        )
        .unwrap();
        for t in 1..=5 {
            d.process(&reg, &occ(&reg, t, "Stock", "SetPrice"));
        }
        assert_eq!(d.buffered(), 2);
        assert_eq!(d.stats().dropped, 3);
        // Only the two newest survive to pair.
        let got = d.process(&reg, &occ(&reg, 6, "FinancialInfo", "SetValue"));
        assert_eq!(got.len(), 2);
        assert_eq!(got.iter().map(|g| g.start).min(), Some(4));
    }

    #[test]
    fn reset_clears_partial_state() {
        let reg = registry();
        let expr = stock("SetPrice").and(fininfo("SetValue"));
        let mut d = DetectorInstance::compile_default(&expr, &reg).unwrap();
        d.process(&reg, &occ(&reg, 1, "Stock", "SetPrice"));
        assert_eq!(d.buffered(), 1);
        d.reset();
        assert_eq!(d.buffered(), 0);
        assert!(d
            .process(&reg, &occ(&reg, 2, "FinancialInfo", "SetValue"))
            .is_empty());
    }

    // -----------------------------------------------------------------
    // Journal (transactional detection state) tests
    // -----------------------------------------------------------------

    /// Drive the same stream through a journaled detector (which then
    /// aborts) and assert its state equals the pre-transaction clone.
    fn assert_abort_restores(
        expr: &EventExpr,
        ctx: ParamContext,
        pre: &[PrimitiveOccurrence],
        during: &[PrimitiveOccurrence],
        reg: &ClassRegistry,
    ) {
        let mut d = DetectorInstance::compile(expr, reg, ctx, DetectorCaps::default()).unwrap();
        for o in pre {
            d.process(reg, o);
        }
        let snapshot = d.clone();
        d.begin_txn();
        for o in during {
            d.process(reg, o);
        }
        d.abort_txn();
        // Equality via behaviour: same buffered count and identical
        // emissions for a common probe suffix.
        assert_eq!(d.buffered(), snapshot.buffered(), "buffered after abort");
        let mut d2 = snapshot;
        let probe: Vec<PrimitiveOccurrence> = (1000..1010)
            .map(|t| occ(reg, t, "Stock", "SetPrice"))
            .chain((1010..1020).map(|t| occ(reg, t, "FinancialInfo", "SetValue")))
            .collect();
        for o in &probe {
            assert_eq!(
                d.process(reg, o),
                d2.process(reg, o),
                "behavioural divergence after abort"
            );
        }
    }

    #[test]
    fn abort_restores_state_across_contexts() {
        let reg = registry();
        let expr = stock("SetPrice").and(fininfo("SetValue"));
        let pre: Vec<_> = (1..6).map(|t| occ(&reg, t, "Stock", "SetPrice")).collect();
        let during: Vec<_> = vec![
            occ(&reg, 10, "FinancialInfo", "SetValue"), // consumes under chronicle
            occ(&reg, 11, "Stock", "SetPrice"),
            occ(&reg, 12, "FinancialInfo", "SetValue"),
        ];
        for ctx in ParamContext::ALL {
            assert_abort_restores(&expr, ctx, &pre, &during, &reg);
        }
    }

    #[test]
    fn abort_restores_seq_and_extensions() {
        let reg = registry();
        let pre: Vec<_> = (1..4).map(|t| occ(&reg, t, "Stock", "SetPrice")).collect();
        let during: Vec<_> = vec![
            occ(&reg, 10, "FinancialInfo", "SetValue"),
            occ(&reg, 11, "Stock", "SetPrice"),
        ];
        let seq = stock("SetPrice").then(fininfo("SetValue"));
        for ctx in ParamContext::ALL {
            assert_abort_restores(&seq, ctx, &pre, &during, &reg);
        }
        // Any / Not / Aperiodic use window state.
        let any = EventExpr::any(2, vec![stock("SetPrice"), fininfo("SetValue"), stock("x")]);
        assert_abort_restores(&any, ParamContext::Unrestricted, &pre, &during, &reg);
        let not = EventExpr::not_between(stock("w"), stock("SetPrice"), fininfo("SetValue"));
        assert_abort_restores(&not, ParamContext::Unrestricted, &pre, &during, &reg);
        let ap = EventExpr::aperiodic(stock("SetPrice"), fininfo("SetValue"), stock("e"));
        assert_abort_restores(&ap, ParamContext::Unrestricted, &pre, &during, &reg);
    }

    #[test]
    fn abort_restores_consumed_occurrences() {
        // The banking regression shape, at detector level: a chronicle
        // sequence whose left constituent is consumed inside the aborted
        // transaction must be re-armed.
        let reg = registry();
        let expr = stock("SetPrice").then(fininfo("SetValue"));
        let mut d = DetectorInstance::compile(
            &expr,
            &reg,
            ParamContext::Chronicle,
            DetectorCaps::default(),
        )
        .unwrap();
        d.process(&reg, &occ(&reg, 1, "Stock", "SetPrice"));
        d.begin_txn();
        let got = d.process(&reg, &occ(&reg, 2, "FinancialInfo", "SetValue"));
        assert_eq!(got.len(), 1, "detection inside the transaction");
        d.abort_txn();
        // The left is armed again: a new terminator pairs.
        let got = d.process(&reg, &occ(&reg, 3, "FinancialInfo", "SetValue"));
        assert_eq!(got.len(), 1, "consumed occurrence restored by abort");
    }

    #[test]
    fn commit_keeps_transaction_state() {
        let reg = registry();
        let expr = stock("SetPrice").and(fininfo("SetValue"));
        let mut d = DetectorInstance::compile_default(&expr, &reg).unwrap();
        d.begin_txn();
        d.process(&reg, &occ(&reg, 1, "Stock", "SetPrice"));
        d.commit_txn();
        assert_eq!(d.buffered(), 1);
        let got = d.process(&reg, &occ(&reg, 2, "FinancialInfo", "SetValue"));
        assert_eq!(got.len(), 1);
    }

    #[test]
    fn reset_inside_txn_is_undone_by_abort() {
        let reg = registry();
        let expr = stock("SetPrice").and(fininfo("SetValue"));
        let mut d = DetectorInstance::compile_default(&expr, &reg).unwrap();
        d.process(&reg, &occ(&reg, 1, "Stock", "SetPrice"));
        d.begin_txn();
        d.reset();
        assert_eq!(d.buffered(), 0);
        d.abort_txn();
        assert_eq!(d.buffered(), 1, "reset rolled back");
    }

    #[test]
    fn journal_overhead_is_constant_per_event() {
        // The journal must not clone buffers on append-only workloads:
        // with N buffered occurrences, a journaled append stays O(1).
        // (Guarded indirectly: entries recorded equal events processed.)
        let reg = registry();
        let expr = stock("SetPrice").and(fininfo("SetValue"));
        let mut d = DetectorInstance::compile_default(&expr, &reg).unwrap();
        for t in 1..=1000 {
            d.process(&reg, &occ(&reg, t, "Stock", "SetPrice"));
        }
        d.begin_txn();
        d.process(&reg, &occ(&reg, 2000, "Stock", "SetPrice"));
        assert_eq!(
            d.journal.as_ref().map(|j| j.len()),
            Some(1),
            "one journal marker for one append"
        );
        d.commit_txn();
    }
}

#[cfg(test)]
mod extension_op_tests {
    use super::*;
    use crate::spec::PrimitiveEventSpec as P;
    use sentinel_object::{ClassDecl, Oid, Value};
    use std::sync::Arc;

    fn registry() -> ClassRegistry {
        let mut reg = ClassRegistry::new();
        reg.define(ClassDecl::reactive("C").method("m", &[]).method("x", &[]))
            .unwrap();
        reg
    }

    fn occ(reg: &ClassRegistry, at: u64, method: &str) -> PrimitiveOccurrence {
        let cid = reg.id_of("C").unwrap();
        PrimitiveOccurrence {
            at,
            oid: Oid(at),
            class: cid,
            owner: cid,
            method: method.into(),
            modifier: EventModifier::End,
            params: Arc::from(Vec::<Value>::new()),
        }
    }

    fn leaf(m: &str) -> EventExpr {
        EventExpr::primitive(P::end("C", m))
    }

    #[test]
    fn times_emits_every_nth_and_consumes() {
        let reg = registry();
        let mut d = DetectorInstance::compile_default(&leaf("m").times(3), &reg).unwrap();
        let mut emissions = 0;
        for t in 1..=9 {
            emissions += d.process(&reg, &occ(&reg, t, "m")).len();
        }
        assert_eq!(emissions, 3, "9 occurrences / n=3");
        assert_eq!(d.buffered(), 0, "every group consumed");
        // Each emission carries its n constituents.
        let mut d = DetectorInstance::compile_default(&leaf("m").times(2), &reg).unwrap();
        d.process(&reg, &occ(&reg, 1, "m"));
        let got = d.process(&reg, &occ(&reg, 2, "m"));
        assert_eq!(got[0].constituents.len(), 2);
        assert_eq!((got[0].start, got[0].end), (1, 2));
    }

    #[test]
    fn times_abort_restores_partial_count() {
        let reg = registry();
        let mut d = DetectorInstance::compile_default(&leaf("m").times(3), &reg).unwrap();
        d.process(&reg, &occ(&reg, 1, "m"));
        d.begin_txn();
        d.process(&reg, &occ(&reg, 2, "m"));
        assert_eq!(d.process(&reg, &occ(&reg, 3, "m")).len(), 1);
        d.abort_txn();
        // Back to one buffered occurrence: two more complete the group.
        assert_eq!(d.buffered(), 1);
        d.process(&reg, &occ(&reg, 4, "m"));
        assert_eq!(d.process(&reg, &occ(&reg, 5, "m")).len(), 1);
    }

    #[test]
    fn plus_fires_lazily_at_or_after_deadline() {
        let reg = registry();
        // m + 10 ticks, signalled by whatever occurrence crosses it.
        let mut d = DetectorInstance::compile_default(&leaf("m").plus(10), &reg).unwrap();
        d.process(&reg, &occ(&reg, 5, "m")); // base at t=5, deadline 15
        assert!(d.process(&reg, &occ(&reg, 10, "x")).is_empty(), "too early");
        let got = d.process(&reg, &occ(&reg, 16, "x"));
        assert_eq!(got.len(), 1);
        assert_eq!((got[0].start, got[0].end), (5, 16));
        assert_eq!(d.buffered(), 0);
    }

    #[test]
    fn plus_queues_multiple_bases_fifo() {
        let reg = registry();
        let mut d = DetectorInstance::compile_default(&leaf("m").plus(5), &reg).unwrap();
        d.process(&reg, &occ(&reg, 1, "m"));
        d.process(&reg, &occ(&reg, 3, "m"));
        // t=8 crosses 1+5 and 3+5: both fire, oldest first.
        let got = d.process(&reg, &occ(&reg, 8, "x"));
        assert_eq!(got.len(), 2);
        assert_eq!(got[0].start, 1);
        assert_eq!(got[1].start, 3);
    }

    #[test]
    fn plus_abort_reinstates_pending_deadline() {
        let reg = registry();
        let mut d = DetectorInstance::compile_default(&leaf("m").plus(5), &reg).unwrap();
        d.process(&reg, &occ(&reg, 1, "m"));
        d.begin_txn();
        assert_eq!(d.process(&reg, &occ(&reg, 7, "x")).len(), 1);
        d.abort_txn();
        // The pending deadline is re-armed and fires again.
        assert_eq!(d.process(&reg, &occ(&reg, 9, "x")).len(), 1);
    }

    #[test]
    fn composition_times_of_sequence() {
        // Every 2nd (a ; b) pair.
        let reg = registry();
        let expr = leaf("m").then(leaf("x")).times(2);
        let mut d = DetectorInstance::compile(
            &expr,
            &reg,
            ParamContext::Chronicle,
            DetectorCaps::default(),
        )
        .unwrap();
        let mut emissions = 0;
        for t in 0..8 {
            let m = if t % 2 == 0 { "m" } else { "x" };
            emissions += d.process(&reg, &occ(&reg, t + 1, m)).len();
        }
        // 4 sequence detections → 2 times-emissions of 4 constituents.
        assert_eq!(emissions, 2);
    }
}
