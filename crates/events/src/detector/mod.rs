//! Incremental composite-event detection.
//!
//! Each rule in the paper owns a "local event detector" (Figure 2) that
//! receives the primitive events propagated to the rule and signals the
//! rule when its (possibly composite) event occurs. A
//! [`DetectorInstance`] is that detector: an [`EventExpr`] compiled into
//! a tree of operator nodes, each holding the partial-detection state the
//! paper describes for the `Conjunction` subclass (Figure 6: the two
//! constituent event references plus a `Raised` flag — generalised here
//! to occurrence buffers so that constituent *parameters* survive until
//! the composite completes).
//!
//! Detection is driven one primitive occurrence at a time through
//! [`DetectorInstance::process`]; occurrences must arrive in timestamp
//! order (the database's logical clock guarantees this).
//!
//! ## Operator semantics (with `Unrestricted`, the paper's context)
//!
//! * `And(a, b)` — every occurrence of `a` pairs with every occurrence of
//!   `b`, regardless of order.
//! * `Or(a, b)` — every occurrence of either side is an occurrence of the
//!   whole.
//! * `Seq(a, b)` — every occurrence of `b` pairs with every *earlier*
//!   occurrence of `a` (strictly: `a.end < b.start`).
//!
//! The restricted contexts ([`ParamContext`]) change which buffered
//! occurrences participate and whether they are consumed; see the module
//! docs in [`crate::context`].
//!
//! ## Transactional detection state
//!
//! Rules are "subject to the same transaction semantics" as other
//! objects (paper §2) — which must include their *detection state*: an
//! occurrence generated inside a rolled-back transaction must not later
//! complete a composite event, and an occurrence *consumed* by a
//! detection that was rolled back must be re-armed. The detector
//! therefore supports an undo journal: between
//! [`begin_txn`](DetectorInstance::begin_txn) and
//! [`commit_txn`](DetectorInstance::commit_txn) /
//! [`abort_txn`](DetectorInstance::abort_txn) every state mutation
//! records its inverse. The journal costs O(1) per mutation (a marker
//! for appends; a clone only for destructive pops/clears), so a
//! transaction over a detector with a large buffer does **not** pay for
//! the buffer size — the reason this design replaced an earlier
//! clone-the-detector checkpoint (see DESIGN.md §9).

mod conjunction;
mod leaf;
mod sequence;
mod state;
mod temporal;
mod window;

use crate::algebra::{AggFn, EventExpr};
use crate::clock::TimeSource;
use crate::context::ParamContext;
use crate::occurrence::{CompositeOccurrence, PrimitiveOccurrence};
use crate::spec::EventModifier;
use sentinel_object::{ClassId, ClassRegistry, EventSym, Result};
use sentinel_telemetry::{Stage, Telemetry, Timer};
use serde::{Deserialize, Serialize};
use std::sync::Arc;

use conjunction::pair_and;
use sequence::pair_seq;
use state::{
    apply_buffer_undo, evict_buffer, Buffer, Env, JournalEntry, NodeUndo, Stim, WindowBuf,
};
use window::Watermarks;

/// Resource limits protecting against unbounded detector state (the
/// unrestricted context never discards occurrences on its own).
#[derive(Debug, Clone, Copy)]
pub struct DetectorCaps {
    /// Maximum occurrences buffered per operator-node side; the oldest
    /// occurrence is dropped (and counted) when the cap is exceeded.
    pub max_buffered_per_node: usize,
}

impl Default for DetectorCaps {
    fn default() -> Self {
        DetectorCaps {
            max_buffered_per_node: 65_536,
        }
    }
}

/// Counters exposed for the event-management-cost experiments (E2, E12).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DetectorStats {
    /// Occurrences offered to the detector.
    pub offered: u64,
    /// Occurrences that matched at least one primitive leaf.
    pub matched: u64,
    /// Composite occurrences emitted at the root.
    pub emitted: u64,
    /// Occurrences dropped because a node buffer hit its cap.
    pub dropped: u64,
}

/// A compiled, stateful detector for one event expression.
///
/// `Clone` duplicates the full partial-detection state (used by tests to
/// cross-check the journal against brute-force snapshots).
#[derive(Clone)]
pub struct DetectorInstance {
    root: Node,
    context: ParamContext,
    caps: DetectorCaps,
    stats: DetectorStats,
    journal: Option<Vec<JournalEntry>>,
    telemetry: Option<Arc<Telemetry>>,
    /// The instant axis windows are measured on. `None` (unit tests,
    /// standalone detectors) falls back to each stimulus's seq — i.e.
    /// logical-mode semantics.
    time: Option<Arc<TimeSource>>,
    label: Arc<str>,
    /// Registry length the leaf alphabets were computed against. The
    /// registry is append-only, so a length mismatch means classes were
    /// defined since compile time and subclass closures may be stale.
    schema_len: usize,
}

impl std::fmt::Debug for DetectorInstance {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("DetectorInstance")
            .field("context", &self.context)
            .field("stats", &self.stats)
            .field("buffered", &self.buffered())
            .field("in_txn", &self.journal.is_some())
            .finish()
    }
}

impl DetectorInstance {
    /// Compile an expression against the schema. Class names in primitive
    /// specs are resolved here; unknown classes are reported immediately
    /// rather than silently never matching.
    pub fn compile(
        expr: &EventExpr,
        registry: &ClassRegistry,
        context: ParamContext,
        caps: DetectorCaps,
    ) -> Result<Self> {
        let mut next_id = 0u32;
        let mut next_timer = 0usize;
        Ok(DetectorInstance {
            root: Node::compile(expr, registry, &mut next_id, &mut next_timer)?,
            context,
            caps,
            stats: DetectorStats::default(),
            journal: None,
            telemetry: None,
            time: None,
            label: Arc::from(""),
            schema_len: registry.len(),
        })
    }

    /// Attach an observability handle. `label` (typically the owning
    /// rule's name) becomes the subject of the detector's trace records.
    pub fn set_telemetry(&mut self, telemetry: Arc<Telemetry>, label: impl Into<Arc<str>>) {
        self.telemetry = Some(telemetry);
        self.label = label.into();
    }

    /// Attach the database's time authority: window edges and epochs are
    /// then measured on its instant axis instead of the sequence axis.
    pub fn set_time_source(&mut self, time: Arc<TimeSource>) {
        self.time = Some(time);
    }

    /// Compile with default context and caps.
    pub fn compile_default(expr: &EventExpr, registry: &ClassRegistry) -> Result<Self> {
        Self::compile(
            expr,
            registry,
            ParamContext::default(),
            DetectorCaps::default(),
        )
    }

    /// Feed one primitive occurrence; returns the composite occurrences
    /// of the whole expression completed by it (possibly several under
    /// the unrestricted context, at most one under the restricted ones
    /// for binary operators).
    pub fn process(
        &mut self,
        registry: &ClassRegistry,
        occ: &PrimitiveOccurrence,
    ) -> Vec<CompositeOccurrence> {
        let sym = registry.event_sym(occ.class, &occ.method, occ.modifier.is_end());
        self.process_resolved(registry, occ, sym)
    }

    /// [`process`](Self::process) with the occurrence's interned symbol
    /// already resolved by the caller (the engine resolves once per event
    /// and shares the symbol across every notified detector). `None`
    /// means the occurrence names a method outside the schema — leaves
    /// then match by the string-compare fallback.
    pub fn process_resolved(
        &mut self,
        registry: &ClassRegistry,
        occ: &PrimitiveOccurrence,
        sym: Option<EventSym>,
    ) -> Vec<CompositeOccurrence> {
        if self.schema_len != registry.len() {
            self.root.refresh_alphabets(registry);
            self.schema_len = registry.len();
        }
        self.stats.offered += 1;
        let timer = match &self.telemetry {
            Some(t) => t.timer(),
            None => Timer::off(),
        };
        let now = match &self.time {
            Some(t) => t.instant_now(),
            None => occ.at,
        };
        let mut env = Env {
            registry,
            sym,
            context: self.context,
            caps: self.caps,
            now,
            matched: false,
            dropped: 0,
            journal: self.journal.as_mut(),
        };
        let out = self.root.process(&Stim::Prim(occ), &mut env);
        if env.matched {
            self.stats.matched += 1;
        }
        self.stats.dropped += env.dropped;
        self.stats.emitted += out.len() as u64;
        if let Some(tel) = &self.telemetry {
            // The enabled check also guards the `buffered` tree walk, which
            // is not free on deep expressions.
            if tel.is_enabled() {
                let label = &self.label;
                tel.observe_timer(Stage::DetectorTransition, occ.at, timer, || {
                    label.to_string()
                });
                tel.observe(
                    Stage::DetectorDepth,
                    occ.at,
                    self.root.buffered() as u64,
                    || label.to_string(),
                );
            }
        }
        out
    }

    /// Deliver one timer fire to the `at`/`every` leaf at `idx` (its
    /// position in [`EventExpr::timer_specs`] leaf order). `due` is the
    /// instant the timer came due — windows advance to it — and `seq`
    /// the fresh logical timestamp the engine assigned to the fire, so
    /// the tick is totally ordered against event occurrences.
    pub fn process_timer(
        &mut self,
        registry: &ClassRegistry,
        idx: usize,
        due: u64,
        seq: u64,
    ) -> Vec<CompositeOccurrence> {
        self.stats.offered += 1;
        let mut env = Env {
            registry,
            sym: None,
            context: self.context,
            caps: self.caps,
            now: due,
            matched: false,
            dropped: 0,
            journal: self.journal.as_mut(),
        };
        let out = self.root.process(&Stim::Timer { idx, seq }, &mut env);
        if env.matched {
            self.stats.matched += 1;
        }
        self.stats.dropped += env.dropped;
        self.stats.emitted += out.len() as u64;
        out
    }

    /// Export the detector's partial-detection state for a checkpoint: a
    /// pre-order walk of every node's buffers, slots and windows.
    pub fn export_state(&self) -> DetectorState {
        let mut nodes = Vec::new();
        self.root.export_state(&mut nodes);
        DetectorState { nodes }
    }

    /// Restore state exported by [`export_state`](Self::export_state).
    /// Returns `false` (leaving the detector untouched) when the state's
    /// shape does not match this detector's expression — e.g. the rule
    /// was redefined between checkpoint and recovery.
    pub fn import_state(&mut self, state: &DetectorState) -> bool {
        let mut trial = self.root.clone();
        let mut it = state.nodes.iter();
        if trial.import_state(&mut it) && it.next().is_none() {
            self.root = trial;
            true
        } else {
            false
        }
    }

    /// Start journaling state mutations for the enclosing transaction.
    pub fn begin_txn(&mut self) {
        debug_assert!(self.journal.is_none(), "nested detector transactions");
        self.journal = Some(Vec::new());
    }

    /// The transaction committed: discard the journal.
    pub fn commit_txn(&mut self) {
        self.journal = None;
    }

    /// The transaction aborted: replay the journal in reverse, restoring
    /// exactly the pre-transaction detection state.
    pub fn abort_txn(&mut self) {
        let Some(journal) = self.journal.take() else {
            return;
        };
        for entry in journal.into_iter().rev() {
            match entry {
                JournalEntry::Full(node) => {
                    self.root = *node;
                }
                JournalEntry::Node { node, undo } => {
                    self.root.apply_undo(node, undo);
                }
            }
        }
    }

    /// Is a journal currently active?
    pub fn in_txn(&self) -> bool {
        self.journal.is_some()
    }

    /// Total occurrences currently buffered across all operator nodes —
    /// the detector-state metric of experiment E12.
    pub fn buffered(&self) -> usize {
        self.root.buffered()
    }

    /// Counters so far.
    pub fn stats(&self) -> DetectorStats {
        self.stats
    }

    /// Discard all partial state (e.g. when a rule is disabled; the paper
    /// says a disabled rule no longer records propagated events). When a
    /// journal is active the pre-reset state is recorded so an abort can
    /// restore it.
    pub fn reset(&mut self) {
        if let Some(j) = self.journal.as_mut() {
            j.push(JournalEntry::Full(Box::new(self.root.clone())));
        }
        self.root.reset();
    }

    /// Discard partial state involving occurrences newer than `ts` —
    /// a backstop for abort paths that could not be journaled (e.g. a
    /// rule created inside the aborted transaction). Not journaled.
    pub fn prune_newer_than(&mut self, ts: u64) {
        self.root.prune_newer_than(ts);
    }

    /// The parameter context the detector was compiled with.
    pub fn context(&self) -> ParamContext {
        self.context
    }
}

/// Serializable partial-detection state: one entry per node, in
/// pre-order. Persisted into the checkpoint snapshot so long-lived
/// sequence/conjunction/window progress survives a restart.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DetectorState {
    nodes: Vec<NodeState>,
}

impl DetectorState {
    /// `true` when no node holds any partial state (nothing worth
    /// persisting).
    pub fn is_trivial(&self) -> bool {
        self.nodes.iter().all(|n| match n {
            NodeState::Stateless => true,
            NodeState::Bufs(bufs) => bufs.iter().all(Vec::is_empty),
            NodeState::Latest(slots) => slots.iter().all(Option::is_none),
            NodeState::Open { open, violated } => open.is_none() && !violated,
            NodeState::Windowed { items, latched, .. } => items.is_empty() && !latched,
            NodeState::Marks(samples) => samples.is_empty(),
        })
    }
}

/// One node's exported state (shape-checked on import).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
enum NodeState {
    /// Primitive / timer leaves, `Or`, `Within`.
    Stateless,
    /// `And` (two sides), `Seq` / `Times` / `Plus` (one).
    Bufs(Vec<Vec<CompositeOccurrence>>),
    /// `Any`'s latest-per-child slots.
    Latest(Vec<Option<CompositeOccurrence>>),
    /// `Not` / `Aperiodic` window slots.
    Open {
        open: Option<CompositeOccurrence>,
        violated: bool,
    },
    /// `Aggregate`'s instant-stamped window buffer.
    Windowed {
        items: Vec<(u64, CompositeOccurrence)>,
        epoch: u64,
        latched: bool,
    },
    /// `Window`'s instant→seq watermark samples.
    Marks(Vec<(u64, u64)>),
}

#[derive(Debug, Clone)]
enum Node {
    Primitive {
        class: ClassId,
        method: String,
        modifier: EventModifier,
        /// Sorted interned symbols this leaf consumes (the spec closed
        /// over subclasses). Occurrences carrying a symbol match by
        /// binary search; symbol-less occurrences fall back to the
        /// string compare.
        alphabet: Vec<EventSym>,
    },
    And {
        id: u32,
        left: Box<Node>,
        right: Box<Node>,
        lbuf: Buffer,
        rbuf: Buffer,
    },
    Or {
        left: Box<Node>,
        right: Box<Node>,
    },
    Seq {
        id: u32,
        left: Box<Node>,
        right: Box<Node>,
        lbuf: Buffer,
    },
    Any {
        id: u32,
        m: usize,
        children: Vec<Node>,
        latest: Vec<Option<CompositeOccurrence>>,
    },
    Not {
        id: u32,
        watch: Box<Node>,
        start: Box<Node>,
        end: Box<Node>,
        open: Option<CompositeOccurrence>,
        violated: bool,
    },
    Aperiodic {
        id: u32,
        start: Box<Node>,
        each: Box<Node>,
        end: Box<Node>,
        open: Option<CompositeOccurrence>,
    },
    Times {
        id: u32,
        n: usize,
        child: Box<Node>,
        buf: Buffer,
    },
    Plus {
        id: u32,
        child: Box<Node>,
        delta: u64,
        pending: Buffer,
    },
    /// Timer leaves: stateless, matched by timer-fire stimuli only.
    At {
        timer_idx: usize,
    },
    Every {
        timer_idx: usize,
    },
    /// Deadline scope: filters operand emissions by interval span and
    /// evicts operand state too old to ever complete in time.
    Within {
        child: Box<Node>,
        deadline: u64,
    },
    /// Window scope: evicts operand state that left the window on the
    /// instant axis, so e.g. `Seq(a, b)` inside a window only pairs
    /// constituents from the same window.
    Window {
        child: Box<Node>,
        size: u64,
        tumbling: bool,
        marks: Watermarks,
    },
    /// Windowed aggregation with a latched threshold.
    Aggregate {
        id: u32,
        child: Box<Node>,
        size: u64,
        tumbling: bool,
        agg: AggFn,
        threshold: i64,
        wbuf: WindowBuf,
        epoch: u64,
        latched: bool,
    },
}

impl Node {
    fn compile(
        expr: &EventExpr,
        registry: &ClassRegistry,
        next_id: &mut u32,
        next_timer: &mut usize,
    ) -> Result<Node> {
        let mut fresh = || {
            let id = *next_id;
            *next_id += 1;
            id
        };
        // Timer leaves take their delivery index in the same traversal
        // order `EventExpr::timer_specs` collects specs.
        let mut fresh_timer = || {
            let idx = *next_timer;
            *next_timer += 1;
            idx
        };
        Ok(match expr {
            EventExpr::Primitive(spec) => leaf::compile(spec, registry)?,
            EventExpr::And(a, b) => Node::And {
                id: fresh(),
                left: Box::new(Node::compile(a, registry, next_id, next_timer)?),
                right: Box::new(Node::compile(b, registry, next_id, next_timer)?),
                lbuf: Buffer::default(),
                rbuf: Buffer::default(),
            },
            EventExpr::Or(a, b) => Node::Or {
                left: Box::new(Node::compile(a, registry, next_id, next_timer)?),
                right: Box::new(Node::compile(b, registry, next_id, next_timer)?),
            },
            EventExpr::Seq(a, b) => Node::Seq {
                id: fresh(),
                left: Box::new(Node::compile(a, registry, next_id, next_timer)?),
                right: Box::new(Node::compile(b, registry, next_id, next_timer)?),
                lbuf: Buffer::default(),
            },
            EventExpr::Any { m, exprs } => Node::Any {
                id: fresh(),
                m: *m,
                latest: exprs.iter().map(|_| None).collect(),
                children: exprs
                    .iter()
                    .map(|e| Node::compile(e, registry, next_id, next_timer))
                    .collect::<Result<_>>()?,
            },
            EventExpr::Not { watch, start, end } => Node::Not {
                id: fresh(),
                watch: Box::new(Node::compile(watch, registry, next_id, next_timer)?),
                start: Box::new(Node::compile(start, registry, next_id, next_timer)?),
                end: Box::new(Node::compile(end, registry, next_id, next_timer)?),
                open: None,
                violated: false,
            },
            EventExpr::Aperiodic { start, each, end } => Node::Aperiodic {
                id: fresh(),
                start: Box::new(Node::compile(start, registry, next_id, next_timer)?),
                each: Box::new(Node::compile(each, registry, next_id, next_timer)?),
                end: Box::new(Node::compile(end, registry, next_id, next_timer)?),
                open: None,
            },
            EventExpr::Times { n, expr } => Node::Times {
                id: fresh(),
                n: (*n).max(1),
                child: Box::new(Node::compile(expr, registry, next_id, next_timer)?),
                buf: Buffer::default(),
            },
            EventExpr::Plus { expr, delta } => Node::Plus {
                id: fresh(),
                child: Box::new(Node::compile(expr, registry, next_id, next_timer)?),
                delta: *delta,
                pending: Buffer::default(),
            },
            EventExpr::At { .. } => Node::At {
                timer_idx: fresh_timer(),
            },
            EventExpr::Every { .. } => Node::Every {
                timer_idx: fresh_timer(),
            },
            EventExpr::Within { expr, deadline } => Node::Within {
                child: Box::new(Node::compile(expr, registry, next_id, next_timer)?),
                deadline: *deadline,
            },
            EventExpr::Window {
                expr,
                size,
                tumbling,
            } => Node::Window {
                child: Box::new(Node::compile(expr, registry, next_id, next_timer)?),
                size: (*size).max(1),
                tumbling: *tumbling,
                marks: Watermarks::default(),
            },
            EventExpr::Aggregate {
                expr,
                size,
                tumbling,
                agg,
                threshold,
            } => Node::Aggregate {
                id: fresh(),
                child: Box::new(Node::compile(expr, registry, next_id, next_timer)?),
                size: (*size).max(1),
                tumbling: *tumbling,
                agg: *agg,
                threshold: *threshold,
                wbuf: WindowBuf::default(),
                epoch: 0,
                latched: false,
            },
        })
    }

    fn process(&mut self, stim: &Stim<'_>, env: &mut Env<'_>) -> Vec<CompositeOccurrence> {
        match self {
            Node::Primitive {
                class,
                method,
                modifier,
                alphabet,
            } => match stim {
                Stim::Prim(occ) if leaf::matches(env, *class, method, *modifier, alphabet, occ) => {
                    env.matched = true;
                    vec![CompositeOccurrence::from_primitive((*occ).clone())]
                }
                _ => Vec::new(),
            },

            Node::At { timer_idx } | Node::Every { timer_idx } => match stim {
                Stim::Timer { idx, seq } if idx == timer_idx => {
                    env.matched = true;
                    vec![temporal::timer_occurrence(*seq)]
                }
                _ => Vec::new(),
            },

            Node::Or { left, right } => {
                let mut out = left.process(stim, env);
                out.extend(right.process(stim, env));
                out
            }

            Node::And {
                id,
                left,
                right,
                lbuf,
                rbuf,
            } => {
                let le = left.process(stim, env);
                let re = right.process(stim, env);
                pair_and(*id, le, re, lbuf, rbuf, env)
            }

            Node::Seq {
                id,
                left,
                right,
                lbuf,
            } => {
                let le = left.process(stim, env);
                let re = right.process(stim, env);
                pair_seq(*id, le, re, lbuf, env)
            }

            Node::Within { child, deadline } => {
                let deadline = *deadline;
                // Evict operand state that can no longer complete in
                // time — this is what bounds a never-completing
                // composite's memory.
                if let Some(cut) = temporal::within_cutoff(stim.seq(), deadline) {
                    child.evict_state(cut, true, env);
                }
                child
                    .process(stim, env)
                    .into_iter()
                    .filter(|o| temporal::within_span_ok(o, deadline))
                    .collect()
            }

            Node::Window {
                child,
                size,
                tumbling,
                marks,
            } => {
                marks.observe(env.now, stim.seq());
                if let Some(cut) = window::window_cutoff(marks, env.now, *size, *tumbling) {
                    child.evict_state(cut, false, env);
                }
                child.process(stim, env)
            }

            Node::Aggregate {
                id,
                child,
                size,
                tumbling,
                agg,
                threshold,
                wbuf,
                epoch,
                latched,
            } => {
                let arrivals = child.process(stim, env);
                window::step_aggregate(
                    *id, arrivals, env.now, *size, *tumbling, *agg, *threshold, wbuf, epoch,
                    latched, env,
                )
            }

            Node::Any {
                id,
                m,
                children,
                latest,
            } => {
                let id = *id;
                let mut completed = Vec::new();
                for (i, child) in children.iter_mut().enumerate() {
                    let es = child.process(stim, env);
                    if let Some(e) = es.into_iter().next_back() {
                        let prev = latest[i].replace(e);
                        let was_present = prev.is_some();
                        env.record(id, NodeUndo::SetLatest { i, prev });
                        if !was_present {
                            let present = latest.iter().filter(|l| l.is_some()).count();
                            if present >= *m {
                                let merged =
                                    CompositeOccurrence::merge_all(latest.iter().flatten());
                                for (j, l) in latest.iter_mut().enumerate() {
                                    let prev = l.take();
                                    if prev.is_some() {
                                        env.record(id, NodeUndo::SetLatest { i: j, prev });
                                    }
                                }
                                completed.push(merged);
                            }
                        }
                    }
                }
                completed
            }

            Node::Not {
                id,
                watch,
                start,
                end,
                open,
                violated,
            } => {
                let id = *id;
                // Deterministic intra-occurrence ordering: close windows
                // first, then record violations, then open new windows.
                let ee = end.process(stim, env);
                let mut out = Vec::new();
                if let Some(e) = ee.into_iter().next() {
                    let prev_open = open.take();
                    if let Some(s) = prev_open.clone() {
                        if !*violated {
                            out.push(CompositeOccurrence::merge(&s, &e));
                        }
                    }
                    env.record(id, NodeUndo::SetOpen { prev: prev_open });
                    if *violated {
                        env.record(id, NodeUndo::SetViolated { prev: true });
                        *violated = false;
                    }
                }
                if open.is_some() && !watch.process(stim, env).is_empty() && !*violated {
                    env.record(id, NodeUndo::SetViolated { prev: false });
                    *violated = true;
                }
                if let Some(s) = start.process(stim, env).into_iter().next_back() {
                    let prev = open.replace(s);
                    env.record(id, NodeUndo::SetOpen { prev });
                    if *violated {
                        env.record(id, NodeUndo::SetViolated { prev: true });
                        *violated = false;
                    }
                }
                out
            }

            Node::Aperiodic {
                id,
                start,
                each,
                end,
                open,
            } => {
                let id = *id;
                if !end.process(stim, env).is_empty() && open.is_some() {
                    let prev = open.take();
                    env.record(id, NodeUndo::SetOpen { prev });
                }
                let mut out = Vec::new();
                if let Some(s) = open.as_ref() {
                    for e in each.process(stim, env) {
                        out.push(CompositeOccurrence::merge(s, &e));
                    }
                } else {
                    // Still drive the child so its own state stays fresh.
                    let _ = each.process(stim, env);
                }
                if let Some(s) = start.process(stim, env).into_iter().next_back() {
                    let prev = open.replace(s);
                    env.record(id, NodeUndo::SetOpen { prev });
                }
                out
            }

            Node::Times { id, n, child, buf } => {
                let id = *id;
                let mut out = Vec::new();
                for e in child.process(stim, env) {
                    buf.push(id, 0, e, env);
                    if buf.len() >= *n {
                        let merged = CompositeOccurrence::merge_all(buf.items.iter());
                        buf.clear(id, 0, env);
                        out.push(merged);
                    }
                }
                out
            }

            Node::Plus {
                id,
                child,
                delta,
                pending,
            } => {
                let id = *id;
                // Deadlines are checked against the *current* stimulus's
                // timestamp first (lazy timer), then new bases enqueue.
                let at = stim.seq();
                let mut out = Vec::new();
                while pending
                    .items
                    .front()
                    .map(|b| b.end + *delta <= at)
                    .unwrap_or(false)
                {
                    let base = pending.pop_front(id, 0, env).expect("checked non-empty");
                    out.push(CompositeOccurrence {
                        constituents: base.constituents.clone(),
                        start: base.start,
                        end: at,
                    });
                }
                for e in child.process(stim, env) {
                    pending.push(id, 0, e, env);
                }
                out
            }
        }
    }

    /// Locate the stateful node `target` and apply one undo entry.
    /// Returns true when applied (search stops).
    fn apply_undo(&mut self, target: u32, undo: NodeUndo) -> bool {
        match self {
            Node::Primitive { .. } => false,
            Node::Or { left, right } => {
                // `undo` moves into whichever branch matches; try left
                // first, then right.
                match left.apply_undo(target, undo.clone()) {
                    true => true,
                    false => right.apply_undo(target, undo),
                }
            }
            Node::And {
                id,
                left,
                right,
                lbuf,
                rbuf,
            } => {
                if *id == target {
                    apply_buffer_undo(undo, lbuf, Some(rbuf));
                    true
                } else {
                    match left.apply_undo(target, undo.clone()) {
                        true => true,
                        false => right.apply_undo(target, undo),
                    }
                }
            }
            Node::Seq {
                id,
                left,
                right,
                lbuf,
            } => {
                if *id == target {
                    apply_buffer_undo(undo, lbuf, None);
                    true
                } else {
                    match left.apply_undo(target, undo.clone()) {
                        true => true,
                        false => right.apply_undo(target, undo),
                    }
                }
            }
            Node::Any {
                id,
                children,
                latest,
                ..
            } => {
                if *id == target {
                    if let NodeUndo::SetLatest { i, prev } = undo {
                        latest[i] = prev;
                    }
                    true
                } else {
                    children
                        .iter_mut()
                        .any(|c| c.apply_undo(target, undo.clone()))
                }
            }
            Node::Not {
                id,
                watch,
                start,
                end,
                open,
                violated,
            } => {
                if *id == target {
                    match undo {
                        NodeUndo::SetOpen { prev } => *open = prev,
                        NodeUndo::SetViolated { prev } => *violated = prev,
                        _ => {}
                    }
                    true
                } else {
                    watch.apply_undo(target, undo.clone())
                        || start.apply_undo(target, undo.clone())
                        || end.apply_undo(target, undo)
                }
            }
            Node::Aperiodic {
                id,
                start,
                each,
                end,
                open,
            } => {
                if *id == target {
                    if let NodeUndo::SetOpen { prev } = undo {
                        *open = prev;
                    }
                    true
                } else {
                    start.apply_undo(target, undo.clone())
                        || each.apply_undo(target, undo.clone())
                        || end.apply_undo(target, undo)
                }
            }
            Node::Times { id, child, buf, .. } => {
                if *id == target {
                    apply_buffer_undo(undo, buf, None);
                    true
                } else {
                    child.apply_undo(target, undo)
                }
            }
            Node::Plus {
                id, child, pending, ..
            } => {
                if *id == target {
                    apply_buffer_undo(undo, pending, None);
                    true
                } else {
                    child.apply_undo(target, undo)
                }
            }
            Node::At { .. } | Node::Every { .. } => false,
            Node::Within { child, .. } | Node::Window { child, .. } => {
                child.apply_undo(target, undo)
            }
            Node::Aggregate {
                id,
                child,
                wbuf,
                epoch,
                latched,
                ..
            } => {
                if *id == target {
                    match undo {
                        NodeUndo::PopWindowBack => {
                            wbuf.pop_back();
                        }
                        NodeUndo::RestoreWindow {
                            items,
                            epoch: e,
                            latched: l,
                        } => {
                            *wbuf = items;
                            *epoch = e;
                            *latched = l;
                        }
                        NodeUndo::RestoreWindowFront { items } => {
                            for e in items.into_iter().rev() {
                                wbuf.push_front(e);
                            }
                        }
                        NodeUndo::SetLatched { prev } => *latched = prev,
                        _ => {}
                    }
                    true
                } else {
                    child.apply_undo(target, undo)
                }
            }
        }
    }

    /// Evict operand state that has left an enclosing temporal scope:
    /// occurrences whose scope key — `start` for the `within` axis
    /// (`by_start`), `end` for the window axis — is at or before
    /// `cutoff` (sequence units). Journaled, so aborts restore evicted
    /// state like any other mutation.
    fn evict_state(&mut self, cutoff: u64, by_start: bool, env: &mut Env<'_>) {
        let key = |o: &CompositeOccurrence| if by_start { o.start } else { o.end };
        match self {
            Node::Primitive { .. } | Node::At { .. } | Node::Every { .. } => {}
            Node::Or { left, right } => {
                left.evict_state(cutoff, by_start, env);
                right.evict_state(cutoff, by_start, env);
            }
            Node::And {
                id,
                left,
                right,
                lbuf,
                rbuf,
            } => {
                left.evict_state(cutoff, by_start, env);
                right.evict_state(cutoff, by_start, env);
                evict_buffer(lbuf, *id, 0, cutoff, by_start, env);
                evict_buffer(rbuf, *id, 1, cutoff, by_start, env);
            }
            Node::Seq {
                id,
                left,
                right,
                lbuf,
            } => {
                left.evict_state(cutoff, by_start, env);
                right.evict_state(cutoff, by_start, env);
                evict_buffer(lbuf, *id, 0, cutoff, by_start, env);
            }
            Node::Any {
                id,
                children,
                latest,
                ..
            } => {
                let id = *id;
                for c in children.iter_mut() {
                    c.evict_state(cutoff, by_start, env);
                }
                for (i, l) in latest.iter_mut().enumerate() {
                    if l.as_ref().map(|o| key(o) <= cutoff).unwrap_or(false) {
                        let prev = l.take();
                        env.record(id, NodeUndo::SetLatest { i, prev });
                    }
                }
            }
            Node::Not {
                id,
                watch,
                start,
                end,
                open,
                violated,
            } => {
                let id = *id;
                watch.evict_state(cutoff, by_start, env);
                start.evict_state(cutoff, by_start, env);
                end.evict_state(cutoff, by_start, env);
                if open.as_ref().map(|o| key(o) <= cutoff).unwrap_or(false) {
                    let prev = open.take();
                    env.record(id, NodeUndo::SetOpen { prev });
                    if *violated {
                        env.record(id, NodeUndo::SetViolated { prev: true });
                        *violated = false;
                    }
                }
            }
            Node::Aperiodic {
                id,
                start,
                each,
                end,
                open,
            } => {
                let id = *id;
                start.evict_state(cutoff, by_start, env);
                each.evict_state(cutoff, by_start, env);
                end.evict_state(cutoff, by_start, env);
                if open.as_ref().map(|o| key(o) <= cutoff).unwrap_or(false) {
                    let prev = open.take();
                    env.record(id, NodeUndo::SetOpen { prev });
                }
            }
            Node::Times { id, child, buf, .. } => {
                child.evict_state(cutoff, by_start, env);
                evict_buffer(buf, *id, 0, cutoff, by_start, env);
            }
            Node::Plus {
                id, child, pending, ..
            } => {
                child.evict_state(cutoff, by_start, env);
                evict_buffer(pending, *id, 0, cutoff, by_start, env);
            }
            Node::Within { child, .. } | Node::Window { child, .. } => {
                child.evict_state(cutoff, by_start, env);
            }
            Node::Aggregate {
                id,
                child,
                wbuf,
                epoch,
                latched,
                ..
            } => {
                child.evict_state(cutoff, by_start, env);
                if wbuf.iter().any(|(_, o)| key(o) <= cutoff) {
                    if env.journaling() {
                        env.record(
                            *id,
                            NodeUndo::RestoreWindow {
                                items: wbuf.clone(),
                                epoch: *epoch,
                                latched: *latched,
                            },
                        );
                    }
                    wbuf.retain(|(_, o)| key(o) > cutoff);
                }
            }
        }
    }

    fn buffered(&self) -> usize {
        match self {
            Node::Primitive { .. } => 0,
            Node::Or { left, right } => left.buffered() + right.buffered(),
            Node::And {
                left,
                right,
                lbuf,
                rbuf,
                ..
            } => left.buffered() + right.buffered() + lbuf.len() + rbuf.len(),
            Node::Seq {
                left, right, lbuf, ..
            } => left.buffered() + right.buffered() + lbuf.len(),
            Node::Any {
                children, latest, ..
            } => {
                children.iter().map(Node::buffered).sum::<usize>()
                    + latest.iter().filter(|l| l.is_some()).count()
            }
            Node::Not {
                watch,
                start,
                end,
                open,
                ..
            } => watch.buffered() + start.buffered() + end.buffered() + usize::from(open.is_some()),
            Node::Aperiodic {
                start,
                each,
                end,
                open,
                ..
            } => start.buffered() + each.buffered() + end.buffered() + usize::from(open.is_some()),
            Node::Times { child, buf, .. } => child.buffered() + buf.len(),
            Node::Plus { child, pending, .. } => child.buffered() + pending.len(),
            Node::At { .. } | Node::Every { .. } => 0,
            Node::Within { child, .. } | Node::Window { child, .. } => child.buffered(),
            Node::Aggregate { child, wbuf, .. } => child.buffered() + wbuf.len(),
        }
    }

    fn prune_newer_than(&mut self, ts: u64) {
        match self {
            Node::Primitive { .. } => {}
            Node::Or { left, right } => {
                left.prune_newer_than(ts);
                right.prune_newer_than(ts);
            }
            Node::And {
                left,
                right,
                lbuf,
                rbuf,
                ..
            } => {
                left.prune_newer_than(ts);
                right.prune_newer_than(ts);
                lbuf.items.retain(|o| o.end <= ts);
                rbuf.items.retain(|o| o.end <= ts);
            }
            Node::Seq {
                left, right, lbuf, ..
            } => {
                left.prune_newer_than(ts);
                right.prune_newer_than(ts);
                lbuf.items.retain(|o| o.end <= ts);
            }
            Node::Any {
                children, latest, ..
            } => {
                for c in children {
                    c.prune_newer_than(ts);
                }
                for l in latest {
                    if l.as_ref().map(|o| o.end > ts).unwrap_or(false) {
                        *l = None;
                    }
                }
            }
            Node::Not {
                watch,
                start,
                end,
                open,
                violated,
                ..
            } => {
                watch.prune_newer_than(ts);
                start.prune_newer_than(ts);
                end.prune_newer_than(ts);
                if open.as_ref().map(|o| o.end > ts).unwrap_or(false) {
                    *open = None;
                    *violated = false;
                }
            }
            Node::Aperiodic {
                start,
                each,
                end,
                open,
                ..
            } => {
                start.prune_newer_than(ts);
                each.prune_newer_than(ts);
                end.prune_newer_than(ts);
                if open.as_ref().map(|o| o.end > ts).unwrap_or(false) {
                    *open = None;
                }
            }
            Node::Times { child, buf, .. } => {
                child.prune_newer_than(ts);
                buf.items.retain(|o| o.end <= ts);
            }
            Node::Plus { child, pending, .. } => {
                child.prune_newer_than(ts);
                pending.items.retain(|o| o.end <= ts);
            }
            Node::At { .. } | Node::Every { .. } => {}
            Node::Within { child, .. } | Node::Window { child, .. } => {
                child.prune_newer_than(ts);
            }
            Node::Aggregate { child, wbuf, .. } => {
                child.prune_newer_than(ts);
                wbuf.retain(|(_, o)| o.end <= ts);
            }
        }
    }

    fn reset(&mut self) {
        match self {
            Node::Primitive { .. } => {}
            Node::Or { left, right } => {
                left.reset();
                right.reset();
            }
            Node::And {
                left,
                right,
                lbuf,
                rbuf,
                ..
            } => {
                left.reset();
                right.reset();
                lbuf.items.clear();
                rbuf.items.clear();
            }
            Node::Seq {
                left, right, lbuf, ..
            } => {
                left.reset();
                right.reset();
                lbuf.items.clear();
            }
            Node::Any {
                children, latest, ..
            } => {
                for c in children {
                    c.reset();
                }
                for l in latest {
                    *l = None;
                }
            }
            Node::Not {
                watch,
                start,
                end,
                open,
                violated,
                ..
            } => {
                watch.reset();
                start.reset();
                end.reset();
                *open = None;
                *violated = false;
            }
            Node::Aperiodic {
                start,
                each,
                end,
                open,
                ..
            } => {
                start.reset();
                each.reset();
                end.reset();
                *open = None;
            }
            Node::Times { child, buf, .. } => {
                child.reset();
                buf.items.clear();
            }
            Node::Plus { child, pending, .. } => {
                child.reset();
                pending.items.clear();
            }
            Node::At { .. } | Node::Every { .. } => {}
            Node::Within { child, .. } | Node::Window { child, .. } => {
                // Watermark samples are clock facts, not detection
                // state; they survive a reset.
                child.reset();
            }
            Node::Aggregate {
                child,
                wbuf,
                latched,
                ..
            } => {
                child.reset();
                wbuf.clear();
                *latched = false;
            }
        }
    }

    /// Recompute every leaf's symbol alphabet against a grown schema
    /// (classes defined after compile time may add subclass symbols).
    fn refresh_alphabets(&mut self, registry: &ClassRegistry) {
        match self {
            Node::Primitive {
                class,
                method,
                modifier,
                alphabet,
            } => {
                *alphabet = leaf::alphabet(registry, *class, method, *modifier);
            }
            Node::Or { left, right } => {
                left.refresh_alphabets(registry);
                right.refresh_alphabets(registry);
            }
            Node::And { left, right, .. } | Node::Seq { left, right, .. } => {
                left.refresh_alphabets(registry);
                right.refresh_alphabets(registry);
            }
            Node::Any { children, .. } => {
                for c in children {
                    c.refresh_alphabets(registry);
                }
            }
            Node::Not {
                watch, start, end, ..
            } => {
                watch.refresh_alphabets(registry);
                start.refresh_alphabets(registry);
                end.refresh_alphabets(registry);
            }
            Node::Aperiodic {
                start, each, end, ..
            } => {
                start.refresh_alphabets(registry);
                each.refresh_alphabets(registry);
                end.refresh_alphabets(registry);
            }
            Node::Times { child, .. } | Node::Plus { child, .. } => {
                child.refresh_alphabets(registry);
            }
            Node::At { .. } | Node::Every { .. } => {}
            Node::Within { child, .. }
            | Node::Window { child, .. }
            | Node::Aggregate { child, .. } => {
                child.refresh_alphabets(registry);
            }
        }
    }

    /// Pre-order export of every node's state (checkpoint persistence).
    fn export_state(&self, out: &mut Vec<NodeState>) {
        match self {
            Node::Primitive { .. } | Node::At { .. } | Node::Every { .. } => {
                out.push(NodeState::Stateless);
            }
            Node::Or { left, right } => {
                out.push(NodeState::Stateless);
                left.export_state(out);
                right.export_state(out);
            }
            Node::And {
                left,
                right,
                lbuf,
                rbuf,
                ..
            } => {
                out.push(NodeState::Bufs(vec![
                    lbuf.items.iter().cloned().collect(),
                    rbuf.items.iter().cloned().collect(),
                ]));
                left.export_state(out);
                right.export_state(out);
            }
            Node::Seq {
                left, right, lbuf, ..
            } => {
                out.push(NodeState::Bufs(vec![lbuf.items.iter().cloned().collect()]));
                left.export_state(out);
                right.export_state(out);
            }
            Node::Any {
                children, latest, ..
            } => {
                out.push(NodeState::Latest(latest.clone()));
                for c in children {
                    c.export_state(out);
                }
            }
            Node::Not {
                watch,
                start,
                end,
                open,
                violated,
                ..
            } => {
                out.push(NodeState::Open {
                    open: open.clone(),
                    violated: *violated,
                });
                watch.export_state(out);
                start.export_state(out);
                end.export_state(out);
            }
            Node::Aperiodic {
                start,
                each,
                end,
                open,
                ..
            } => {
                out.push(NodeState::Open {
                    open: open.clone(),
                    violated: false,
                });
                start.export_state(out);
                each.export_state(out);
                end.export_state(out);
            }
            Node::Times { child, buf, .. } => {
                out.push(NodeState::Bufs(vec![buf.items.iter().cloned().collect()]));
                child.export_state(out);
            }
            Node::Plus { child, pending, .. } => {
                out.push(NodeState::Bufs(vec![pending
                    .items
                    .iter()
                    .cloned()
                    .collect()]));
                child.export_state(out);
            }
            Node::Within { child, .. } => {
                out.push(NodeState::Stateless);
                child.export_state(out);
            }
            Node::Window { child, marks, .. } => {
                out.push(NodeState::Marks(marks.export()));
                child.export_state(out);
            }
            Node::Aggregate {
                child,
                wbuf,
                epoch,
                latched,
                ..
            } => {
                out.push(NodeState::Windowed {
                    items: wbuf.iter().cloned().collect(),
                    epoch: *epoch,
                    latched: *latched,
                });
                child.export_state(out);
            }
        }
    }

    /// Pre-order import matching [`export_state`](Self::export_state);
    /// `false` on any shape mismatch.
    fn import_state(&mut self, it: &mut std::slice::Iter<'_, NodeState>) -> bool {
        let Some(st) = it.next() else {
            return false;
        };
        match (self, st) {
            (Node::Primitive { .. }, NodeState::Stateless)
            | (Node::At { .. }, NodeState::Stateless)
            | (Node::Every { .. }, NodeState::Stateless) => true,
            (Node::Or { left, right }, NodeState::Stateless) => {
                left.import_state(it) && right.import_state(it)
            }
            (
                Node::And {
                    left,
                    right,
                    lbuf,
                    rbuf,
                    ..
                },
                NodeState::Bufs(bufs),
            ) if bufs.len() == 2 => {
                lbuf.items = bufs[0].iter().cloned().collect();
                rbuf.items = bufs[1].iter().cloned().collect();
                left.import_state(it) && right.import_state(it)
            }
            (
                Node::Seq {
                    left, right, lbuf, ..
                },
                NodeState::Bufs(bufs),
            ) if bufs.len() == 1 => {
                lbuf.items = bufs[0].iter().cloned().collect();
                left.import_state(it) && right.import_state(it)
            }
            (
                Node::Any {
                    children, latest, ..
                },
                NodeState::Latest(slots),
            ) if slots.len() == latest.len() => {
                latest.clone_from(slots);
                children.iter_mut().all(|c| c.import_state(it))
            }
            (
                Node::Not {
                    watch,
                    start,
                    end,
                    open,
                    violated,
                    ..
                },
                NodeState::Open {
                    open: o,
                    violated: v,
                },
            ) => {
                *open = o.clone();
                *violated = *v;
                watch.import_state(it) && start.import_state(it) && end.import_state(it)
            }
            (
                Node::Aperiodic {
                    start,
                    each,
                    end,
                    open,
                    ..
                },
                NodeState::Open { open: o, .. },
            ) => {
                *open = o.clone();
                start.import_state(it) && each.import_state(it) && end.import_state(it)
            }
            (Node::Times { child, buf, .. }, NodeState::Bufs(bufs)) if bufs.len() == 1 => {
                buf.items = bufs[0].iter().cloned().collect();
                child.import_state(it)
            }
            (Node::Plus { child, pending, .. }, NodeState::Bufs(bufs)) if bufs.len() == 1 => {
                pending.items = bufs[0].iter().cloned().collect();
                child.import_state(it)
            }
            (Node::Within { child, .. }, NodeState::Stateless) => child.import_state(it),
            (Node::Window { child, marks, .. }, NodeState::Marks(samples)) => {
                *marks = Watermarks::import(samples.clone());
                child.import_state(it)
            }
            (
                Node::Aggregate {
                    child,
                    wbuf,
                    epoch,
                    latched,
                    ..
                },
                NodeState::Windowed {
                    items,
                    epoch: e,
                    latched: l,
                },
            ) => {
                *wbuf = items.iter().cloned().collect();
                *epoch = *e;
                *latched = *l;
                child.import_state(it)
            }
            _ => false,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::PrimitiveEventSpec as P;
    use sentinel_object::{ClassDecl, Oid, Value};
    use std::sync::Arc;

    /// Schema with two reactive classes used throughout.
    fn registry() -> ClassRegistry {
        let mut reg = ClassRegistry::new();
        reg.define(ClassDecl::reactive("Stock").method("SetPrice", &[]))
            .unwrap();
        reg.define(ClassDecl::reactive("FinancialInfo").method("SetValue", &[]))
            .unwrap();
        reg.define(ClassDecl::reactive("Growth").parent("Stock"))
            .unwrap();
        reg
    }

    fn occ(reg: &ClassRegistry, at: u64, class: &str, method: &str) -> PrimitiveOccurrence {
        let cid = reg.id_of(class).unwrap();
        PrimitiveOccurrence {
            at,
            oid: Oid(at),
            class: cid,
            owner: cid,
            method: method.into(),
            modifier: EventModifier::End,
            params: Arc::from(vec![Value::Int(at as i64)]),
        }
    }

    fn stock(m: &str) -> EventExpr {
        EventExpr::primitive(P::end("Stock", m))
    }
    fn fininfo(m: &str) -> EventExpr {
        EventExpr::primitive(P::end("FinancialInfo", m))
    }

    #[test]
    fn primitive_matches_class_method_modifier() {
        let reg = registry();
        let mut d = DetectorInstance::compile_default(&stock("SetPrice"), &reg).unwrap();
        assert_eq!(d.process(&reg, &occ(&reg, 1, "Stock", "SetPrice")).len(), 1);
        // Wrong method.
        assert!(d.process(&reg, &occ(&reg, 2, "Stock", "Other")).is_empty());
        // Wrong class.
        assert!(d
            .process(&reg, &occ(&reg, 3, "FinancialInfo", "SetPrice"))
            .is_empty());
        // Wrong modifier.
        let mut begin_occ = occ(&reg, 4, "Stock", "SetPrice");
        begin_occ.modifier = EventModifier::Begin;
        assert!(d.process(&reg, &begin_occ).is_empty());
        let s = d.stats();
        assert_eq!(s.offered, 4);
        assert_eq!(s.matched, 1);
        assert_eq!(s.emitted, 1);
    }

    #[test]
    fn primitive_matches_subclass_instances() {
        let reg = registry();
        let mut d = DetectorInstance::compile_default(&stock("SetPrice"), &reg).unwrap();
        // Growth is a subclass of Stock: its invocations match.
        assert_eq!(
            d.process(&reg, &occ(&reg, 1, "Growth", "SetPrice")).len(),
            1
        );
    }

    #[test]
    fn subclass_defined_after_compile_still_matches() {
        // The leaf alphabet is computed at compile time; defining a new
        // subclass afterwards must refresh it (lazily, keyed on registry
        // length) so the subclass's fresh symbols match.
        let mut reg = registry();
        let mut d = DetectorInstance::compile_default(&stock("SetPrice"), &reg).unwrap();
        assert_eq!(d.process(&reg, &occ(&reg, 1, "Stock", "SetPrice")).len(), 1);
        reg.define(ClassDecl::reactive("Late").parent("Stock"))
            .unwrap();
        assert_eq!(d.process(&reg, &occ(&reg, 2, "Late", "SetPrice")).len(), 1);
        // And the pre-resolved entry point agrees.
        let o = occ(&reg, 3, "Late", "SetPrice");
        let sym = o.sym(&reg);
        assert!(sym.is_some());
        assert_eq!(d.process_resolved(&reg, &o, sym).len(), 1);
    }

    #[test]
    fn compile_rejects_unknown_class() {
        let reg = registry();
        let err =
            DetectorInstance::compile_default(&EventExpr::primitive(P::end("Nope", "m")), &reg)
                .err()
                .unwrap();
        assert!(matches!(err, sentinel_object::ObjectError::UnknownClass(_)));
    }

    #[test]
    fn conjunction_detects_in_any_order() {
        let reg = registry();
        let expr = stock("SetPrice").and(fininfo("SetValue"));
        let mut d = DetectorInstance::compile_default(&expr, &reg).unwrap();
        assert!(d
            .process(&reg, &occ(&reg, 1, "Stock", "SetPrice"))
            .is_empty());
        let got = d.process(&reg, &occ(&reg, 2, "FinancialInfo", "SetValue"));
        assert_eq!(got.len(), 1);
        assert_eq!(got[0].start, 1);
        assert_eq!(got[0].end, 2);
        // Reverse order also detects.
        let mut d = DetectorInstance::compile_default(&expr, &reg).unwrap();
        assert!(d
            .process(&reg, &occ(&reg, 3, "FinancialInfo", "SetValue"))
            .is_empty());
        assert_eq!(d.process(&reg, &occ(&reg, 4, "Stock", "SetPrice")).len(), 1);
    }

    #[test]
    fn conjunction_unrestricted_all_combinations() {
        let reg = registry();
        let expr = stock("SetPrice").and(fininfo("SetValue"));
        let mut d = DetectorInstance::compile_default(&expr, &reg).unwrap();
        d.process(&reg, &occ(&reg, 1, "Stock", "SetPrice"));
        d.process(&reg, &occ(&reg, 2, "Stock", "SetPrice"));
        // Two buffered lefts: one right pairs with both.
        let got = d.process(&reg, &occ(&reg, 3, "FinancialInfo", "SetValue"));
        assert_eq!(got.len(), 2);
        // Nothing is consumed: another right pairs with both lefts again.
        let got = d.process(&reg, &occ(&reg, 4, "FinancialInfo", "SetValue"));
        assert_eq!(got.len(), 2);
        assert_eq!(d.buffered(), 4);
    }

    #[test]
    fn disjunction_forwards_both_sides() {
        let reg = registry();
        let expr = stock("SetPrice").or(fininfo("SetValue"));
        let mut d = DetectorInstance::compile_default(&expr, &reg).unwrap();
        assert_eq!(d.process(&reg, &occ(&reg, 1, "Stock", "SetPrice")).len(), 1);
        assert_eq!(
            d.process(&reg, &occ(&reg, 2, "FinancialInfo", "SetValue"))
                .len(),
            1
        );
        assert!(d
            .process(&reg, &occ(&reg, 3, "Stock", "Nothing"))
            .is_empty());
        assert_eq!(d.buffered(), 0, "disjunction is stateless");
    }

    #[test]
    fn sequence_requires_order() {
        let reg = registry();
        let expr = stock("SetPrice").then(fininfo("SetValue"));
        let mut d = DetectorInstance::compile_default(&expr, &reg).unwrap();
        // Right before left: no detection, right is discarded.
        assert!(d
            .process(&reg, &occ(&reg, 1, "FinancialInfo", "SetValue"))
            .is_empty());
        assert!(d
            .process(&reg, &occ(&reg, 2, "Stock", "SetPrice"))
            .is_empty());
        let got = d.process(&reg, &occ(&reg, 3, "FinancialInfo", "SetValue"));
        assert_eq!(got.len(), 1);
        assert_eq!((got[0].start, got[0].end), (2, 3));
    }

    #[test]
    fn nested_composites_propagate() {
        // (a ; b) && c — paper: "E1 and E2 may potentially be composite".
        let reg = registry();
        let expr = stock("a").then(stock("b")).and(fininfo("c"));
        let mut d = DetectorInstance::compile_default(&expr, &reg).unwrap();
        d.process(&reg, &occ(&reg, 1, "Stock", "a"));
        d.process(&reg, &occ(&reg, 2, "FinancialInfo", "c"));
        // Seq completes now, pairing with buffered c.
        let got = d.process(&reg, &occ(&reg, 3, "Stock", "b"));
        assert_eq!(got.len(), 1);
        assert_eq!(got[0].constituents.len(), 3);
        assert_eq!((got[0].start, got[0].end), (1, 3));
    }

    #[test]
    fn same_primitive_on_both_sides_of_and() {
        // And(e, e): one occurrence matches both children and pairs with
        // itself exactly once.
        let reg = registry();
        let expr = stock("SetPrice").and(stock("SetPrice"));
        let mut d = DetectorInstance::compile_default(&expr, &reg).unwrap();
        let got = d.process(&reg, &occ(&reg, 1, "Stock", "SetPrice"));
        assert_eq!(got.len(), 1);
        assert_eq!(got[0].constituents.len(), 2);
    }

    #[test]
    fn same_primitive_on_both_sides_of_seq_never_self_pairs() {
        // Seq(e, e): an occurrence is not strictly after itself.
        let reg = registry();
        let expr = stock("SetPrice").then(stock("SetPrice"));
        let mut d = DetectorInstance::compile_default(&expr, &reg).unwrap();
        assert!(d
            .process(&reg, &occ(&reg, 1, "Stock", "SetPrice"))
            .is_empty());
        // Second occurrence pairs with the first.
        assert_eq!(d.process(&reg, &occ(&reg, 2, "Stock", "SetPrice")).len(), 1);
    }

    #[test]
    fn recent_context_keeps_latest_initiator() {
        let reg = registry();
        let expr = stock("SetPrice").and(fininfo("SetValue"));
        let mut d =
            DetectorInstance::compile(&expr, &reg, ParamContext::Recent, DetectorCaps::default())
                .unwrap();
        d.process(&reg, &occ(&reg, 1, "Stock", "SetPrice"));
        d.process(&reg, &occ(&reg, 2, "Stock", "SetPrice")); // replaces t=1
        let got = d.process(&reg, &occ(&reg, 3, "FinancialInfo", "SetValue"));
        assert_eq!(got.len(), 1);
        assert_eq!(got[0].start, 2, "most recent left wins");
        // Initiator retained: another terminator pairs again.
        let got = d.process(&reg, &occ(&reg, 4, "FinancialInfo", "SetValue"));
        assert_eq!(got.len(), 1);
        assert!(d.buffered() <= 1, "recent context state is bounded");
    }

    #[test]
    fn chronicle_context_pairs_fifo_and_consumes() {
        let reg = registry();
        let expr = stock("SetPrice").and(fininfo("SetValue"));
        let mut d = DetectorInstance::compile(
            &expr,
            &reg,
            ParamContext::Chronicle,
            DetectorCaps::default(),
        )
        .unwrap();
        d.process(&reg, &occ(&reg, 1, "Stock", "SetPrice"));
        d.process(&reg, &occ(&reg, 2, "Stock", "SetPrice"));
        let got = d.process(&reg, &occ(&reg, 3, "FinancialInfo", "SetValue"));
        assert_eq!(got.len(), 1);
        assert_eq!(got[0].start, 1, "oldest left pairs first");
        let got = d.process(&reg, &occ(&reg, 4, "FinancialInfo", "SetValue"));
        assert_eq!(got.len(), 1);
        assert_eq!(got[0].start, 2);
        // Both lefts consumed.
        let got = d.process(&reg, &occ(&reg, 5, "FinancialInfo", "SetValue"));
        assert!(got.is_empty());
    }

    #[test]
    fn cumulative_context_flushes_everything_once() {
        let reg = registry();
        let expr = stock("SetPrice").and(fininfo("SetValue"));
        let mut d = DetectorInstance::compile(
            &expr,
            &reg,
            ParamContext::Cumulative,
            DetectorCaps::default(),
        )
        .unwrap();
        d.process(&reg, &occ(&reg, 1, "Stock", "SetPrice"));
        d.process(&reg, &occ(&reg, 2, "Stock", "SetPrice"));
        let got = d.process(&reg, &occ(&reg, 3, "FinancialInfo", "SetValue"));
        assert_eq!(got.len(), 1);
        assert_eq!(got[0].constituents.len(), 3, "all occurrences flushed");
        assert_eq!(d.buffered(), 0);
    }

    #[test]
    fn any_two_of_three() {
        let reg = registry();
        let expr = EventExpr::any(2, vec![stock("a"), stock("b"), stock("c")]);
        let mut d = DetectorInstance::compile_default(&expr, &reg).unwrap();
        assert!(d.process(&reg, &occ(&reg, 1, "Stock", "a")).is_empty());
        // Repeats of the same child do not complete.
        assert!(d.process(&reg, &occ(&reg, 2, "Stock", "a")).is_empty());
        let got = d.process(&reg, &occ(&reg, 3, "Stock", "c"));
        assert_eq!(got.len(), 1);
        assert_eq!(got[0].constituents.len(), 2);
        // State cleared after detection.
        assert!(d.process(&reg, &occ(&reg, 4, "Stock", "b")).is_empty());
    }

    #[test]
    fn not_between_window() {
        let reg = registry();
        let expr = EventExpr::not_between(stock("w"), stock("s"), stock("e"));
        let mut d = DetectorInstance::compile_default(&expr, &reg).unwrap();
        // s .. e with no w: detect.
        d.process(&reg, &occ(&reg, 1, "Stock", "s"));
        assert_eq!(d.process(&reg, &occ(&reg, 2, "Stock", "e")).len(), 1);
        // s .. w .. e: suppressed.
        d.process(&reg, &occ(&reg, 3, "Stock", "s"));
        d.process(&reg, &occ(&reg, 4, "Stock", "w"));
        assert!(d.process(&reg, &occ(&reg, 5, "Stock", "e")).is_empty());
        // e without open window: nothing.
        assert!(d.process(&reg, &occ(&reg, 6, "Stock", "e")).is_empty());
    }

    #[test]
    fn aperiodic_emits_each_inside_window() {
        let reg = registry();
        let expr = EventExpr::aperiodic(stock("s"), stock("m"), stock("e"));
        let mut d = DetectorInstance::compile_default(&expr, &reg).unwrap();
        assert!(d.process(&reg, &occ(&reg, 1, "Stock", "m")).is_empty());
        d.process(&reg, &occ(&reg, 2, "Stock", "s"));
        assert_eq!(d.process(&reg, &occ(&reg, 3, "Stock", "m")).len(), 1);
        assert_eq!(d.process(&reg, &occ(&reg, 4, "Stock", "m")).len(), 1);
        d.process(&reg, &occ(&reg, 5, "Stock", "e"));
        assert!(d.process(&reg, &occ(&reg, 6, "Stock", "m")).is_empty());
    }

    #[test]
    fn caps_drop_oldest_and_count() {
        let reg = registry();
        let expr = stock("SetPrice").and(fininfo("SetValue"));
        let mut d = DetectorInstance::compile(
            &expr,
            &reg,
            ParamContext::Unrestricted,
            DetectorCaps {
                max_buffered_per_node: 2,
            },
        )
        .unwrap();
        for t in 1..=5 {
            d.process(&reg, &occ(&reg, t, "Stock", "SetPrice"));
        }
        assert_eq!(d.buffered(), 2);
        assert_eq!(d.stats().dropped, 3);
        // Only the two newest survive to pair.
        let got = d.process(&reg, &occ(&reg, 6, "FinancialInfo", "SetValue"));
        assert_eq!(got.len(), 2);
        assert_eq!(got.iter().map(|g| g.start).min(), Some(4));
    }

    #[test]
    fn reset_clears_partial_state() {
        let reg = registry();
        let expr = stock("SetPrice").and(fininfo("SetValue"));
        let mut d = DetectorInstance::compile_default(&expr, &reg).unwrap();
        d.process(&reg, &occ(&reg, 1, "Stock", "SetPrice"));
        assert_eq!(d.buffered(), 1);
        d.reset();
        assert_eq!(d.buffered(), 0);
        assert!(d
            .process(&reg, &occ(&reg, 2, "FinancialInfo", "SetValue"))
            .is_empty());
    }

    // -----------------------------------------------------------------
    // Journal (transactional detection state) tests
    // -----------------------------------------------------------------

    /// Drive the same stream through a journaled detector (which then
    /// aborts) and assert its state equals the pre-transaction clone.
    fn assert_abort_restores(
        expr: &EventExpr,
        ctx: ParamContext,
        pre: &[PrimitiveOccurrence],
        during: &[PrimitiveOccurrence],
        reg: &ClassRegistry,
    ) {
        let mut d = DetectorInstance::compile(expr, reg, ctx, DetectorCaps::default()).unwrap();
        for o in pre {
            d.process(reg, o);
        }
        let snapshot = d.clone();
        d.begin_txn();
        for o in during {
            d.process(reg, o);
        }
        d.abort_txn();
        // Equality via behaviour: same buffered count and identical
        // emissions for a common probe suffix.
        assert_eq!(d.buffered(), snapshot.buffered(), "buffered after abort");
        let mut d2 = snapshot;
        let probe: Vec<PrimitiveOccurrence> = (1000..1010)
            .map(|t| occ(reg, t, "Stock", "SetPrice"))
            .chain((1010..1020).map(|t| occ(reg, t, "FinancialInfo", "SetValue")))
            .collect();
        for o in &probe {
            assert_eq!(
                d.process(reg, o),
                d2.process(reg, o),
                "behavioural divergence after abort"
            );
        }
    }

    #[test]
    fn abort_restores_state_across_contexts() {
        let reg = registry();
        let expr = stock("SetPrice").and(fininfo("SetValue"));
        let pre: Vec<_> = (1..6).map(|t| occ(&reg, t, "Stock", "SetPrice")).collect();
        let during: Vec<_> = vec![
            occ(&reg, 10, "FinancialInfo", "SetValue"), // consumes under chronicle
            occ(&reg, 11, "Stock", "SetPrice"),
            occ(&reg, 12, "FinancialInfo", "SetValue"),
        ];
        for ctx in ParamContext::ALL {
            assert_abort_restores(&expr, ctx, &pre, &during, &reg);
        }
    }

    #[test]
    fn abort_restores_seq_and_extensions() {
        let reg = registry();
        let pre: Vec<_> = (1..4).map(|t| occ(&reg, t, "Stock", "SetPrice")).collect();
        let during: Vec<_> = vec![
            occ(&reg, 10, "FinancialInfo", "SetValue"),
            occ(&reg, 11, "Stock", "SetPrice"),
        ];
        let seq = stock("SetPrice").then(fininfo("SetValue"));
        for ctx in ParamContext::ALL {
            assert_abort_restores(&seq, ctx, &pre, &during, &reg);
        }
        // Any / Not / Aperiodic use window state.
        let any = EventExpr::any(2, vec![stock("SetPrice"), fininfo("SetValue"), stock("x")]);
        assert_abort_restores(&any, ParamContext::Unrestricted, &pre, &during, &reg);
        let not = EventExpr::not_between(stock("w"), stock("SetPrice"), fininfo("SetValue"));
        assert_abort_restores(&not, ParamContext::Unrestricted, &pre, &during, &reg);
        let ap = EventExpr::aperiodic(stock("SetPrice"), fininfo("SetValue"), stock("e"));
        assert_abort_restores(&ap, ParamContext::Unrestricted, &pre, &during, &reg);
    }

    #[test]
    fn abort_restores_consumed_occurrences() {
        // The banking regression shape, at detector level: a chronicle
        // sequence whose left constituent is consumed inside the aborted
        // transaction must be re-armed.
        let reg = registry();
        let expr = stock("SetPrice").then(fininfo("SetValue"));
        let mut d = DetectorInstance::compile(
            &expr,
            &reg,
            ParamContext::Chronicle,
            DetectorCaps::default(),
        )
        .unwrap();
        d.process(&reg, &occ(&reg, 1, "Stock", "SetPrice"));
        d.begin_txn();
        let got = d.process(&reg, &occ(&reg, 2, "FinancialInfo", "SetValue"));
        assert_eq!(got.len(), 1, "detection inside the transaction");
        d.abort_txn();
        // The left is armed again: a new terminator pairs.
        let got = d.process(&reg, &occ(&reg, 3, "FinancialInfo", "SetValue"));
        assert_eq!(got.len(), 1, "consumed occurrence restored by abort");
    }

    #[test]
    fn commit_keeps_transaction_state() {
        let reg = registry();
        let expr = stock("SetPrice").and(fininfo("SetValue"));
        let mut d = DetectorInstance::compile_default(&expr, &reg).unwrap();
        d.begin_txn();
        d.process(&reg, &occ(&reg, 1, "Stock", "SetPrice"));
        d.commit_txn();
        assert_eq!(d.buffered(), 1);
        let got = d.process(&reg, &occ(&reg, 2, "FinancialInfo", "SetValue"));
        assert_eq!(got.len(), 1);
    }

    #[test]
    fn reset_inside_txn_is_undone_by_abort() {
        let reg = registry();
        let expr = stock("SetPrice").and(fininfo("SetValue"));
        let mut d = DetectorInstance::compile_default(&expr, &reg).unwrap();
        d.process(&reg, &occ(&reg, 1, "Stock", "SetPrice"));
        d.begin_txn();
        d.reset();
        assert_eq!(d.buffered(), 0);
        d.abort_txn();
        assert_eq!(d.buffered(), 1, "reset rolled back");
    }

    #[test]
    fn journal_overhead_is_constant_per_event() {
        // The journal must not clone buffers on append-only workloads:
        // with N buffered occurrences, a journaled append stays O(1).
        // (Guarded indirectly: entries recorded equal events processed.)
        let reg = registry();
        let expr = stock("SetPrice").and(fininfo("SetValue"));
        let mut d = DetectorInstance::compile_default(&expr, &reg).unwrap();
        for t in 1..=1000 {
            d.process(&reg, &occ(&reg, t, "Stock", "SetPrice"));
        }
        d.begin_txn();
        d.process(&reg, &occ(&reg, 2000, "Stock", "SetPrice"));
        assert_eq!(
            d.journal.as_ref().map(|j| j.len()),
            Some(1),
            "one journal marker for one append"
        );
        d.commit_txn();
    }
}

#[cfg(test)]
mod extension_op_tests {
    use super::*;
    use crate::spec::PrimitiveEventSpec as P;
    use sentinel_object::{ClassDecl, Oid, Value};
    use std::sync::Arc;

    fn registry() -> ClassRegistry {
        let mut reg = ClassRegistry::new();
        reg.define(ClassDecl::reactive("C").method("m", &[]).method("x", &[]))
            .unwrap();
        reg
    }

    fn occ(reg: &ClassRegistry, at: u64, method: &str) -> PrimitiveOccurrence {
        let cid = reg.id_of("C").unwrap();
        PrimitiveOccurrence {
            at,
            oid: Oid(at),
            class: cid,
            owner: cid,
            method: method.into(),
            modifier: EventModifier::End,
            params: Arc::from(Vec::<Value>::new()),
        }
    }

    fn leaf(m: &str) -> EventExpr {
        EventExpr::primitive(P::end("C", m))
    }

    #[test]
    fn times_emits_every_nth_and_consumes() {
        let reg = registry();
        let mut d = DetectorInstance::compile_default(&leaf("m").times(3), &reg).unwrap();
        let mut emissions = 0;
        for t in 1..=9 {
            emissions += d.process(&reg, &occ(&reg, t, "m")).len();
        }
        assert_eq!(emissions, 3, "9 occurrences / n=3");
        assert_eq!(d.buffered(), 0, "every group consumed");
        // Each emission carries its n constituents.
        let mut d = DetectorInstance::compile_default(&leaf("m").times(2), &reg).unwrap();
        d.process(&reg, &occ(&reg, 1, "m"));
        let got = d.process(&reg, &occ(&reg, 2, "m"));
        assert_eq!(got[0].constituents.len(), 2);
        assert_eq!((got[0].start, got[0].end), (1, 2));
    }

    #[test]
    fn times_abort_restores_partial_count() {
        let reg = registry();
        let mut d = DetectorInstance::compile_default(&leaf("m").times(3), &reg).unwrap();
        d.process(&reg, &occ(&reg, 1, "m"));
        d.begin_txn();
        d.process(&reg, &occ(&reg, 2, "m"));
        assert_eq!(d.process(&reg, &occ(&reg, 3, "m")).len(), 1);
        d.abort_txn();
        // Back to one buffered occurrence: two more complete the group.
        assert_eq!(d.buffered(), 1);
        d.process(&reg, &occ(&reg, 4, "m"));
        assert_eq!(d.process(&reg, &occ(&reg, 5, "m")).len(), 1);
    }

    #[test]
    fn plus_fires_lazily_at_or_after_deadline() {
        let reg = registry();
        // m + 10 ticks, signalled by whatever occurrence crosses it.
        let mut d = DetectorInstance::compile_default(&leaf("m").plus(10), &reg).unwrap();
        d.process(&reg, &occ(&reg, 5, "m")); // base at t=5, deadline 15
        assert!(d.process(&reg, &occ(&reg, 10, "x")).is_empty(), "too early");
        let got = d.process(&reg, &occ(&reg, 16, "x"));
        assert_eq!(got.len(), 1);
        assert_eq!((got[0].start, got[0].end), (5, 16));
        assert_eq!(d.buffered(), 0);
    }

    #[test]
    fn plus_queues_multiple_bases_fifo() {
        let reg = registry();
        let mut d = DetectorInstance::compile_default(&leaf("m").plus(5), &reg).unwrap();
        d.process(&reg, &occ(&reg, 1, "m"));
        d.process(&reg, &occ(&reg, 3, "m"));
        // t=8 crosses 1+5 and 3+5: both fire, oldest first.
        let got = d.process(&reg, &occ(&reg, 8, "x"));
        assert_eq!(got.len(), 2);
        assert_eq!(got[0].start, 1);
        assert_eq!(got[1].start, 3);
    }

    #[test]
    fn plus_abort_reinstates_pending_deadline() {
        let reg = registry();
        let mut d = DetectorInstance::compile_default(&leaf("m").plus(5), &reg).unwrap();
        d.process(&reg, &occ(&reg, 1, "m"));
        d.begin_txn();
        assert_eq!(d.process(&reg, &occ(&reg, 7, "x")).len(), 1);
        d.abort_txn();
        // The pending deadline is re-armed and fires again.
        assert_eq!(d.process(&reg, &occ(&reg, 9, "x")).len(), 1);
    }

    #[test]
    fn continuous_context_one_detection_per_initiator() {
        let reg = registry();
        let mut d = DetectorInstance::compile(
            &leaf("m").and(leaf("x")),
            &reg,
            ParamContext::Continuous,
            DetectorCaps::default(),
        )
        .unwrap();
        d.process(&reg, &occ(&reg, 1, "m"));
        d.process(&reg, &occ(&reg, 2, "m"));
        // The terminator completes *both* open initiators at once...
        let got = d.process(&reg, &occ(&reg, 3, "x"));
        assert_eq!(got.len(), 2);
        assert_eq!(d.buffered(), 0, "initiators consumed");
        // ...and a lone arrival afterwards opens a window of its own.
        assert!(d.process(&reg, &occ(&reg, 4, "x")).is_empty());
        assert_eq!(d.process(&reg, &occ(&reg, 5, "m")).len(), 1);
    }

    #[test]
    fn continuous_sequence_discards_unterminated_rights() {
        let reg = registry();
        let mut d = DetectorInstance::compile(
            &leaf("m").then(leaf("x")),
            &reg,
            ParamContext::Continuous,
            DetectorCaps::default(),
        )
        .unwrap();
        assert!(d.process(&reg, &occ(&reg, 1, "x")).is_empty());
        d.process(&reg, &occ(&reg, 2, "m"));
        d.process(&reg, &occ(&reg, 3, "m"));
        let got = d.process(&reg, &occ(&reg, 4, "x"));
        assert_eq!(got.len(), 2, "one detection per open initiator");
        assert_eq!(d.buffered(), 0);
        assert!(d.process(&reg, &occ(&reg, 5, "x")).is_empty());
    }

    #[test]
    fn composition_times_of_sequence() {
        // Every 2nd (a ; b) pair.
        let reg = registry();
        let expr = leaf("m").then(leaf("x")).times(2);
        let mut d = DetectorInstance::compile(
            &expr,
            &reg,
            ParamContext::Chronicle,
            DetectorCaps::default(),
        )
        .unwrap();
        let mut emissions = 0;
        for t in 0..8 {
            let m = if t % 2 == 0 { "m" } else { "x" };
            emissions += d.process(&reg, &occ(&reg, t + 1, m)).len();
        }
        // 4 sequence detections → 2 times-emissions of 4 constituents.
        assert_eq!(emissions, 2);
    }
}

#[cfg(test)]
mod temporal_op_tests {
    use super::*;
    use crate::algebra::AggFn;
    use crate::spec::PrimitiveEventSpec as P;
    use sentinel_object::{ClassDecl, Oid, Value};
    use std::sync::Arc;

    fn registry() -> ClassRegistry {
        let mut reg = ClassRegistry::new();
        reg.define(ClassDecl::reactive("C").method("m", &[]).method("x", &[]))
            .unwrap();
        reg
    }

    fn occ_amt(reg: &ClassRegistry, at: u64, method: &str, amount: i64) -> PrimitiveOccurrence {
        let cid = reg.id_of("C").unwrap();
        PrimitiveOccurrence {
            at,
            oid: Oid(at),
            class: cid,
            owner: cid,
            method: method.into(),
            modifier: EventModifier::End,
            params: Arc::from(vec![Value::Int(amount)]),
        }
    }

    fn occ(reg: &ClassRegistry, at: u64, method: &str) -> PrimitiveOccurrence {
        occ_amt(reg, at, method, at as i64)
    }

    fn leaf(m: &str) -> EventExpr {
        EventExpr::primitive(P::end("C", m))
    }

    #[test]
    fn at_timer_fires_only_via_the_timer_path() {
        let reg = registry();
        let mut d = DetectorInstance::compile_default(&EventExpr::at(5), &reg).unwrap();
        // Primitive occurrences never match a timer leaf.
        assert!(d.process(&reg, &occ(&reg, 1, "m")).is_empty());
        let got = d.process_timer(&reg, 0, 5, 2);
        assert_eq!(got.len(), 1);
        assert!(got[0].constituents.is_empty(), "a tick has no parameters");
        assert_eq!((got[0].start, got[0].end), (2, 2));
        assert_eq!(d.stats().matched, 1);
    }

    #[test]
    fn timer_pairs_in_sequence_like_an_event() {
        // m ; every(10) — the tick terminates the sequence.
        let reg = registry();
        let expr = leaf("m").then(EventExpr::every(10));
        let mut d = DetectorInstance::compile_default(&expr, &reg).unwrap();
        d.process(&reg, &occ(&reg, 5, "m"));
        let got = d.process_timer(&reg, 0, 10, 6);
        assert_eq!(got.len(), 1);
        assert_eq!((got[0].start, got[0].end), (5, 6));
        assert_eq!(got[0].constituents.len(), 1, "only the event constituent");
        // A fire addressed to a different leaf index is ignored.
        assert!(d.process_timer(&reg, 1, 20, 7).is_empty());
    }

    #[test]
    fn timer_fire_inside_txn_is_undone_by_abort() {
        let reg = registry();
        let expr = leaf("m").then(EventExpr::every(5));
        let mut d = DetectorInstance::compile(
            &expr,
            &reg,
            ParamContext::Chronicle,
            DetectorCaps::default(),
        )
        .unwrap();
        d.process(&reg, &occ(&reg, 1, "m"));
        d.begin_txn();
        assert_eq!(d.process_timer(&reg, 0, 5, 2).len(), 1);
        d.abort_txn();
        // The consumed left is re-armed: the next fire pairs again.
        assert_eq!(d.process_timer(&reg, 0, 10, 3).len(), 1);
    }

    #[test]
    fn within_filters_by_span_and_evicts_stale_state() {
        let reg = registry();
        let expr = leaf("m").then(leaf("x")).within(5);
        let mut d = DetectorInstance::compile_default(&expr, &reg).unwrap();
        d.process(&reg, &occ(&reg, 1, "m"));
        // Nine ticks later: over the deadline — and the stale left was
        // evicted before it could pair.
        assert!(d.process(&reg, &occ(&reg, 10, "x")).is_empty());
        assert_eq!(d.buffered(), 0, "stale operand state evicted");
        d.process(&reg, &occ(&reg, 20, "m"));
        let got = d.process(&reg, &occ(&reg, 23, "x"));
        assert_eq!(got.len(), 1);
        assert_eq!((got[0].start, got[0].end), (20, 23));
    }

    #[test]
    fn within_bounds_memory_under_never_completing_composite() {
        // Regression: an unrestricted Seq buffers every left forever when
        // its right never arrives. A `within` scope gives the buffer an
        // eviction rule, so memory stays bounded by the deadline.
        let reg = registry();
        let expr = leaf("m").then(leaf("x")).within(8);
        let mut d = DetectorInstance::compile_default(&expr, &reg).unwrap();
        for t in 1..=5_000 {
            d.process(&reg, &occ(&reg, t, "m"));
        }
        assert!(
            d.buffered() <= 10,
            "buffered {} grew past the deadline bound",
            d.buffered()
        );
        // And the unscoped control really does grow without bound.
        let mut ctl = DetectorInstance::compile_default(&leaf("m").then(leaf("x")), &reg).unwrap();
        for t in 1..=5_000 {
            ctl.process(&reg, &occ(&reg, t, "m"));
        }
        assert_eq!(ctl.buffered(), 5_000);
    }

    #[test]
    fn sliding_window_scopes_sequence_pairing() {
        // The fraud shape: m ; x inside a sliding window — constituents
        // further apart than the window never pair.
        let reg = registry();
        let expr = leaf("m").then(leaf("x")).sliding_window(10);
        let mut d = DetectorInstance::compile_default(&expr, &reg).unwrap();
        d.process(&reg, &occ(&reg, 1, "m"));
        assert!(d.process(&reg, &occ(&reg, 20, "x")).is_empty());
        assert_eq!(d.buffered(), 0, "out-of-window left evicted");
        d.process(&reg, &occ(&reg, 21, "m"));
        assert_eq!(d.process(&reg, &occ(&reg, 25, "x")).len(), 1);
    }

    #[test]
    fn sliding_aggregate_latches_on_crossing() {
        let reg = registry();
        let expr = leaf("m").count_within(5, 2);
        let mut d = DetectorInstance::compile_default(&expr, &reg).unwrap();
        assert!(d.process(&reg, &occ(&reg, 3, "m")).is_empty());
        // Window (1, 6] holds both: crossing emits once...
        let got = d.process(&reg, &occ(&reg, 6, "m"));
        assert_eq!(got.len(), 1);
        assert_eq!(got[0].constituents.len(), 2);
        // ...and the overlapping window at t=9 ({6, 9}) stays latched.
        assert!(d.process(&reg, &occ(&reg, 9, "m")).is_empty());
        // A lull drops the count below threshold: unlatch...
        assert!(d.process(&reg, &occ(&reg, 15, "m")).is_empty());
        // ...so the next crossing fires again.
        assert_eq!(d.process(&reg, &occ(&reg, 16, "m")).len(), 1);
    }

    #[test]
    fn tumbling_edge_starts_the_new_epoch() {
        let reg = registry();
        let expr = leaf("m").aggregate(10, true, AggFn::Count, 2);
        let mut d = DetectorInstance::compile_default(&expr, &reg).unwrap();
        d.process(&reg, &occ(&reg, 8, "m"));
        assert_eq!(d.process(&reg, &occ(&reg, 9, "m")).len(), 1);
        // t=10 sits exactly on the edge: it belongs to the NEW epoch, so
        // the count restarts at 1.
        assert!(d.process(&reg, &occ(&reg, 10, "m")).is_empty());
        assert_eq!(d.process(&reg, &occ(&reg, 11, "m")).len(), 1);
    }

    #[test]
    fn empty_window_aggregation_is_silent() {
        let reg = registry();
        let expr = leaf("m").aggregate(10, true, AggFn::Count, 1);
        let mut d = DetectorInstance::compile_default(&expr, &reg).unwrap();
        d.process(&reg, &occ(&reg, 5, "m"));
        // An unrelated stimulus two epochs later rolls the window; the
        // empty window must not emit (count 0 never crosses).
        assert!(d.process(&reg, &occ(&reg, 25, "x")).is_empty());
        assert_eq!(d.buffered(), 0);
        assert_eq!(d.process(&reg, &occ(&reg, 26, "m")).len(), 1);
    }

    #[test]
    fn sum_aggregate_over_params() {
        let reg = registry();
        let expr = leaf("m").sum_within(10, 0, 100);
        let mut d = DetectorInstance::compile_default(&expr, &reg).unwrap();
        assert!(d.process(&reg, &occ_amt(&reg, 1, "m", 60)).is_empty());
        let got = d.process(&reg, &occ_amt(&reg, 3, "m", 50));
        assert_eq!(got.len(), 1, "60 + 50 crosses 100");
        // After the pair slides out, small amounts stay silent.
        assert!(d.process(&reg, &occ_amt(&reg, 30, "m", 50)).is_empty());
    }

    #[test]
    fn aggregate_abort_restores_window_state() {
        let reg = registry();
        let expr = leaf("m").count_within(10, 2);
        let mut d = DetectorInstance::compile_default(&expr, &reg).unwrap();
        d.process(&reg, &occ(&reg, 1, "m"));
        d.begin_txn();
        assert_eq!(d.process(&reg, &occ(&reg, 2, "m")).len(), 1);
        d.abort_txn();
        // The aborted arrival and the latch are both rolled back.
        assert_eq!(d.buffered(), 1);
        assert_eq!(d.process(&reg, &occ(&reg, 3, "m")).len(), 1);
    }

    #[test]
    fn detector_state_round_trips_mid_sequence() {
        let reg = registry();
        let expr = leaf("m").then(leaf("x"));
        let mut d = DetectorInstance::compile(
            &expr,
            &reg,
            ParamContext::Chronicle,
            DetectorCaps::default(),
        )
        .unwrap();
        d.process(&reg, &occ(&reg, 1, "m"));
        let st = d.export_state();
        assert!(!st.is_trivial());
        // Serde round trip, as the checkpoint snapshot does it.
        let bytes = serde_json::to_vec(&st).unwrap();
        let st: DetectorState = serde_json::from_slice(&bytes).unwrap();
        // A fresh instance (the recovered process) resumes mid-sequence.
        let mut d2 = DetectorInstance::compile(
            &expr,
            &reg,
            ParamContext::Chronicle,
            DetectorCaps::default(),
        )
        .unwrap();
        assert!(d2.import_state(&st));
        assert_eq!(d2.process(&reg, &occ(&reg, 2, "x")).len(), 1);
    }

    #[test]
    fn state_import_rejects_shape_mismatch() {
        let reg = registry();
        let mut seq = DetectorInstance::compile_default(&leaf("m").then(leaf("x")), &reg).unwrap();
        seq.process(&reg, &occ(&reg, 1, "m"));
        let st = seq.export_state();
        let mut and = DetectorInstance::compile_default(&leaf("m").and(leaf("x")), &reg).unwrap();
        assert!(!and.import_state(&st), "And expects two buffer sides");
        assert_eq!(and.buffered(), 0, "failed import leaves state untouched");
    }

    #[test]
    fn aggregate_state_round_trips_with_instants() {
        let reg = registry();
        let expr = leaf("m").count_within(10, 2);
        let mut d = DetectorInstance::compile_default(&expr, &reg).unwrap();
        d.process(&reg, &occ(&reg, 5, "m"));
        let st = d.export_state();
        let mut d2 = DetectorInstance::compile_default(&expr, &reg).unwrap();
        assert!(d2.import_state(&st));
        assert_eq!(d2.process(&reg, &occ(&reg, 6, "m")).len(), 1);
    }

    #[test]
    fn abort_restores_temporal_operators() {
        // The journal property extends to the new operators.
        let reg = registry();
        let pre: Vec<_> = (1..4).map(|t| occ(&reg, t, "m")).collect();
        let during: Vec<_> = vec![occ(&reg, 5, "x"), occ(&reg, 6, "m")];
        for expr in [
            leaf("m").then(leaf("x")).within(20),
            leaf("m").then(leaf("x")).sliding_window(20),
            leaf("m").count_within(20, 3),
            leaf("m").sum_within(20, 0, 10),
        ] {
            for ctx in ParamContext::ALL {
                let mut d =
                    DetectorInstance::compile(&expr, &reg, ctx, DetectorCaps::default()).unwrap();
                for o in &pre {
                    d.process(&reg, o);
                }
                let snapshot = d.clone();
                d.begin_txn();
                for o in &during {
                    d.process(&reg, o);
                }
                d.abort_txn();
                assert_eq!(d.buffered(), snapshot.buffered(), "buffered after abort");
                let mut d2 = snapshot;
                for t in 100..110 {
                    let m = if t % 2 == 0 { "m" } else { "x" };
                    assert_eq!(
                        d.process(&reg, &occ(&reg, t, m)),
                        d2.process(&reg, &occ(&reg, t, m)),
                        "behavioural divergence after abort"
                    );
                }
            }
        }
    }
}
