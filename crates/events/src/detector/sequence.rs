//! Sequence (`Seq`) pairing: a right-side occurrence combines with
//! strictly earlier left-side occurrences under each parameter context.

use crate::context::ParamContext;
use crate::occurrence::CompositeOccurrence;

use super::state::{Buffer, Env, NodeUndo};

/// Sequence pairing under each parameter context. Only left-side
/// occurrences are buffered; a right occurrence that finds no earlier
/// left can never participate later and is discarded.
pub(super) fn pair_seq(
    id: u32,
    le: Vec<CompositeOccurrence>,
    re: Vec<CompositeOccurrence>,
    lbuf: &mut Buffer,
    env: &mut Env<'_>,
) -> Vec<CompositeOccurrence> {
    let mut out = Vec::new();
    match env.context {
        ParamContext::Unrestricted => {
            for r in &re {
                for l in lbuf.items.iter().filter(|l| l.end < r.start) {
                    out.push(CompositeOccurrence::merge(l, r));
                }
            }
            for l in le {
                lbuf.push(id, 0, l, env);
            }
        }
        ParamContext::Recent => {
            for r in &re {
                if let Some(l) = lbuf.items.back().filter(|l| l.end < r.start) {
                    out.push(CompositeOccurrence::merge(l, r));
                }
            }
            for l in le {
                lbuf.clear(id, 0, env);
                lbuf.push(id, 0, l, env);
            }
        }
        ParamContext::Chronicle => {
            for r in &re {
                if lbuf.items.front().map(|l| l.end < r.start).unwrap_or(false) {
                    let l = lbuf.pop_front(id, 0, env).expect("checked non-empty");
                    out.push(CompositeOccurrence::merge(&l, r));
                }
            }
            for l in le {
                lbuf.push(id, 0, l, env);
            }
        }
        ParamContext::Continuous => {
            // Each buffered left is an open initiator; a right
            // terminates every strictly earlier one (one detection per
            // initiator) and consumes them.
            for r in &re {
                if lbuf.items.iter().any(|l| l.end < r.start) {
                    for l in lbuf.items.iter().filter(|l| l.end < r.start) {
                        out.push(CompositeOccurrence::merge(l, r));
                    }
                    if env.journaling() {
                        env.record(
                            id,
                            NodeUndo::RestoreSide {
                                side: 0,
                                items: lbuf.items.clone(),
                            },
                        );
                    }
                    lbuf.items.retain(|l| l.end >= r.start);
                }
            }
            for l in le {
                lbuf.push(id, 0, l, env);
            }
        }
        ParamContext::Cumulative => {
            for r in &re {
                let eligible: Vec<_> = lbuf
                    .items
                    .iter()
                    .filter(|l| l.end < r.start)
                    .cloned()
                    .collect();
                if !eligible.is_empty() {
                    let mut merged = CompositeOccurrence::merge_all(eligible.iter());
                    merged = CompositeOccurrence::merge(&merged, r);
                    out.push(merged);
                    // Journal the pre-retain contents, then consume the
                    // eligible prefix.
                    if env.journaling() {
                        env.record(
                            id,
                            NodeUndo::RestoreSide {
                                side: 0,
                                items: lbuf.items.clone(),
                            },
                        );
                    }
                    lbuf.items.retain(|l| l.end >= r.start);
                }
            }
            for l in le {
                lbuf.push(id, 0, l, env);
            }
        }
    }
    out
}
