//! Primitive-event leaves: compiling a spec into a leaf node and
//! matching incoming occurrences against it (interned-symbol fast path
//! with a string-compare fallback for out-of-schema occurrences).

use crate::occurrence::PrimitiveOccurrence;
use crate::spec::{sym_alphabet, EventModifier, PrimitiveEventSpec};
use sentinel_object::{ClassId, ClassRegistry, EventSym, Result};

use super::state::Env;
use super::Node;

/// Compile a primitive spec against the schema. Unknown classes are
/// reported immediately rather than silently never matching.
pub(super) fn compile(spec: &PrimitiveEventSpec, registry: &ClassRegistry) -> Result<Node> {
    let class = registry.id_of(&spec.class)?;
    Ok(Node::Primitive {
        class,
        method: spec.method.clone(),
        modifier: spec.modifier,
        alphabet: alphabet(registry, class, &spec.method, spec.modifier),
    })
}

/// The leaf's sorted interned-symbol alphabet, closed over subclasses.
pub(super) fn alphabet(
    registry: &ClassRegistry,
    class: ClassId,
    method: &str,
    modifier: EventModifier,
) -> Vec<EventSym> {
    sym_alphabet(registry, class, method, modifier)
}

/// Does the leaf consume this occurrence? In-schema occurrences carry
/// an interned symbol and match by integer membership; hand-built
/// occurrences naming undeclared methods take the string-compare
/// fallback.
pub(super) fn matches(
    env: &Env<'_>,
    class: ClassId,
    method: &str,
    modifier: EventModifier,
    alphabet: &[EventSym],
    occ: &PrimitiveOccurrence,
) -> bool {
    match env.sym {
        Some(sym) => alphabet.binary_search(&sym).is_ok(),
        None => {
            modifier == occ.modifier
                && method == &*occ.method
                && env.registry.is_subclass(occ.class, class)
        }
    }
}
