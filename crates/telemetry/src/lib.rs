#![warn(missing_docs)]
//! # sentinel-telemetry — pipeline observability
//!
//! Structured tracing, latency histograms, and metrics export for the
//! event → rule → transaction path. The paper's architecture (Figure 2)
//! is a pipeline — method send raises bom/eom events, events fan out to
//! subscribed rules, detectors advance, firings are scheduled per
//! coupling mode, conditions and actions run inside transactions — and
//! this crate gives every stage of that pipeline a name ([`Stage`]), a
//! counter, a latency histogram, and an optional structured trace
//! record.
//!
//! Design constraints:
//!
//! * **Zero-cost when disabled.** Every instrumentation entry point
//!   checks one relaxed [`AtomicBool`](std::sync::atomic::AtomicBool)
//!   and returns; subjects are lazy closures that are never evaluated
//!   unless tracing is on. The `telemetry_overhead` bench in
//!   `sentinel-bench` holds the disabled path to the un-instrumented
//!   dispatch cost.
//! * **Lock-light when enabled.** Counters and histogram buckets are
//!   relaxed atomics; the only lock is the trace ring buffer's mutex,
//!   taken per record and only while tracing.
//! * **No external deps.** Histograms use power-of-two buckets (no HDR
//!   dependency); exporters emit Prometheus-style text and JSON from the
//!   serializable [`TelemetrySnapshot`].

pub mod export;
pub mod handle;
pub mod histogram;
pub mod history;
pub mod shard;
pub mod stage;
pub mod trace;

pub use export::{prometheus_shard_text, prometheus_text};
pub use handle::{BodyKind, Telemetry, TelemetrySnapshot, Timer, TraceMeta};
pub use histogram::{Histogram, HistogramSnapshot};
pub use history::{
    ExecutionLane, FiringCoupling, FiringHistory, FiringId, FiringOutcome, FiringRecord,
    HistoryMeta,
};
pub use shard::{ShardCounters, ShardLoad};
pub use stage::Stage;
pub use trace::{RingBufferSink, TraceRecord, TraceSink};
