//! Structured trace records and the ring-buffer recorder.

use crate::stage::Stage;
use parking_lot::Mutex;
use serde::{Deserialize, Serialize};
use std::collections::VecDeque;
use std::fmt;

/// One structured record of a pipeline stage firing.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TraceRecord {
    /// Monotonic sequence number (per [`Telemetry`](crate::Telemetry)
    /// handle).
    pub seq: u64,
    /// Logical-clock reading when the stage fired (0 where no clock is
    /// in scope, e.g. WAL appends).
    pub at: u64,
    /// Which stage fired.
    pub stage: Stage,
    /// What it fired on: `@oid.Method` for sends, the event signature
    /// for raises, the rule name for detection/condition/action stages.
    pub subject: String,
    /// The recorded value in the stage's [`unit`](Stage::unit):
    /// nanoseconds for latency stages, a magnitude for depth/count
    /// stages, 0 for untimed counting stages.
    pub value: u64,
}

impl fmt::Display for TraceRecord {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "#{} t={} {:<19} {:>9}{} {}",
            self.seq,
            self.at,
            self.stage.name(),
            self.value,
            self.stage.unit(),
            self.subject
        )
    }
}

/// Consumer of trace records. The built-in sink is
/// [`RingBufferSink`]; a custom sink (e.g. a test collector or an
/// external forwarder) can be installed alongside it with
/// [`Telemetry::set_sink`](crate::Telemetry::set_sink).
pub trait TraceSink: Send + Sync {
    /// Accept one record.
    fn record(&self, rec: TraceRecord);
}

#[derive(Debug, Default)]
struct RingInner {
    buf: VecDeque<TraceRecord>,
    recorded: u64,
    dropped: u64,
}

/// A bounded, mutex-guarded ring of the most recent trace records.
///
/// "Lock-light": the mutex is held only for a push/pop pair per record,
/// and only while tracing is enabled; the disabled path never reaches
/// this type.
#[derive(Debug)]
pub struct RingBufferSink {
    capacity: usize,
    inner: Mutex<RingInner>,
}

impl RingBufferSink {
    /// A ring holding at most `capacity` records (oldest evicted first).
    pub fn new(capacity: usize) -> Self {
        RingBufferSink {
            capacity,
            inner: Mutex::new(RingInner::default()),
        }
    }

    /// Maximum records held.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Records currently buffered.
    pub fn len(&self) -> usize {
        self.inner.lock().buf.len()
    }

    /// Is the ring empty?
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Total records ever offered to the ring.
    pub fn recorded(&self) -> u64 {
        self.inner.lock().recorded
    }

    /// Records evicted to make room.
    pub fn dropped(&self) -> u64 {
        self.inner.lock().dropped
    }

    /// The most recent `n` records, oldest first.
    pub fn dump(&self, n: usize) -> Vec<TraceRecord> {
        let inner = self.inner.lock();
        let skip = inner.buf.len().saturating_sub(n);
        inner.buf.iter().skip(skip).cloned().collect()
    }

    /// Forget everything buffered (counters included).
    pub fn clear(&self) {
        let mut inner = self.inner.lock();
        inner.buf.clear();
        inner.recorded = 0;
        inner.dropped = 0;
    }
}

impl TraceSink for RingBufferSink {
    fn record(&self, rec: TraceRecord) {
        if self.capacity == 0 {
            return;
        }
        let mut inner = self.inner.lock();
        if inner.buf.len() == self.capacity {
            inner.buf.pop_front();
            inner.dropped += 1;
        }
        inner.buf.push_back(rec);
        inner.recorded += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(seq: u64) -> TraceRecord {
        TraceRecord {
            seq,
            at: seq,
            stage: Stage::MethodSend,
            subject: format!("@1.m{seq}"),
            value: 0,
        }
    }

    #[test]
    fn ring_evicts_oldest() {
        let ring = RingBufferSink::new(3);
        for i in 0..5 {
            ring.record(rec(i));
        }
        assert_eq!(ring.len(), 3);
        assert_eq!(ring.recorded(), 5);
        assert_eq!(ring.dropped(), 2);
        let seqs: Vec<u64> = ring.dump(10).iter().map(|r| r.seq).collect();
        assert_eq!(seqs, [2, 3, 4]);
        // dump(n) returns the *most recent* n.
        let seqs: Vec<u64> = ring.dump(2).iter().map(|r| r.seq).collect();
        assert_eq!(seqs, [3, 4]);
        ring.clear();
        assert!(ring.is_empty());
        assert_eq!(ring.recorded(), 0);
    }

    #[test]
    fn record_serde_round_trip() {
        let r = rec(9);
        let json = serde_json::to_string(&r).unwrap();
        assert_eq!(serde_json::from_str::<TraceRecord>(&json).unwrap(), r);
        assert!(r.to_string().contains("method_send"));
    }
}
