//! Metrics exporters: Prometheus-style text (JSON export is just
//! `serde_json::to_string` of the serializable snapshots).

use crate::handle::TelemetrySnapshot;
use crate::histogram::HistogramSnapshot;
use crate::shard::ShardLoad;
use std::fmt::Write;

/// Render per-shard store-lock counters in the Prometheus text format:
/// `sentinel_store_shard_{reads,writes}_total{shard="i"}`. Appended by
/// the database facade after [`prometheus_text`].
pub fn prometheus_shard_text(loads: &[ShardLoad]) -> String {
    let mut out = String::new();
    if loads.is_empty() {
        return out;
    }
    let _ = writeln!(
        out,
        "# HELP sentinel_store_shard_reads_total Read-lock acquisitions per store shard."
    );
    let _ = writeln!(out, "# TYPE sentinel_store_shard_reads_total counter");
    for l in loads {
        let _ = writeln!(
            out,
            "sentinel_store_shard_reads_total{{shard=\"{}\"}} {}",
            l.shard, l.reads
        );
    }
    let _ = writeln!(
        out,
        "# HELP sentinel_store_shard_writes_total Write-lock acquisitions per store shard."
    );
    let _ = writeln!(out, "# TYPE sentinel_store_shard_writes_total counter");
    for l in loads {
        let _ = writeln!(
            out,
            "sentinel_store_shard_writes_total{{shard=\"{}\"}} {}",
            l.shard, l.writes
        );
    }
    out
}

/// Render a snapshot (plus caller-supplied counters, e.g. the database
/// facade's `DbStats`/`EngineStats`) in the Prometheus text exposition
/// format. Every metric is prefixed `sentinel_`.
///
/// Layout:
///
/// * `extra` pairs become plain counters: `sentinel_<name> <value>`;
/// * per-stage counts: `sentinel_stage_total{stage="..."}`;
/// * per-stage value distributions as native histograms with
///   cumulative power-of-two `le` bounds:
///   `sentinel_stage_value{stage="...",unit="..."}`;
/// * per-rule body latencies:
///   `sentinel_rule_body_latency_ns{rule="...",body="condition|action"}`.
pub fn prometheus_text(snapshot: &TelemetrySnapshot, extra: &[(&str, u64)]) -> String {
    let mut out = String::new();
    for (name, value) in extra {
        let _ = writeln!(out, "# TYPE sentinel_{name} counter");
        let _ = writeln!(out, "sentinel_{name} {value}");
    }

    let _ = writeln!(
        out,
        "# HELP sentinel_stage_total Firings of each pipeline stage."
    );
    let _ = writeln!(out, "# TYPE sentinel_stage_total counter");
    for s in &snapshot.stages {
        let _ = writeln!(
            out,
            "sentinel_stage_total{{stage=\"{}\"}} {}",
            s.stage, s.count
        );
    }

    let _ = writeln!(
        out,
        "# HELP sentinel_stage_value Recorded values per stage (unit label: ns, occurrences, records)."
    );
    let _ = writeln!(out, "# TYPE sentinel_stage_value histogram");
    for s in &snapshot.stages {
        if s.values.count == 0 {
            continue;
        }
        let labels = format!("stage=\"{}\",unit=\"{}\"", s.stage, s.unit);
        write_histogram(&mut out, "sentinel_stage_value", &labels, &s.values);
    }

    if !snapshot.rules.is_empty() {
        let _ = writeln!(
            out,
            "# HELP sentinel_rule_body_latency_ns Condition/action latency per rule."
        );
        let _ = writeln!(out, "# TYPE sentinel_rule_body_latency_ns histogram");
        for r in &snapshot.rules {
            for (body, hist) in [("condition", &r.condition), ("action", &r.action)] {
                if hist.count == 0 {
                    continue;
                }
                let labels = format!("rule=\"{}\",body=\"{body}\"", r.rule);
                write_histogram(&mut out, "sentinel_rule_body_latency_ns", &labels, hist);
            }
        }
    }

    let _ = writeln!(out, "# TYPE sentinel_trace_records_total counter");
    let _ = writeln!(
        out,
        "sentinel_trace_records_total {}",
        snapshot.trace.recorded
    );
    let _ = writeln!(out, "# TYPE sentinel_trace_records_dropped_total counter");
    let _ = writeln!(
        out,
        "sentinel_trace_records_dropped_total {}",
        snapshot.trace.dropped
    );
    out
}

/// Emit one histogram in Prometheus convention: cumulative `le` buckets
/// ending at `+Inf`, then `_sum` and `_count`.
fn write_histogram(out: &mut String, name: &str, labels: &str, hist: &HistogramSnapshot) {
    let mut cumulative = 0u64;
    for b in &hist.buckets {
        cumulative += b.count;
        let _ = writeln!(
            out,
            "{name}_bucket{{{labels},le=\"{}\"}} {cumulative}",
            b.le
        );
    }
    let _ = writeln!(out, "{name}_bucket{{{labels},le=\"+Inf\"}} {cumulative}");
    let _ = writeln!(out, "{name}_sum{{{labels}}} {}", hist.sum);
    let _ = writeln!(out, "{name}_count{{{labels}}} {}", hist.count);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::handle::{BodyKind, Telemetry};
    use crate::stage::Stage;

    #[test]
    fn prometheus_output_shape() {
        let t = Telemetry::new(8);
        t.set_enabled(true);
        t.observe(Stage::WalAppend, 0, 700, String::new);
        t.observe(Stage::WalAppend, 0, 900, String::new);
        t.hit(Stage::MethodSend, 1, String::new);
        t.observe_rule("R", BodyKind::Condition, 50);
        let text = prometheus_text(&t.snapshot(), &[("sends_total", 1)]);

        assert!(text.contains("sentinel_sends_total 1"));
        assert!(text.contains("sentinel_stage_total{stage=\"method_send\"} 1"));
        assert!(text.contains("sentinel_stage_total{stage=\"wal_append\"} 2"));
        // 700 and 900 share the [512,1023] bucket; cumulative ends +Inf.
        assert!(text.contains(
            "sentinel_stage_value_bucket{stage=\"wal_append\",unit=\"ns\",le=\"1023\"} 2"
        ));
        assert!(text.contains(
            "sentinel_stage_value_bucket{stage=\"wal_append\",unit=\"ns\",le=\"+Inf\"} 2"
        ));
        assert!(text.contains("sentinel_stage_value_sum{stage=\"wal_append\",unit=\"ns\"} 1600"));
        assert!(
            text.contains("sentinel_rule_body_latency_ns_count{rule=\"R\",body=\"condition\"} 1")
        );
        // Untimed stages appear as counters but not as histograms.
        assert!(!text.contains("sentinel_stage_value_count{stage=\"method_send\""));
    }
}
