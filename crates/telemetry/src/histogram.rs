//! Lock-free latency/value histograms with power-of-two buckets.

use serde::{Deserialize, Serialize};
use std::sync::atomic::{AtomicU64, Ordering::Relaxed};

/// Number of buckets: bucket `i` holds values `v` with
/// `bit_length(v) == i`, i.e. `2^(i-1) <= v < 2^i` (bucket 0 holds 0).
/// 64 buckets cover the full `u64` range.
const BUCKETS: usize = 64;

/// A concurrent histogram over `u64` values (nanoseconds for latency
/// stages, plain magnitudes for depth/count stages).
///
/// All cells are relaxed atomics: recording is wait-free and never takes
/// a lock; snapshots are not a consistent cut (a record racing a
/// snapshot may land in `count` but not yet in `sum`), which is fine for
/// monitoring counters.
#[derive(Debug)]
pub struct Histogram {
    buckets: [AtomicU64; BUCKETS],
    count: AtomicU64,
    sum: AtomicU64,
    min: AtomicU64,
    max: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Self {
        Self::new()
    }
}

impl Histogram {
    /// An empty histogram.
    pub fn new() -> Self {
        Histogram {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            min: AtomicU64::new(u64::MAX),
            max: AtomicU64::new(0),
        }
    }

    /// Bucket index of a value: its bit length.
    #[inline]
    fn bucket_of(v: u64) -> usize {
        (u64::BITS - v.leading_zeros()) as usize
    }

    /// Inclusive upper bound of bucket `i` (the largest value with bit
    /// length `i`).
    fn bucket_bound(i: usize) -> u64 {
        if i >= 64 {
            u64::MAX
        } else {
            (1u64 << i) - 1
        }
    }

    /// Record one value.
    pub fn record(&self, v: u64) {
        let idx = Self::bucket_of(v).min(BUCKETS - 1);
        self.buckets[idx].fetch_add(1, Relaxed);
        self.count.fetch_add(1, Relaxed);
        self.sum.fetch_add(v, Relaxed);
        self.min.fetch_min(v, Relaxed);
        self.max.fetch_max(v, Relaxed);
    }

    /// Number of recorded values.
    pub fn count(&self) -> u64 {
        self.count.load(Relaxed)
    }

    /// Zero every cell.
    pub fn reset(&self) {
        for b in &self.buckets {
            b.store(0, Relaxed);
        }
        self.count.store(0, Relaxed);
        self.sum.store(0, Relaxed);
        self.min.store(u64::MAX, Relaxed);
        self.max.store(0, Relaxed);
    }

    /// A serializable copy of the current state (non-empty buckets only).
    pub fn snapshot(&self) -> HistogramSnapshot {
        let count = self.count.load(Relaxed);
        let buckets = self
            .buckets
            .iter()
            .enumerate()
            .filter_map(|(i, b)| {
                let n = b.load(Relaxed);
                (n > 0).then(|| Bucket {
                    le: Self::bucket_bound(i),
                    count: n,
                })
            })
            .collect();
        HistogramSnapshot {
            count,
            sum: self.sum.load(Relaxed),
            min: (count > 0).then(|| self.min.load(Relaxed)),
            max: (count > 0).then(|| self.max.load(Relaxed)),
            buckets,
        }
    }
}

/// One non-empty bucket of a [`HistogramSnapshot`]: `count` values were
/// `<= le` (and greater than the previous bucket's bound).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Bucket {
    /// Inclusive upper bound of the bucket.
    pub le: u64,
    /// Values recorded into this bucket (not cumulative).
    pub count: u64,
}

/// A serializable point-in-time copy of a [`Histogram`].
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct HistogramSnapshot {
    /// Number of recorded values.
    pub count: u64,
    /// Sum of recorded values.
    pub sum: u64,
    /// Smallest recorded value (absent while empty).
    pub min: Option<u64>,
    /// Largest recorded value (absent while empty).
    pub max: Option<u64>,
    /// Non-empty buckets, in increasing `le` order.
    pub buckets: Vec<Bucket>,
}

impl HistogramSnapshot {
    /// Mean of the recorded values (0.0 while empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucketing_is_power_of_two() {
        assert_eq!(Histogram::bucket_of(0), 0);
        assert_eq!(Histogram::bucket_of(1), 1);
        assert_eq!(Histogram::bucket_of(2), 2);
        assert_eq!(Histogram::bucket_of(3), 2);
        assert_eq!(Histogram::bucket_of(4), 3);
        assert_eq!(Histogram::bucket_of(1023), 10);
        assert_eq!(Histogram::bucket_of(1024), 11);
        assert_eq!(Histogram::bucket_of(u64::MAX), 64);
        assert_eq!(Histogram::bucket_bound(10), 1023);
    }

    #[test]
    fn record_and_snapshot() {
        let h = Histogram::new();
        for v in [0, 1, 3, 900, 1000, 70_000] {
            h.record(v);
        }
        let s = h.snapshot();
        assert_eq!(s.count, 6);
        assert_eq!(s.sum, 71_904);
        assert_eq!(s.min, Some(0));
        assert_eq!(s.max, Some(70_000));
        assert_eq!(s.buckets.iter().map(|b| b.count).sum::<u64>(), 6);
        // 900 and 1000 share the [512, 1023] bucket.
        assert!(s.buckets.iter().any(|b| b.le == 1023 && b.count == 2));
        assert!((s.mean() - 71_904.0 / 6.0).abs() < 1e-9);
    }

    #[test]
    fn reset_empties() {
        let h = Histogram::new();
        h.record(42);
        h.reset();
        let s = h.snapshot();
        assert_eq!(s.count, 0);
        assert_eq!(s.min, None);
        assert!(s.buckets.is_empty());
    }

    #[test]
    fn snapshot_serde_round_trip() {
        let h = Histogram::new();
        h.record(7);
        h.record(4096);
        let s = h.snapshot();
        let json = serde_json::to_string(&s).unwrap();
        assert_eq!(serde_json::from_str::<HistogramSnapshot>(&json).unwrap(), s);
    }
}
