//! Per-shard load counters for the sharded object store.
//!
//! The store takes one reader/writer lock per shard; these counters
//! record how many read-side and write-side acquisitions each shard has
//! served, so skew (a hot shard serialising readers behind a writer) is
//! visible in the metrics export instead of only in tail latencies.
//!
//! Same design constraints as the rest of the crate: relaxed atomics,
//! no locks, and cells are padded apart by allocation order so two
//! shards' counters do not share a cache line pathologically under
//! concurrent readers.

use serde::{Deserialize, Serialize};
use std::sync::atomic::{AtomicU64, Ordering};

/// One shard's counters. Padded to a cache line so neighbouring shards'
/// counters do not false-share under concurrent readers.
#[repr(align(64))]
#[derive(Debug, Default)]
struct ShardCell {
    reads: AtomicU64,
    writes: AtomicU64,
}

/// Read/write acquisition counters, one cell per store shard.
#[derive(Debug)]
pub struct ShardCounters {
    cells: Box<[ShardCell]>,
}

/// Serializable snapshot of one shard's counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct ShardLoad {
    /// Shard index.
    pub shard: usize,
    /// Read-lock acquisitions served.
    pub reads: u64,
    /// Write-lock acquisitions served.
    pub writes: u64,
}

impl ShardCounters {
    /// Counters for `shards` shards.
    pub fn new(shards: usize) -> Self {
        ShardCounters {
            cells: (0..shards).map(|_| ShardCell::default()).collect(),
        }
    }

    /// Number of shards tracked.
    pub fn len(&self) -> usize {
        self.cells.len()
    }

    /// True when tracking zero shards.
    pub fn is_empty(&self) -> bool {
        self.cells.is_empty()
    }

    /// Record a read-lock acquisition on `shard`.
    #[inline]
    pub fn record_read(&self, shard: usize) {
        if let Some(c) = self.cells.get(shard) {
            c.reads.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Record a write-lock acquisition on `shard`.
    #[inline]
    pub fn record_write(&self, shard: usize) {
        if let Some(c) = self.cells.get(shard) {
            c.writes.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Snapshot every shard's counters.
    pub fn snapshot(&self) -> Vec<ShardLoad> {
        self.cells
            .iter()
            .enumerate()
            .map(|(shard, c)| ShardLoad {
                shard,
                reads: c.reads.load(Ordering::Relaxed),
                writes: c.writes.load(Ordering::Relaxed),
            })
            .collect()
    }

    /// Total (reads, writes) across all shards.
    pub fn totals(&self) -> (u64, u64) {
        self.cells.iter().fold((0, 0), |(r, w), c| {
            (
                r + c.reads.load(Ordering::Relaxed),
                w + c.writes.load(Ordering::Relaxed),
            )
        })
    }

    /// Zero every counter (benchmark warm-up).
    pub fn reset(&self) {
        for c in self.cells.iter() {
            c.reads.store(0, Ordering::Relaxed);
            c.writes.store(0, Ordering::Relaxed);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_per_shard() {
        let c = ShardCounters::new(4);
        c.record_read(0);
        c.record_read(0);
        c.record_write(3);
        let snap = c.snapshot();
        assert_eq!(snap.len(), 4);
        assert_eq!(snap[0].reads, 2);
        assert_eq!(snap[0].writes, 0);
        assert_eq!(snap[3].writes, 1);
        assert_eq!(c.totals(), (2, 1));
    }

    #[test]
    fn out_of_range_is_ignored() {
        let c = ShardCounters::new(2);
        c.record_read(99);
        assert_eq!(c.totals(), (0, 0));
    }

    #[test]
    fn reset_zeroes() {
        let c = ShardCounters::new(2);
        c.record_write(1);
        c.reset();
        assert_eq!(c.totals(), (0, 0));
    }

    #[test]
    fn concurrent_recording_loses_nothing() {
        let c = std::sync::Arc::new(ShardCounters::new(8));
        let mut handles = Vec::new();
        for t in 0..4 {
            let c = c.clone();
            handles.push(std::thread::spawn(move || {
                for i in 0..1000 {
                    c.record_read((t + i) % 8);
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(c.totals(), (4000, 0));
    }
}
