//! Named stages of the event → rule → transaction pipeline.

use serde::{Deserialize, Serialize};
use std::fmt;

/// One stage of an occurrence's life, from the method send that raised
/// it to the commit (or abort) of the transaction that consumed it.
///
/// Each stage owns a counter and a histogram in [`Telemetry`]
/// (crate::Telemetry). Most stages record latencies in nanoseconds; the
/// exceptions are [`Stage::DetectorDepth`] (occurrences buffered by a
/// detector after a delivery), [`Stage::WalBatch`] (committed
/// transactions covered by one group-commit fsync),
/// [`Stage::RecoveryReplay`] (log records replayed by one recovery run),
/// [`Stage::LineageRecord`] (cascade depth of a recorded firing) and
/// [`Stage::SchedulerGroup`] (firings per dispatched conflict group)
/// — see [`Stage::unit`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum Stage {
    /// A message dispatched through the database facade.
    MethodSend,
    /// A primitive (bom/eom) event raised by a dispatch.
    EventRaised,
    /// One occurrence fanned out to its subscribed consumers
    /// (latency covers detection and scheduling for all of them).
    FanOut,
    /// One delivery of an occurrence to a rule's detector
    /// (latency of the detector-node transitions it caused).
    DetectorTransition,
    /// Occurrences buffered across a rule's detector nodes after a
    /// delivery (a depth distribution, not a latency).
    DetectorDepth,
    /// A firing scheduled with immediate coupling.
    FiringImmediate,
    /// A firing scheduled with deferred coupling.
    FiringDeferred,
    /// A firing scheduled with detached coupling.
    FiringDetached,
    /// A rule-condition evaluation.
    ConditionEval,
    /// A rule-action execution.
    ActionRun,
    /// A transaction commit (latency covers the deferred-rule drain and
    /// the commit record reaching the log).
    TxnCommit,
    /// A transaction rollback.
    TxnAbort,
    /// A detached firing executed in its own follow-on transaction.
    DetachedRun,
    /// A record appended to the write-ahead log.
    WalAppend,
    /// A WAL flush + fsync (per the active sync policy).
    WalFsync,
    /// A group-commit batch made durable by a single fsync (value =
    /// number of committed transactions the fsync covered).
    WalBatch,
    /// Time a detached firing spent queued between scheduling and the
    /// worker draining it.
    DetachedQueueWait,
    /// A recovery pass replaying committed log records (value = number
    /// of records replayed).
    RecoveryReplay,
    /// A firing record appended to the firing-history ring (value =
    /// cascade depth of the recorded firing).
    LineageRecord,
    /// Time the committing thread spent waiting for the scheduler's
    /// workers to finish a parallel batch.
    SchedulerWait,
    /// A conflict group dispatched to the worker pool (value = number
    /// of firings in the group — a group-size distribution).
    SchedulerGroup,
    /// A drain of due timers from the timer wheel (latency covers the
    /// detector deliveries and scheduling for every fire in the drain).
    TimerDrain,
}

impl Stage {
    /// Number of stages.
    pub const COUNT: usize = 22;

    /// All stages, in pipeline order.
    pub const ALL: [Stage; Stage::COUNT] = [
        Stage::MethodSend,
        Stage::EventRaised,
        Stage::FanOut,
        Stage::DetectorTransition,
        Stage::DetectorDepth,
        Stage::FiringImmediate,
        Stage::FiringDeferred,
        Stage::FiringDetached,
        Stage::ConditionEval,
        Stage::ActionRun,
        Stage::TxnCommit,
        Stage::TxnAbort,
        Stage::DetachedRun,
        Stage::WalAppend,
        Stage::WalFsync,
        Stage::WalBatch,
        Stage::DetachedQueueWait,
        Stage::RecoveryReplay,
        Stage::LineageRecord,
        Stage::SchedulerWait,
        Stage::SchedulerGroup,
        Stage::TimerDrain,
    ];

    /// Dense index, for per-stage storage.
    pub const fn index(self) -> usize {
        self as usize
    }

    /// Stable snake_case name, used as the `stage` label in exports.
    pub const fn name(self) -> &'static str {
        match self {
            Stage::MethodSend => "method_send",
            Stage::EventRaised => "event_raised",
            Stage::FanOut => "fan_out",
            Stage::DetectorTransition => "detector_transition",
            Stage::DetectorDepth => "detector_depth",
            Stage::FiringImmediate => "firing_immediate",
            Stage::FiringDeferred => "firing_deferred",
            Stage::FiringDetached => "firing_detached",
            Stage::ConditionEval => "condition_eval",
            Stage::ActionRun => "action_run",
            Stage::TxnCommit => "txn_commit",
            Stage::TxnAbort => "txn_abort",
            Stage::DetachedRun => "detached_run",
            Stage::WalAppend => "wal_append",
            Stage::WalFsync => "wal_fsync",
            Stage::WalBatch => "wal_batch",
            Stage::DetachedQueueWait => "detached_queue_wait",
            Stage::RecoveryReplay => "recovery_replay",
            Stage::LineageRecord => "lineage_record",
            Stage::SchedulerWait => "scheduler_wait",
            Stage::SchedulerGroup => "scheduler_group",
            Stage::TimerDrain => "timer_drain",
        }
    }

    /// Unit of the values this stage records into its histogram.
    pub const fn unit(self) -> &'static str {
        match self {
            Stage::DetectorDepth => "occurrences",
            Stage::WalBatch => "txns",
            Stage::RecoveryReplay => "records",
            Stage::LineageRecord => "depth",
            Stage::SchedulerGroup => "firings",
            _ => "ns",
        }
    }
}

impl fmt::Display for Stage {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_is_dense_and_ordered() {
        assert_eq!(Stage::ALL.len(), Stage::COUNT);
        for (i, s) in Stage::ALL.iter().enumerate() {
            assert_eq!(s.index(), i, "{s}");
        }
    }

    #[test]
    fn names_are_unique() {
        let mut names: Vec<&str> = Stage::ALL.iter().map(|s| s.name()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), Stage::COUNT);
    }
}
