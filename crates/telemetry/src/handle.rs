//! The [`Telemetry`] handle threaded through the pipeline.

use crate::histogram::{Histogram, HistogramSnapshot};
use crate::history::{FiringHistory, FiringRecord, HistoryMeta};
use crate::stage::Stage;
use crate::trace::{RingBufferSink, TraceRecord, TraceSink};
use parking_lot::RwLock;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering::Relaxed};
use std::sync::Arc;
use std::time::Instant;

/// Per-stage storage: a counter plus a value histogram.
#[derive(Debug, Default)]
struct StageCell {
    count: AtomicU64,
    hist: Histogram,
}

/// Which rule body a per-rule latency belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BodyKind {
    /// The rule's condition.
    Condition,
    /// The rule's action.
    Action,
}

/// Per-rule latency histograms (condition and action bodies).
#[derive(Debug, Default)]
struct RuleCell {
    condition: Histogram,
    action: Histogram,
}

/// A started wall-clock timer, or nothing when telemetry was disabled
/// at start time — so the disabled path never reads the clock.
#[derive(Debug, Clone, Copy)]
pub struct Timer(Option<Instant>);

impl Timer {
    /// A timer that records nothing.
    pub const fn off() -> Self {
        Timer(None)
    }

    /// Nanoseconds since the timer started (`None` if it never did).
    #[inline]
    pub fn elapsed_ns(&self) -> Option<u64> {
        self.0.map(|t0| t0.elapsed().as_nanos() as u64)
    }
}

/// The shared observability handle: per-stage counters and histograms,
/// per-rule body latencies, and a structured trace ring.
///
/// One handle is created per [`Database`] and cloned (via `Arc`) into
/// the rule engine, each rule's detector, and the WAL, so a single
/// snapshot sees the whole pipeline.
///
/// All instrumentation entry points are gated on one relaxed atomic
/// load; with telemetry disabled (the default) they cost a single
/// predictable branch.
///
/// [`Database`]: https://docs.rs/sentinel-db
pub struct Telemetry {
    enabled: AtomicBool,
    tracing: AtomicBool,
    history: AtomicBool,
    seq: AtomicU64,
    firing_seq: AtomicU64,
    stages: [StageCell; Stage::COUNT],
    rules: RwLock<BTreeMap<String, Arc<RuleCell>>>,
    ring: RingBufferSink,
    firings: FiringHistory,
    custom: RwLock<Option<Arc<dyn TraceSink>>>,
}

impl std::fmt::Debug for Telemetry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Telemetry")
            .field("enabled", &self.is_enabled())
            .field("tracing", &self.is_tracing())
            .field("history", &self.is_history())
            .field("trace_buffered", &self.ring.len())
            .field("firings_buffered", &self.firings.len())
            .finish()
    }
}

impl Telemetry {
    /// A disabled handle whose trace ring holds at most
    /// `trace_capacity` records and whose firing-history ring uses the
    /// same capacity.
    pub fn new(trace_capacity: usize) -> Self {
        Self::with_capacities(trace_capacity, trace_capacity)
    }

    /// A disabled handle with separate trace-ring and firing-history
    /// capacities.
    pub fn with_capacities(trace_capacity: usize, history_capacity: usize) -> Self {
        Telemetry {
            enabled: AtomicBool::new(false),
            tracing: AtomicBool::new(false),
            history: AtomicBool::new(false),
            seq: AtomicU64::new(0),
            firing_seq: AtomicU64::new(0),
            stages: std::array::from_fn(|_| StageCell::default()),
            rules: RwLock::new(BTreeMap::new()),
            ring: RingBufferSink::new(trace_capacity),
            firings: FiringHistory::new(history_capacity),
            custom: RwLock::new(None),
        }
    }

    /// A shared disabled handle (convenience for `Arc::new(Self::new(..))`).
    pub fn shared(trace_capacity: usize) -> Arc<Self> {
        Arc::new(Self::new(trace_capacity))
    }

    // -- gating ---------------------------------------------------------

    /// Are counters and histograms being recorded?
    #[inline]
    pub fn is_enabled(&self) -> bool {
        self.enabled.load(Relaxed)
    }

    /// Turn counter/histogram recording on or off.
    pub fn set_enabled(&self, on: bool) {
        self.enabled.store(on, Relaxed);
    }

    /// Are structured trace records being captured? (Only meaningful
    /// while enabled.)
    #[inline]
    pub fn is_tracing(&self) -> bool {
        self.tracing.load(Relaxed)
    }

    /// Turn trace capture on or off. Tracing also requires
    /// [`set_enabled`](Self::set_enabled)`(true)`.
    pub fn set_tracing(&self, on: bool) {
        self.tracing.store(on, Relaxed);
    }

    /// Is firing history (causal lineage) being recorded? Independent
    /// of [`is_enabled`](Self::is_enabled): the history ring records
    /// whenever this flag is on; only the `lineage_record` stage
    /// counter additionally requires counters to be enabled.
    #[inline]
    pub fn is_history(&self) -> bool {
        self.history.load(Relaxed)
    }

    /// Turn firing-history capture on or off.
    pub fn set_history(&self, on: bool) {
        self.history.store(on, Relaxed);
    }

    // -- recording ------------------------------------------------------

    /// Count one firing of `stage` with no value. `subject` is evaluated
    /// only if tracing is on.
    #[inline]
    pub fn hit<F: FnOnce() -> String>(&self, stage: Stage, at: u64, subject: F) {
        if !self.is_enabled() {
            return;
        }
        self.record_inner(stage, at, None, subject);
    }

    /// Count one firing of `stage` and record `value` into its
    /// histogram. `subject` is evaluated only if tracing is on.
    #[inline]
    pub fn observe<F: FnOnce() -> String>(&self, stage: Stage, at: u64, value: u64, subject: F) {
        if !self.is_enabled() {
            return;
        }
        self.record_inner(stage, at, Some(value), subject);
    }

    /// Start a wall-clock timer — a no-op [`Timer::off`] when disabled,
    /// so the disabled path never touches the clock.
    #[inline]
    pub fn timer(&self) -> Timer {
        if self.is_enabled() {
            Timer(Some(Instant::now()))
        } else {
            Timer::off()
        }
    }

    /// Record the elapsed time of `timer` into `stage` (no-op for a
    /// [`Timer::off`]).
    #[inline]
    pub fn observe_timer<F: FnOnce() -> String>(
        &self,
        stage: Stage,
        at: u64,
        timer: Timer,
        subject: F,
    ) {
        if let Some(ns) = timer.elapsed_ns() {
            self.observe(stage, at, ns, subject);
        }
    }

    /// Allocate the next [`FiringId`](crate::FiringId) value. Ids start
    /// at 1 so that 0 can mark "never stamped". Callers gate on
    /// [`is_history`](Self::is_history); minting is not itself gated.
    #[inline]
    pub fn next_firing_id(&self) -> u64 {
        self.firing_seq.fetch_add(1, Relaxed) + 1
    }

    /// Append one firing record to the history ring. The record is
    /// built lazily: with history disabled (the default) this is one
    /// relaxed load and a branch, and `make` is never evaluated.
    #[inline]
    pub fn record_firing<F: FnOnce() -> FiringRecord>(&self, make: F) {
        if !self.is_history() {
            return;
        }
        self.record_firing_inner(make());
    }

    #[cold]
    fn record_firing_inner(&self, rec: FiringRecord) {
        self.observe(
            Stage::LineageRecord,
            rec.occurrence,
            u64::from(rec.depth),
            || format!("{} {}", rec.rule, rec.id),
        );
        self.firings.record(rec);
    }

    /// Start a wall-clock timer gated on the *history* flag instead of
    /// the counters flag — used to time whole firings for their
    /// lineage records without forcing counters on.
    #[inline]
    pub fn history_timer(&self) -> Timer {
        if self.is_history() {
            Timer(Some(Instant::now()))
        } else {
            Timer::off()
        }
    }

    /// Record a body latency against a rule's private histograms.
    pub fn observe_rule(&self, rule: &str, kind: BodyKind, ns: u64) {
        if !self.is_enabled() {
            return;
        }
        let cell = {
            let rules = self.rules.read();
            rules.get(rule).cloned()
        };
        let cell = cell.unwrap_or_else(|| {
            self.rules
                .write()
                .entry(rule.to_string())
                .or_default()
                .clone()
        });
        match kind {
            BodyKind::Condition => cell.condition.record(ns),
            BodyKind::Action => cell.action.record(ns),
        }
    }

    #[cold]
    fn trace_inner(&self, stage: Stage, at: u64, value: u64, subject: String) {
        let rec = TraceRecord {
            seq: self.seq.fetch_add(1, Relaxed),
            at,
            stage,
            subject,
            value,
        };
        if let Some(sink) = self.custom.read().clone() {
            sink.record(rec.clone());
        }
        self.ring.record(rec);
    }

    #[inline]
    fn record_inner<F: FnOnce() -> String>(
        &self,
        stage: Stage,
        at: u64,
        value: Option<u64>,
        subject: F,
    ) {
        let cell = &self.stages[stage.index()];
        cell.count.fetch_add(1, Relaxed);
        if let Some(v) = value {
            cell.hist.record(v);
        }
        if self.is_tracing() {
            self.trace_inner(stage, at, value.unwrap_or(0), subject());
        }
    }

    // -- inspection -----------------------------------------------------

    /// Count of firings of one stage.
    pub fn stage_count(&self, stage: Stage) -> u64 {
        self.stages[stage.index()].count.load(Relaxed)
    }

    /// The built-in trace ring.
    pub fn ring(&self) -> &RingBufferSink {
        &self.ring
    }

    /// The firing-history ring.
    pub fn firings(&self) -> &FiringHistory {
        &self.firings
    }

    /// The most recent `n` trace records, oldest first.
    pub fn trace_dump(&self, n: usize) -> Vec<TraceRecord> {
        self.ring.dump(n)
    }

    /// The most recent `n` firing records, oldest first.
    pub fn firing_dump(&self, n: usize) -> Vec<FiringRecord> {
        self.firings.dump(n)
    }

    /// Install (or clear) an additional sink that receives every trace
    /// record alongside the ring.
    pub fn set_sink(&self, sink: Option<Arc<dyn TraceSink>>) {
        *self.custom.write() = sink;
    }

    /// Zero all counters, histograms, per-rule latencies, and the ring
    /// (benchmark warm-up / `reset_stats` parity). Enablement flags are
    /// left as they are.
    pub fn reset(&self) {
        for cell in &self.stages {
            cell.count.store(0, Relaxed);
            cell.hist.reset();
        }
        self.rules.write().clear();
        self.ring.clear();
        self.firings.clear();
        self.seq.store(0, Relaxed);
        self.firing_seq.store(0, Relaxed);
    }

    /// A serializable copy of everything recorded so far.
    pub fn snapshot(&self) -> TelemetrySnapshot {
        let stages = Stage::ALL
            .iter()
            .map(|&s| {
                let cell = &self.stages[s.index()];
                StageSnapshot {
                    stage: s.name().to_string(),
                    unit: s.unit().to_string(),
                    count: cell.count.load(Relaxed),
                    values: cell.hist.snapshot(),
                }
            })
            .collect();
        let rules = self
            .rules
            .read()
            .iter()
            .map(|(name, cell)| RuleLatencySnapshot {
                rule: name.clone(),
                condition: cell.condition.snapshot(),
                action: cell.action.snapshot(),
            })
            .collect();
        TelemetrySnapshot {
            enabled: self.is_enabled(),
            tracing: self.is_tracing(),
            history_enabled: self.is_history(),
            stages,
            rules,
            trace: TraceMeta {
                recorded: self.ring.recorded(),
                buffered: self.ring.len() as u64,
                dropped: self.ring.dropped(),
                capacity: self.ring.capacity() as u64,
            },
            history: HistoryMeta {
                recorded: self.firings.recorded(),
                buffered: self.firings.len() as u64,
                dropped: self.firings.dropped(),
                capacity: self.firings.capacity() as u64,
                max_depth: self.firings.max_depth(),
            },
        }
    }
}

/// Counters and histogram of one stage, frozen for export.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct StageSnapshot {
    /// The stage's snake_case [`name`](Stage::name).
    pub stage: String,
    /// The [`unit`](Stage::unit) of `values`.
    pub unit: String,
    /// How many times the stage fired.
    pub count: u64,
    /// Distribution of the recorded values (empty for untimed stages).
    pub values: HistogramSnapshot,
}

/// Per-rule body latencies, frozen for export.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct RuleLatencySnapshot {
    /// The rule's name.
    pub rule: String,
    /// Condition-evaluation latencies (ns).
    pub condition: HistogramSnapshot,
    /// Action-execution latencies (ns).
    pub action: HistogramSnapshot,
}

/// State of the trace ring at snapshot time.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct TraceMeta {
    /// Records ever captured.
    pub recorded: u64,
    /// Records currently buffered.
    pub buffered: u64,
    /// Records evicted to make room.
    pub dropped: u64,
    /// Ring capacity.
    pub capacity: u64,
}

/// A serializable point-in-time copy of a [`Telemetry`] handle —
/// embedded in `sentinel-db`'s `FullStats` and consumed by the
/// exporters in [`crate::export`].
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct TelemetrySnapshot {
    /// Was recording enabled at snapshot time?
    pub enabled: bool,
    /// Was trace capture enabled at snapshot time?
    pub tracing: bool,
    /// Was firing-history capture enabled at snapshot time?
    pub history_enabled: bool,
    /// Every stage, in pipeline order.
    pub stages: Vec<StageSnapshot>,
    /// Per-rule body latencies, sorted by rule name.
    pub rules: Vec<RuleLatencySnapshot>,
    /// Trace-ring state.
    pub trace: TraceMeta,
    /// Firing-history ring state.
    pub history: HistoryMeta,
}

impl TelemetrySnapshot {
    /// The snapshot of one stage, by [`Stage`].
    pub fn stage(&self, stage: Stage) -> Option<&StageSnapshot> {
        self.stages.iter().find(|s| s.stage == stage.name())
    }

    /// Firing count of one stage (0 if absent).
    pub fn stage_count(&self, stage: Stage) -> u64 {
        self.stage(stage).map_or(0, |s| s.count)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use parking_lot::Mutex;

    #[test]
    fn disabled_records_nothing() {
        let t = Telemetry::new(16);
        t.hit(Stage::MethodSend, 1, || unreachable!("lazy subject"));
        t.observe(Stage::WalAppend, 1, 99, || unreachable!());
        t.observe_rule("r", BodyKind::Action, 5);
        assert!(t.timer().elapsed_ns().is_none());
        let s = t.snapshot();
        assert!(s.stages.iter().all(|st| st.count == 0));
        assert!(s.rules.is_empty());
        assert_eq!(s.trace.recorded, 0);
    }

    #[test]
    fn enabled_without_tracing_skips_subjects() {
        let t = Telemetry::new(16);
        t.set_enabled(true);
        t.hit(Stage::MethodSend, 1, || unreachable!("tracing is off"));
        assert_eq!(t.stage_count(Stage::MethodSend), 1);
        assert_eq!(t.ring().recorded(), 0);
    }

    #[test]
    fn tracing_captures_records_and_histograms_fill() {
        let t = Telemetry::new(16);
        t.set_enabled(true);
        t.set_tracing(true);
        t.observe(Stage::ConditionEval, 7, 1000, || "rule-x".into());
        t.observe_rule("rule-x", BodyKind::Condition, 1000);
        t.observe_rule("rule-x", BodyKind::Action, 2000);
        let s = t.snapshot();
        let stage = s.stage(Stage::ConditionEval).unwrap();
        assert_eq!(stage.count, 1);
        assert_eq!(stage.values.sum, 1000);
        assert_eq!(s.rules.len(), 1);
        assert_eq!(s.rules[0].rule, "rule-x");
        assert_eq!(s.rules[0].condition.count, 1);
        assert_eq!(s.rules[0].action.sum, 2000);
        let dump = t.trace_dump(10);
        assert_eq!(dump.len(), 1);
        assert_eq!(dump[0].subject, "rule-x");
        assert_eq!(dump[0].at, 7);
    }

    #[test]
    fn custom_sink_sees_records() {
        struct Collect(Mutex<Vec<TraceRecord>>);
        impl TraceSink for Collect {
            fn record(&self, rec: TraceRecord) {
                self.0.lock().push(rec);
            }
        }
        let t = Telemetry::new(4);
        t.set_enabled(true);
        t.set_tracing(true);
        let sink = Arc::new(Collect(Mutex::new(Vec::new())));
        t.set_sink(Some(sink.clone()));
        t.hit(Stage::TxnCommit, 3, || "txn 1".into());
        assert_eq!(sink.0.lock().len(), 1);
        t.set_sink(None);
        t.hit(Stage::TxnCommit, 4, || "txn 2".into());
        assert_eq!(sink.0.lock().len(), 1);
        assert_eq!(t.ring().recorded(), 2);
    }

    #[test]
    fn reset_zeroes_but_keeps_flags() {
        let t = Telemetry::new(4);
        t.set_enabled(true);
        t.set_tracing(true);
        t.observe(Stage::ActionRun, 1, 5, || "r".into());
        t.observe_rule("r", BodyKind::Action, 5);
        t.reset();
        assert!(t.is_enabled() && t.is_tracing());
        assert_eq!(t.stage_count(Stage::ActionRun), 0);
        assert!(t.snapshot().rules.is_empty());
        assert_eq!(t.ring().recorded(), 0);
    }

    #[test]
    fn history_gating_and_snapshot_meta() {
        use crate::history::{FiringCoupling, FiringOutcome};
        use crate::FiringId;
        let t = Telemetry::with_capacities(4, 2);
        // Disabled: no record, the closure never runs, timers stay off.
        t.record_firing(|| unreachable!("history is off"));
        assert!(t.history_timer().elapsed_ns().is_none());
        t.set_history(true);
        assert!(t.history_timer().elapsed_ns().is_some());
        for i in 1..=3u64 {
            let id = t.next_firing_id();
            assert_eq!(id, i);
            t.record_firing(|| FiringRecord {
                id: FiringId(id),
                rule: "r".into(),
                target: 1,
                coupling: FiringCoupling::Deferred,
                parent: None,
                root_occurrence: 9,
                occurrence: 9,
                depth: i as u32 - 1,
                latency_ns: 5,
                outcome: FiringOutcome::Committed,
                lane: Default::default(),
            });
        }
        // History records regardless of the counters flag; the stage
        // counter stays gated on `enabled`.
        assert_eq!(t.stage_count(Stage::LineageRecord), 0);
        let s = t.snapshot();
        assert!(s.history_enabled);
        assert_eq!(s.history.recorded, 3);
        assert_eq!(s.history.buffered, 2);
        assert_eq!(s.history.dropped, 1);
        assert_eq!(s.history.capacity, 2);
        assert_eq!(s.history.max_depth, 2);
        assert_eq!(t.firing_dump(8).len(), 2);
        t.reset();
        assert!(t.is_history(), "reset keeps flags");
        assert!(t.firings().is_empty());
        assert_eq!(t.next_firing_id(), 1, "reset rewinds the id counter");
    }

    #[test]
    fn snapshot_serde_round_trip() {
        let t = Telemetry::new(8);
        t.set_enabled(true);
        t.observe(Stage::WalFsync, 0, 12_345, String::new);
        t.observe_rule("r1", BodyKind::Condition, 10);
        let s = t.snapshot();
        let json = serde_json::to_string(&s).unwrap();
        assert_eq!(serde_json::from_str::<TelemetrySnapshot>(&json).unwrap(), s);
        assert_eq!(s.stage_count(Stage::WalFsync), 1);
    }
}
