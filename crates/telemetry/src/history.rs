//! The firing-history ring: causal lineage records for rule firings.
//!
//! The paper makes events and rules first-class objects; this module
//! does the same for *firings*. Every firing the engine schedules is
//! stamped with a [`FiringId`] plus its causal coordinates — the firing
//! whose action raised the triggering occurrence (`parent`), the
//! occurrence at the root of the cascade (`root`), and its cascade
//! `depth` — and, once its outcome is known, a [`FiringRecord`] lands
//! in the bounded [`FiringHistory`] ring. The `sentinel-db` meta views
//! project this ring into queryable `firings` / `cascade_edges`
//! relations, and `sentinel-analyze` reconciles it against the static
//! triggering graph.
//!
//! Like the trace ring, the history ring is bounded and sheds the
//! oldest record on overflow, counting what it dropped — a cascade
//! remains reconstructable from any node that is still buffered, and
//! the `dropped` counter says how much of the past has scrolled away.
//! The recording path is gated on one relaxed atomic load
//! ([`Telemetry::is_history`](crate::Telemetry::is_history)), so with
//! history disabled (the default) a firing costs a single predictable
//! branch.

use parking_lot::Mutex;
use serde::{Deserialize, Serialize};
use std::collections::VecDeque;
use std::fmt;

/// Identifier of one rule firing, unique per [`Telemetry`]
/// (crate::Telemetry) handle lifetime. Ids start at 1; `0` marks a
/// firing that was never stamped (history disabled when it was
/// scheduled).
#[derive(
    Debug, Clone, Copy, Default, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize,
)]
pub struct FiringId(pub u64);

impl fmt::Display for FiringId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "firing#{}", self.0)
    }
}

/// Coupling mode of a recorded firing. Mirrors `CouplingMode` in
/// `sentinel-rules` (which depends on this crate, so the mirror lives
/// here).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum FiringCoupling {
    /// Ran inline, inside the raising transaction.
    Immediate,
    /// Ran at commit of the raising transaction.
    Deferred,
    /// Ran in its own follow-on transaction.
    Detached,
}

impl FiringCoupling {
    /// Stable lowercase name, used as a label in exports and meta rows.
    pub const fn as_str(self) -> &'static str {
        match self {
            FiringCoupling::Immediate => "immediate",
            FiringCoupling::Deferred => "deferred",
            FiringCoupling::Detached => "detached",
        }
    }
}

impl fmt::Display for FiringCoupling {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// Which execution lane actually ran a recorded firing: the default
/// serial path, or a scheduler worker inside a parallel conflict group.
/// Reconciliation uses this to report rules whose parallel eligibility
/// was never exercised.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ExecutionLane {
    /// Ran on the serial path (including serial fallbacks and re-runs).
    #[default]
    Serial,
    /// Ran on a scheduler worker as part of a parallel conflict group.
    Parallel,
}

impl ExecutionLane {
    /// Stable lowercase name, used as a label in exports and meta rows.
    pub const fn as_str(self) -> &'static str {
        match self {
            ExecutionLane::Serial => "serial",
            ExecutionLane::Parallel => "parallel",
        }
    }
}

impl fmt::Display for ExecutionLane {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// How a firing ended.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum FiringOutcome {
    /// The firing ran and the transaction that carried it committed.
    Committed,
    /// The firing ran inside a transaction that rolled back (or its
    /// own body returned an error).
    Aborted,
    /// The firing was shed unexecuted by detached-queue backpressure.
    Shed,
}

impl FiringOutcome {
    /// Stable lowercase name, used as a label in exports and meta rows.
    pub const fn as_str(self) -> &'static str {
        match self {
            FiringOutcome::Committed => "committed",
            FiringOutcome::Aborted => "aborted",
            FiringOutcome::Shed => "shed",
        }
    }
}

impl fmt::Display for FiringOutcome {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// One completed (or shed) rule firing, with its causal coordinates.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FiringRecord {
    /// The firing's identity (unique per telemetry handle).
    pub id: FiringId,
    /// Name of the rule that fired.
    pub rule: String,
    /// Raw oid of the object whose occurrence completed the rule's
    /// event (0 when no object was in scope).
    pub target: u64,
    /// The firing's coupling mode.
    pub coupling: FiringCoupling,
    /// The firing whose action raised the triggering occurrence
    /// (`None` for a cascade root).
    pub parent: Option<FiringId>,
    /// OccId (logical-clock reading) of the occurrence at the root of
    /// the cascade this firing belongs to.
    pub root_occurrence: u64,
    /// OccId of the occurrence that completed this firing's event.
    pub occurrence: u64,
    /// Cascade depth: 0 for a root firing, parent's depth + 1 below.
    pub depth: u32,
    /// Wall-clock nanoseconds from condition start to action end
    /// (0 for shed firings, which never ran).
    pub latency_ns: u64,
    /// How the firing ended.
    pub outcome: FiringOutcome,
    /// The execution lane that ran the firing (serial unless a
    /// scheduler worker executed it).
    pub lane: ExecutionLane,
}

impl fmt::Display for FiringRecord {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} rule={} @{} occ={} root={} depth={} {} {} {}ns",
            self.id,
            self.rule,
            self.target,
            self.occurrence,
            self.root_occurrence,
            self.depth,
            self.coupling,
            self.outcome,
            self.latency_ns,
        )?;
        if let Some(p) = self.parent {
            write!(f, " parent={p}")?;
        }
        Ok(())
    }
}

#[derive(Debug, Default)]
struct HistoryInner {
    buf: VecDeque<FiringRecord>,
    recorded: u64,
    dropped: u64,
    max_depth: u32,
}

/// A bounded, mutex-guarded ring of the most recent firing records.
///
/// Overflow sheds the *oldest* record and counts it in
/// [`dropped`](Self::dropped), exactly like the detached queue under
/// `BackpressurePolicy::Shed` — bounded memory, honest accounting.
/// The `max_depth` watermark survives eviction and reset-free runs, so
/// the deepest cascade ever seen is reportable even after its records
/// scrolled out.
#[derive(Debug)]
pub struct FiringHistory {
    capacity: usize,
    inner: Mutex<HistoryInner>,
}

impl FiringHistory {
    /// A ring holding at most `capacity` records (capacity 0 records
    /// nothing).
    pub fn new(capacity: usize) -> Self {
        FiringHistory {
            capacity,
            inner: Mutex::new(HistoryInner::default()),
        }
    }

    /// Maximum records held.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Records currently buffered.
    pub fn len(&self) -> usize {
        self.inner.lock().buf.len()
    }

    /// Is the ring empty?
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Total records ever offered to the ring.
    pub fn recorded(&self) -> u64 {
        self.inner.lock().recorded
    }

    /// Records shed (oldest-first) to stay within capacity.
    pub fn dropped(&self) -> u64 {
        self.inner.lock().dropped
    }

    /// Deepest cascade depth ever recorded (watermark; survives
    /// eviction).
    pub fn max_depth(&self) -> u32 {
        self.inner.lock().max_depth
    }

    /// Append one record, shedding the oldest if the ring is full.
    pub fn record(&self, rec: FiringRecord) {
        let mut inner = self.inner.lock();
        inner.max_depth = inner.max_depth.max(rec.depth);
        inner.recorded += 1;
        if self.capacity == 0 {
            inner.dropped += 1;
            return;
        }
        if inner.buf.len() == self.capacity {
            inner.buf.pop_front();
            inner.dropped += 1;
        }
        inner.buf.push_back(rec);
    }

    /// The most recent `n` records, oldest first.
    pub fn dump(&self, n: usize) -> Vec<FiringRecord> {
        let inner = self.inner.lock();
        let skip = inner.buf.len().saturating_sub(n);
        inner.buf.iter().skip(skip).cloned().collect()
    }

    /// Every buffered record, oldest first.
    pub fn dump_all(&self) -> Vec<FiringRecord> {
        self.inner.lock().buf.iter().cloned().collect()
    }

    /// Forget everything buffered (counters and watermark included).
    pub fn clear(&self) {
        let mut inner = self.inner.lock();
        inner.buf.clear();
        inner.recorded = 0;
        inner.dropped = 0;
        inner.max_depth = 0;
    }
}

/// State of the firing-history ring at snapshot time.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct HistoryMeta {
    /// Firing records ever captured.
    pub recorded: u64,
    /// Records currently buffered.
    pub buffered: u64,
    /// Records shed to stay within capacity.
    pub dropped: u64,
    /// Ring capacity.
    pub capacity: u64,
    /// Deepest cascade depth ever recorded.
    pub max_depth: u32,
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(id: u64, depth: u32) -> FiringRecord {
        FiringRecord {
            id: FiringId(id),
            rule: format!("r{id}"),
            target: 7,
            coupling: FiringCoupling::Immediate,
            parent: if depth == 0 {
                None
            } else {
                Some(FiringId(id - 1))
            },
            root_occurrence: 1,
            occurrence: id,
            depth,
            latency_ns: 10 * id,
            outcome: FiringOutcome::Committed,
            lane: ExecutionLane::default(),
        }
    }

    #[test]
    fn ring_sheds_oldest_and_keeps_watermark() {
        let h = FiringHistory::new(2);
        h.record(rec(1, 0));
        h.record(rec(2, 1));
        h.record(rec(3, 2));
        assert_eq!(h.len(), 2);
        assert_eq!(h.recorded(), 3);
        assert_eq!(h.dropped(), 1);
        assert_eq!(h.max_depth(), 2);
        let ids: Vec<u64> = h.dump(10).iter().map(|r| r.id.0).collect();
        assert_eq!(ids, [2, 3]);
        let ids: Vec<u64> = h.dump(1).iter().map(|r| r.id.0).collect();
        assert_eq!(ids, [3]);
        h.clear();
        assert!(h.is_empty());
        assert_eq!(h.recorded(), 0);
        assert_eq!(h.max_depth(), 0);
    }

    #[test]
    fn zero_capacity_records_nothing_but_counts() {
        let h = FiringHistory::new(0);
        h.record(rec(1, 3));
        assert!(h.is_empty());
        assert_eq!(h.recorded(), 1);
        assert_eq!(h.dropped(), 1);
        // The watermark still tracks what passed through.
        assert_eq!(h.max_depth(), 3);
    }

    #[test]
    fn record_serde_round_trip_and_display() {
        let r = rec(4, 1);
        let json = serde_json::to_string(&r).unwrap();
        assert_eq!(serde_json::from_str::<FiringRecord>(&json).unwrap(), r);
        let s = r.to_string();
        assert!(s.contains("firing#4"));
        assert!(s.contains("immediate"));
        assert!(s.contains("committed"));
        assert!(s.contains("parent=firing#3"));
        assert_eq!(FiringOutcome::Shed.to_string(), "shed");
        assert_eq!(FiringCoupling::Detached.to_string(), "detached");
    }
}
