//! Coupling modes (paper §4.4, the `Coupling mode` rule attribute).
//!
//! A coupling mode says *when*, relative to the triggering transaction, a
//! triggered rule's condition/action run:
//!
//! * **Immediate** — right where the event was raised, inside the
//!   triggering transaction (Figure 9's Marriage rule uses this so its
//!   `abort` can kill the transaction before the update takes).
//! * **Deferred** — queued, executed at the end of the triggering
//!   transaction, still inside it (classic integrity-constraint timing).
//! * **Detached** — executed in a separate transaction after the
//!   triggering transaction commits.

use serde::{Deserialize, Serialize};

/// When a triggered rule executes relative to its triggering transaction.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub enum CouplingMode {
    /// At the triggering point, inside the transaction.
    #[default]
    Immediate,
    /// At commit time, inside the transaction.
    Deferred,
    /// In a separate transaction after commit.
    Detached,
}

impl CouplingMode {
    /// Short name used in experiment tables.
    pub fn name(self) -> &'static str {
        match self {
            CouplingMode::Immediate => "immediate",
            CouplingMode::Deferred => "deferred",
            CouplingMode::Detached => "detached",
        }
    }
}

impl From<CouplingMode> for sentinel_telemetry::FiringCoupling {
    fn from(m: CouplingMode) -> Self {
        match m {
            CouplingMode::Immediate => Self::Immediate,
            CouplingMode::Deferred => Self::Deferred,
            CouplingMode::Detached => Self::Detached,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_immediate() {
        // Figure 9 spells the mode out as `M: Immediate`; it is also the
        // only mode that makes an aborting constraint meaningful.
        assert_eq!(CouplingMode::default(), CouplingMode::Immediate);
    }

    #[test]
    fn serde_round_trip() {
        for m in [
            CouplingMode::Immediate,
            CouplingMode::Deferred,
            CouplingMode::Detached,
        ] {
            let s = serde_json::to_string(&m).unwrap();
            assert_eq!(serde_json::from_str::<CouplingMode>(&s).unwrap(), m);
        }
    }
}
