//! The rule engine: detection fan-out and firing scheduling.
//!
//! Figure 2 of the paper: reactive objects propagate primitive events to
//! the notifiable objects subscribed to them; each rule passes the events
//! to its local detector; when the detector signals, the rule checks its
//! condition and runs its action. This engine implements everything up
//! to (but not including) body execution: the database facade executes
//! the [`ReadyFiring`]s the engine hands back, because execution needs
//! the full `World`, which owns the engine.

use crate::body::{ActionFn, CondFn, Firing, Lineage, RuleBodyRegistry};
use crate::conflict::{ConflictResolver, FifoResolver};
use crate::coupling::CouplingMode;
use crate::rule::{Rule, RuleDef, RuleId, RuleStats};
use crate::subscription::SubscriptionManager;
use sentinel_events::{
    DetectorCaps, PrimitiveOccurrence, TimeSource, TimerId, TimerRow, TimerWheel,
};
use sentinel_object::{ClassId, ClassRegistry, EventSym, ObjectError, Oid, Result};
use sentinel_telemetry::{
    FiringCoupling, FiringId, FiringOutcome, FiringRecord, Stage, Telemetry, Timer,
};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// A triggered rule whose bodies are resolved and which is ready to run.
#[derive(Clone)]
pub struct ReadyFiring {
    /// The rule's priority (consumed by conflict resolvers).
    pub priority: i32,
    /// The coupling mode the firing was scheduled under (recorded into
    /// its lineage record by the executor).
    pub coupling: CouplingMode,
    /// Resolved condition body.
    pub condition: CondFn,
    /// Resolved action body.
    pub action: ActionFn,
    /// What triggered and with which occurrence.
    pub firing: Firing,
    /// Conflict-group component the rule belonged to when the firing was
    /// scheduled (stamped from the engine's conflict tags, if any).
    /// `None` means "not known to be parallel-safe" — the scheduler runs
    /// such firings on the serial path.
    pub group: Option<u32>,
}

impl std::fmt::Debug for ReadyFiring {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ReadyFiring")
            .field("rule", &self.firing.rule)
            .field("name", &self.firing.rule_name)
            .field("priority", &self.priority)
            .field("group", &self.group)
            .finish()
    }
}

/// A detached firing waiting in the queue, stamped with its enqueue time
/// so the drain can report queue-wait latency (`detached_queue_wait`).
#[derive(Debug, Clone)]
struct QueuedDetached {
    ready: ReadyFiring,
    queued: std::time::Instant,
}

/// What to do when a detached firing arrives and the detached queue is
/// already at capacity.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub enum BackpressurePolicy {
    /// Admit the firing anyway; the committing side must drain the
    /// overflow inline before acknowledging the commit, so the producer
    /// pays the latency and the queue returns to its cap.
    #[default]
    Block,
    /// Drop the firing and count it in
    /// [`EngineStats::detached_shed`] — the queue never exceeds its cap.
    Shed,
}

/// Engine-wide counters (experiments E3, E5, E6).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct EngineStats {
    /// Primitive occurrences offered to the engine.
    pub occurrences: u64,
    /// Deliveries of an occurrence to a subscribed rule's detector — the
    /// "rule checking" work the subscription mechanism minimises.
    pub notifications: u64,
    /// Firings routed with immediate coupling.
    pub immediate: u64,
    /// Firings routed with deferred coupling.
    pub deferred: u64,
    /// Firings routed with detached coupling.
    pub detached: u64,
    /// Detached firings dropped at a full queue under
    /// [`BackpressurePolicy::Shed`].
    pub detached_shed: u64,
}

/// Live engine counters: the atomic twin of [`EngineStats`], shared
/// (via `Arc`) with stats readers so snapshots need no engine access.
#[derive(Debug, Default)]
pub struct EngineCounters {
    occurrences: AtomicU64,
    notifications: AtomicU64,
    immediate: AtomicU64,
    deferred: AtomicU64,
    detached: AtomicU64,
    detached_shed: AtomicU64,
}

impl EngineCounters {
    #[inline]
    fn bump(field: &AtomicU64) {
        field.fetch_add(1, Ordering::Relaxed);
    }

    /// Point-in-time copy of every counter.
    pub fn snapshot(&self) -> EngineStats {
        EngineStats {
            occurrences: self.occurrences.load(Ordering::Relaxed),
            notifications: self.notifications.load(Ordering::Relaxed),
            immediate: self.immediate.load(Ordering::Relaxed),
            deferred: self.deferred.load(Ordering::Relaxed),
            detached: self.detached.load(Ordering::Relaxed),
            detached_shed: self.detached_shed.load(Ordering::Relaxed),
        }
    }

    /// Zero every counter (benchmark warm-up).
    pub fn reset(&self) {
        for f in [
            &self.occurrences,
            &self.notifications,
            &self.immediate,
            &self.deferred,
            &self.detached,
            &self.detached_shed,
        ] {
            f.store(0, Ordering::Relaxed);
        }
    }
}

/// Keyed dispatch over `(subscription target, event symbol)`.
///
/// Built lazily from the subscription tables plus each rule's detector
/// *alphabet* (the interned primitive-event symbols that can advance it,
/// closed over subclasses). An occurrence then notifies only the rules
/// whose alphabet contains its symbol, instead of every subscriber of
/// the generating object. Rules with an unbounded alphabet (`Plus`
/// deadlines are signalled by any subsequent occurrence) go in the
/// *broad* tables and hear everything from their subscribed producers.
///
/// Validity is version-based: the index records the schema size, the
/// subscription generation, and the engine epoch it was built at, and is
/// rebuilt on any mismatch. That keeps it correct even though
/// `engine.subscriptions` is a public field mutable behind the engine's
/// back.
#[derive(Debug, Default)]
struct RoutingIndex {
    /// Schema size at build time (the registry is append-only).
    schema_len: usize,
    /// Subscription-table generation at build time.
    subs_gen: u64,
    /// Engine epoch (rule add/remove/enable/disable) at build time.
    epoch: u64,
    /// Instance subscriptions of symbol-bounded rules.
    by_object: HashMap<(Oid, EventSym), Vec<RuleId>>,
    /// Instance subscriptions of unbounded (broad) rules.
    broad_by_object: HashMap<Oid, Vec<RuleId>>,
    /// Class subscriptions of symbol-bounded rules. A symbol names its
    /// dynamic class, so subclass closure is resolved at build time and
    /// dispatch is a single lookup — no linearization walk.
    by_class_sym: HashMap<EventSym, Vec<RuleId>>,
    /// Class subscriptions of unbounded rules, looked up along the
    /// occurrence's class linearization (only when non-empty).
    broad_by_class: HashMap<ClassId, Vec<RuleId>>,
}

impl RoutingIndex {
    fn clear(&mut self) {
        self.by_object.clear();
        self.broad_by_object.clear();
        self.by_class_sym.clear();
        self.broad_by_class.clear();
    }
}

/// Append `list` to `out`, skipping rules already present. Fan-outs are
/// small, so a linear scan beats hashing and allocates nothing.
fn push_unique(out: &mut Vec<RuleId>, list: Option<&Vec<RuleId>>) {
    if let Some(list) = list {
        for &r in list {
            if !out.contains(&r) {
                out.push(r);
            }
        }
    }
}

/// Route one ready firing to its coupling destination — the immediate
/// batch, the deferred queue, or the (bounded) detached queue. Shared by
/// the occurrence path and the timer-drain path; takes the queues as
/// disjoint field borrows because the caller holds a rule borrow.
#[allow(clippy::too_many_arguments)]
fn route_ready(
    ready: ReadyFiring,
    rule_name: &Arc<str>,
    target: Oid,
    at: u64,
    immediate: &mut Vec<ReadyFiring>,
    deferred: &mut Vec<ReadyFiring>,
    detached: &mut std::collections::VecDeque<QueuedDetached>,
    detached_cap: usize,
    detached_policy: BackpressurePolicy,
    stats: &EngineCounters,
    telemetry: &Option<Arc<Telemetry>>,
) {
    let stage = match ready.coupling {
        CouplingMode::Immediate => {
            EngineCounters::bump(&stats.immediate);
            immediate.push(ready);
            Some(Stage::FiringImmediate)
        }
        CouplingMode::Deferred => {
            EngineCounters::bump(&stats.deferred);
            deferred.push(ready);
            Some(Stage::FiringDeferred)
        }
        CouplingMode::Detached => {
            if detached.len() >= detached_cap && detached_policy == BackpressurePolicy::Shed {
                // Full queue, shed policy: drop the firing rather than
                // grow without bound — but leave a lineage record, so
                // cascade trees show the shed firing instead of a
                // silent gap.
                EngineCounters::bump(&stats.detached_shed);
                if let Some(tel) = telemetry {
                    let lin = ready.firing.lineage;
                    let end = ready.firing.occurrence.end;
                    tel.record_firing(|| FiringRecord {
                        id: FiringId(lin.id),
                        rule: rule_name.to_string(),
                        target: target.0,
                        coupling: FiringCoupling::Detached,
                        parent: lin.parent.map(FiringId),
                        root_occurrence: lin.root,
                        occurrence: end,
                        depth: lin.depth,
                        latency_ns: 0,
                        outcome: FiringOutcome::Shed,
                        lane: Default::default(),
                    });
                }
                None
            } else {
                EngineCounters::bump(&stats.detached);
                detached.push_back(QueuedDetached {
                    ready,
                    queued: std::time::Instant::now(),
                });
                Some(Stage::FiringDetached)
            }
        }
    };
    if let (Some(tel), Some(stage)) = (telemetry, stage) {
        // Lazy: the closure runs only when tracing is on.
        tel.hit(stage, at, || rule_name.to_string());
    }
}

/// Detection and scheduling for a set of first-class rules.
pub struct RuleEngine {
    rules: HashMap<RuleId, Rule>,
    by_name: HashMap<String, RuleId>,
    by_oid: HashMap<Oid, RuleId>,
    /// Named condition/action bodies (the PMF analog).
    pub bodies: RuleBodyRegistry,
    /// The consumer lists connecting rules to reactive objects.
    pub subscriptions: SubscriptionManager,
    resolver: Box<dyn ConflictResolver>,
    caps: DetectorCaps,
    next_rule: u64,
    deferred: Vec<ReadyFiring>,
    /// Bounded detached-firing queue: each entry remembers when it was
    /// scheduled so the drain can report queue-wait latency.
    detached: std::collections::VecDeque<QueuedDetached>,
    detached_cap: usize,
    detached_policy: BackpressurePolicy,
    /// Queue length at [`begin_capture`](Self::begin_capture): an abort
    /// discards only the aborting transaction's detached work, not
    /// firings earlier committed transactions already queued.
    detached_floor: usize,
    stats: Arc<EngineCounters>,
    scratch: Vec<RuleId>,
    /// Lazily built `(target, symbol)` dispatch index; `None` until the
    /// first routed occurrence and after [`set_routing`](Self::set_routing)
    /// disables it.
    routing: Option<RoutingIndex>,
    routing_enabled: bool,
    /// Bumped on rule add/remove/enable/disable — the rule-side half of
    /// the routing index's validity stamp.
    epoch: u64,
    /// Rules whose detectors have an undo journal open for the
    /// transaction in flight: a rule joins the set (and its journal
    /// starts) the first time it receives an occurrence after
    /// [`begin_capture`](Self::begin_capture).
    capture: Option<std::collections::HashSet<RuleId>>,
    telemetry: Option<Arc<Telemetry>>,
    /// Causal context for firings scheduled by the next occurrence:
    /// `(parent firing id, root occurrence, parent depth)`. Set by the
    /// database facade around each raise while firing history is
    /// enabled; `None` means occurrences start fresh cascades.
    lineage_ctx: Option<(u64, u64, u32)>,
    /// Conflict-group tag per rule, installed by the scheduler after it
    /// compiles a conflict matrix. Rules absent from the map are not
    /// known to be parallel-safe; their firings carry `group: None`.
    conflict_tags: Option<Arc<HashMap<RuleId, u32>>>,
    /// Due-time scheduling for the temporal operators: each timer-bearing
    /// rule's `at`/`every` leaves are registered here when the rule is
    /// added or enabled, and the database drains due fires at dispatch
    /// and deferred-round boundaries.
    timers: TimerWheel,
    /// Routes a fire back to its consumer: `TimerId → (rule, leaf idx)`.
    timer_routes: HashMap<TimerId, (RuleId, usize)>,
    /// Time source handed to every rule's detector (window/aggregate
    /// nodes stamp arrivals with its instant axis).
    time: Option<Arc<TimeSource>>,
}

impl std::fmt::Debug for RuleEngine {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("RuleEngine")
            .field("rules", &self.rules.len())
            .field("resolver", &self.resolver.name())
            .field("stats", &self.stats)
            .finish()
    }
}

impl Default for RuleEngine {
    fn default() -> Self {
        Self::new()
    }
}

impl RuleEngine {
    /// An empty engine with the built-in bodies and FIFO resolution.
    pub fn new() -> Self {
        RuleEngine {
            rules: HashMap::new(),
            by_name: HashMap::new(),
            by_oid: HashMap::new(),
            bodies: RuleBodyRegistry::new(),
            subscriptions: SubscriptionManager::new(),
            resolver: Box::new(FifoResolver),
            caps: DetectorCaps::default(),
            next_rule: 0,
            deferred: Vec::new(),
            detached: std::collections::VecDeque::new(),
            detached_cap: usize::MAX,
            detached_policy: BackpressurePolicy::default(),
            detached_floor: 0,
            stats: Arc::new(EngineCounters::default()),
            scratch: Vec::new(),
            routing: None,
            routing_enabled: true,
            epoch: 0,
            capture: None,
            telemetry: None,
            lineage_ctx: None,
            conflict_tags: None,
            timers: TimerWheel::new(),
            timer_routes: HashMap::new(),
            time: None,
        }
    }

    /// Install the time source: every existing rule's detector (and
    /// every rule added later) reads window instants from it.
    pub fn set_time_source(&mut self, time: Arc<TimeSource>) {
        for rule in self.rules.values_mut() {
            rule.detector.set_time_source(time.clone());
        }
        self.time = Some(time);
    }

    /// Install (or clear) the conflict-group tags stamped onto firings
    /// scheduled from now on. Compiled by the scheduler from the static
    /// analysis; keyed by rule id, valued with the rule's conflict
    /// component.
    pub fn set_conflict_tags(&mut self, tags: Option<Arc<HashMap<RuleId, u32>>>) {
        self.conflict_tags = tags;
    }

    /// The engine epoch: bumped on every rule add/remove/enable/disable.
    /// External caches keyed on the rule set (routing index, conflict
    /// matrix) use it as their validity stamp.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Set (or clear) the causal context stamped onto firings scheduled
    /// by subsequent occurrences: the currently executing firing's id,
    /// its cascade-root occurrence, and its depth. Cleared context means
    /// the next occurrence roots a fresh cascade.
    pub fn set_lineage_context(&mut self, ctx: Option<(u64, u64, u32)>) {
        self.lineage_ctx = ctx;
    }

    /// Turn the `(target, symbol)` routing index on or off. On by
    /// default; disabling falls back to full per-object fan-out (every
    /// subscriber of the generating object is notified) — the baseline
    /// the `dispatch_throughput` benchmark compares against.
    pub fn set_routing(&mut self, enabled: bool) {
        self.routing_enabled = enabled;
        if !enabled {
            self.routing = None;
        }
    }

    /// Is symbol-keyed routing enabled?
    pub fn routing_enabled(&self) -> bool {
        self.routing_enabled
    }

    /// Attach an observability handle; it is propagated to every
    /// existing rule's detector (and to rules added later), labelled
    /// with the rule's name.
    pub fn set_telemetry(&mut self, telemetry: Arc<Telemetry>) {
        for rule in self.rules.values_mut() {
            rule.detector
                .set_telemetry(telemetry.clone(), rule.def.name.as_str());
        }
        self.telemetry = Some(telemetry);
    }

    /// Start transactional detection: until
    /// [`commit_capture`](Self::commit_capture) or
    /// [`abort_capture`](Self::abort_capture), the first delivery to
    /// each rule opens an undo journal on its detector, so an abort can
    /// restore exactly the pre-transaction detection state — including
    /// occurrences a rolled-back detection consumed. Journaling costs
    /// O(1) per state mutation, independent of buffered-state size.
    pub fn begin_capture(&mut self) {
        self.capture = Some(std::collections::HashSet::new());
        self.detached_floor = self.detached.len();
    }

    /// Transaction committed: close the journals.
    pub fn commit_capture(&mut self) {
        if let Some(touched) = self.capture.take() {
            for rid in touched {
                if let Some(rule) = self.rules.get_mut(&rid) {
                    rule.detector.commit_txn();
                }
            }
        }
    }

    /// Transaction aborted: roll every touched rule's detector back.
    pub fn abort_capture(&mut self) {
        if let Some(touched) = self.capture.take() {
            for rid in touched {
                if let Some(rule) = self.rules.get_mut(&rid) {
                    rule.detector.abort_txn();
                }
            }
        }
    }

    /// Install a different conflict-resolution strategy (no application
    /// code changes — paper §3).
    pub fn set_resolver(&mut self, resolver: Box<dyn ConflictResolver>) {
        self.resolver = resolver;
    }

    /// Detector caps applied to rules added from now on.
    pub fn set_detector_caps(&mut self, caps: DetectorCaps) {
        self.caps = caps;
    }

    /// Create a rule object. `oid` is the rule's store identity
    /// ([`Oid::NIL`] when the engine runs storeless). The rule starts
    /// enabled but fires only once subscriptions connect it to event
    /// producers.
    pub fn add_rule(&mut self, def: RuleDef, oid: Oid, registry: &ClassRegistry) -> Result<RuleId> {
        if !self.bodies.has_condition(&def.condition) {
            return Err(ObjectError::BodyNotRegistered {
                kind: "condition",
                name: def.condition,
            });
        }
        if !self.bodies.has_action(&def.action) {
            return Err(ObjectError::BodyNotRegistered {
                kind: "action",
                name: def.action,
            });
        }
        self.add_rule_unchecked(def, oid, registry)
    }

    /// Create a rule without validating that its condition/action bodies
    /// are registered yet. Recovery uses this: rule objects come back
    /// from the log before the application re-registers its code; the
    /// body lookup happens (and errors cleanly) at fire time.
    pub fn add_rule_unchecked(
        &mut self,
        def: RuleDef,
        oid: Oid,
        registry: &ClassRegistry,
    ) -> Result<RuleId> {
        if self.by_name.contains_key(&def.name) {
            return Err(ObjectError::DuplicateRule(def.name));
        }
        self.next_rule += 1;
        let id = RuleId(self.next_rule);
        let name = def.name.clone();
        let mut rule = Rule::instantiate(id, oid, def, registry, self.caps)?;
        // Resolve the body handles now so the first completion doesn't
        // pay the name lookup. Unregistered bodies (the recovery path)
        // stay `None` and resolve — or error — at fire time.
        rule.cached_condition = self.bodies.condition(&rule.def.condition).ok();
        rule.cached_action = self.bodies.action(&rule.def.action).ok();
        rule.bodies_version = self.bodies.version();
        if let Some(tel) = &self.telemetry {
            rule.detector.set_telemetry(tel.clone(), name.as_str());
        }
        if let Some(time) = &self.time {
            rule.detector.set_time_source(time.clone());
        }
        self.rules.insert(id, rule);
        self.by_name.insert(name, id);
        if !oid.is_nil() {
            self.by_oid.insert(oid, id);
        }
        self.schedule_rule_timers(id);
        self.epoch += 1;
        Ok(id)
    }

    /// Register a rule's `at`/`every` leaves on the timer wheel. Periodic
    /// timers start at the first period boundary after the present
    /// instant (the time source's, falling back to the wheel's cursor),
    /// so a rule added late doesn't replay every elapsed period.
    fn schedule_rule_timers(&mut self, id: RuleId) {
        let Some(rule) = self.rules.get(&id) else {
            return;
        };
        let specs = rule.def.event.timer_specs();
        let now = self
            .time
            .as_ref()
            .map(|t| t.instant_now())
            .unwrap_or(0)
            .max(self.timers.cursor());
        for (idx, (due, period)) in specs.into_iter().enumerate() {
            let (due, label): (u64, Arc<str>) = match period {
                Some(p) => {
                    let p = p.max(1);
                    ((now / p + 1) * p, format!("every({p})").into())
                }
                None => (due, format!("at({due})").into()),
            };
            let tid = self.timers.schedule(due, period, id.0, label);
            self.timer_routes.insert(tid, (id, idx));
        }
    }

    fn cancel_rule_timers(&mut self, id: RuleId) {
        self.timers.cancel_owner(id.0);
        self.timer_routes.retain(|_, (r, _)| *r != id);
    }

    /// Re-align every enabled rule's timers to `now` without firing the
    /// elapsed boundaries. Recovery calls this after rebuilding the
    /// catalog: downtime is not replayed — periodic timers resume at the
    /// first boundary after `now`, and one-shot timers already past
    /// catch up on the next drain.
    pub fn reset_timers_to(&mut self, now: u64) {
        let ids: Vec<RuleId> = self.rules.keys().copied().collect();
        for id in &ids {
            self.cancel_rule_timers(*id);
        }
        // The wheel is empty; advancing just moves the cursor so the
        // re-registration below aligns periods to the present.
        let _ = self.timers.advance(now);
        for id in ids {
            if self.rules.get(&id).is_some_and(|r| r.enabled) {
                self.schedule_rule_timers(id);
            }
        }
    }

    /// Delete a rule and all its subscriptions.
    pub fn remove_rule(&mut self, id: RuleId) -> Result<RuleDef> {
        let rule = self
            .rules
            .remove(&id)
            .ok_or_else(|| ObjectError::UnknownRule(format!("{id}")))?;
        self.by_name.remove(&rule.def.name);
        if !rule.oid.is_nil() {
            self.by_oid.remove(&rule.oid);
        }
        self.subscriptions.remove_rule(id);
        self.cancel_rule_timers(id);
        self.epoch += 1;
        Ok(rule.def)
    }

    /// Resolve a rule by name.
    pub fn id_of(&self, name: &str) -> Result<RuleId> {
        self.by_name
            .get(name)
            .copied()
            .ok_or_else(|| ObjectError::UnknownRule(name.to_string()))
    }

    /// Resolve a rule by its store oid (rules-on-rules path).
    pub fn id_of_oid(&self, oid: Oid) -> Option<RuleId> {
        self.by_oid.get(&oid).copied()
    }

    /// Borrow a rule.
    pub fn rule(&self, id: RuleId) -> Result<&Rule> {
        self.rules
            .get(&id)
            .ok_or_else(|| ObjectError::UnknownRule(format!("{id}")))
    }

    /// Mutably borrow a rule (the facade updates its stats after
    /// executing bodies).
    pub fn rule_mut(&mut self, id: RuleId) -> Result<&mut Rule> {
        self.rules
            .get_mut(&id)
            .ok_or_else(|| ObjectError::UnknownRule(format!("{id}")))
    }

    /// Iterate over all rules (unspecified order).
    pub fn iter_rules(&self) -> impl Iterator<Item = &Rule> {
        self.rules.values()
    }

    /// Number of rules.
    pub fn rule_count(&self) -> usize {
        self.rules.len()
    }

    /// Enable a rule. (Figure 7's `Enable` method.) Re-registers the
    /// rule's timers (if it was disabled they were cancelled).
    pub fn enable(&mut self, id: RuleId) -> Result<()> {
        let r = self.rule_mut(id)?;
        let was_enabled = std::mem::replace(&mut r.enabled, true);
        if !was_enabled {
            self.schedule_rule_timers(id);
        }
        self.epoch += 1;
        Ok(())
    }

    /// Disable a rule: it stops receiving and recording events, its
    /// partial detector state is discarded, and its timers stop firing.
    pub fn disable(&mut self, id: RuleId) -> Result<()> {
        let r = self.rule_mut(id)?;
        r.enabled = false;
        r.detector.reset();
        self.cancel_rule_timers(id);
        self.epoch += 1;
        Ok(())
    }

    /// Is the routing index still valid against every mutation source?
    fn routing_fresh(&self, registry: &ClassRegistry) -> bool {
        match &self.routing {
            Some(idx) => {
                idx.schema_len == registry.len()
                    && idx.subs_gen == self.subscriptions.generation()
                    && idx.epoch == self.epoch
            }
            None => false,
        }
    }

    /// (Re)build the routing index from the subscription tables and the
    /// enabled rules' alphabets. Reuses the previous index's allocations.
    fn rebuild_routing(&mut self, registry: &ClassRegistry) {
        for rule in self.rules.values_mut() {
            rule.refresh_alphabet(registry);
        }
        let mut idx = self.routing.take().unwrap_or_default();
        idx.clear();
        idx.schema_len = registry.len();
        idx.subs_gen = self.subscriptions.generation();
        idx.epoch = self.epoch;
        for (oid, list) in self.subscriptions.object_lists() {
            for &rid in list {
                let Some(rule) = self.rules.get(&rid) else {
                    continue; // stale subscription of a deleted rule
                };
                if !rule.enabled {
                    continue;
                }
                match &rule.alphabet {
                    Some(syms) => {
                        for &s in syms {
                            idx.by_object.entry((oid, s)).or_default().push(rid);
                        }
                    }
                    None => idx.broad_by_object.entry(oid).or_default().push(rid),
                }
            }
        }
        for def in registry.iter() {
            let Some(list) = self.subscriptions.class_list(def.id) else {
                continue;
            };
            for &rid in list {
                let Some(rule) = self.rules.get(&rid) else {
                    continue;
                };
                if !rule.enabled {
                    continue;
                }
                match &rule.alphabet {
                    Some(syms) => {
                        for &s in syms {
                            // A symbol names its dynamic class; the rule
                            // hears it only when that class falls under
                            // the subscribed one.
                            if registry.is_subclass(registry.sym_info(s).class, def.id) {
                                idx.by_class_sym.entry(s).or_default().push(rid);
                            }
                        }
                    }
                    None => idx.broad_by_class.entry(def.id).or_default().push(rid),
                }
            }
        }
        self.routing = Some(idx);
    }

    /// Offer one primitive occurrence: deliver it to the rules subscribed
    /// to the generating object (directly or via its class), run their
    /// detectors, and return the **immediate** firings in execution order.
    /// Deferred/detached firings are queued internally for
    /// [`take_deferred`](Self::take_deferred) /
    /// [`take_detached`](Self::take_detached).
    ///
    /// With routing enabled (the default) and the occurrence carrying an
    /// interned symbol, only subscribers whose detector alphabet contains
    /// that symbol are notified. Symbol-less occurrences (methods outside
    /// the declared schema) and disabled routing fall back to notifying
    /// every subscriber of the generating object.
    pub fn on_occurrence(
        &mut self,
        registry: &ClassRegistry,
        occ: &PrimitiveOccurrence,
    ) -> Result<Vec<ReadyFiring>> {
        EngineCounters::bump(&self.stats.occurrences);
        let fan_out_timer = match &self.telemetry {
            Some(t) => t.timer(),
            None => Timer::off(),
        };
        let sym = occ.sym(registry);
        let mut consumers = std::mem::take(&mut self.scratch);
        match (self.routing_enabled, sym) {
            (true, Some(s)) => {
                if !self.routing_fresh(registry) {
                    self.rebuild_routing(registry);
                }
                consumers.clear();
                let idx = self.routing.as_ref().expect("routing index just built");
                push_unique(&mut consumers, idx.by_object.get(&(occ.oid, s)));
                push_unique(&mut consumers, idx.broad_by_object.get(&occ.oid));
                push_unique(&mut consumers, idx.by_class_sym.get(&s));
                if !idx.broad_by_class.is_empty() {
                    for &c in &registry.get(occ.class).linearization {
                        push_unique(&mut consumers, idx.broad_by_class.get(&c));
                    }
                }
            }
            _ => {
                self.subscriptions
                    .consumers(registry, occ.oid, occ.class, &mut consumers);
            }
        }

        let bodies_version = self.bodies.version();
        let history_on = self.telemetry.as_ref().is_some_and(|t| t.is_history());
        let mut immediate = Vec::new();
        for rid in consumers.iter().copied() {
            let Some(rule) = self.rules.get_mut(&rid) else {
                continue; // stale subscription of a deleted rule
            };
            if !rule.enabled {
                continue;
            }
            EngineCounters::bump(&self.stats.notifications);
            rule.stats.notifications += 1;
            if let Some(cap) = self.capture.as_mut() {
                if cap.insert(rid) {
                    rule.detector.begin_txn();
                }
            }
            let completions = rule.detector.process_resolved(registry, occ, sym);
            if completions.is_empty() {
                continue;
            }
            rule.stats.triggered += completions.len() as u64;
            if rule.bodies_version != bodies_version
                || rule.cached_condition.is_none()
                || rule.cached_action.is_none()
            {
                rule.cached_condition = Some(self.bodies.condition(&rule.def.condition)?);
                rule.cached_action = Some(self.bodies.action(&rule.def.action)?);
                rule.bodies_version = bodies_version;
            }
            let condition = rule.cached_condition.as_ref().expect("resolved above");
            let action = rule.cached_action.as_ref().expect("resolved above");
            for occurrence in completions {
                let lineage = if history_on {
                    let tel = self.telemetry.as_ref().expect("history implies telemetry");
                    let id = tel.next_firing_id();
                    match self.lineage_ctx {
                        Some((parent, root, parent_depth)) => Lineage {
                            id,
                            parent: Some(parent),
                            root,
                            depth: parent_depth + 1,
                        },
                        None => Lineage {
                            id,
                            parent: None,
                            root: occurrence.end,
                            depth: 0,
                        },
                    }
                } else {
                    Lineage::default()
                };
                let ready = ReadyFiring {
                    priority: rule.def.priority,
                    coupling: rule.def.coupling,
                    condition: condition.clone(),
                    action: action.clone(),
                    firing: Firing {
                        rule: rid,
                        rule_name: rule.name.clone(),
                        occurrence,
                        lineage,
                    },
                    group: self
                        .conflict_tags
                        .as_ref()
                        .and_then(|t| t.get(&rid).copied()),
                };
                route_ready(
                    ready,
                    &rule.name,
                    occ.oid,
                    occ.at,
                    &mut immediate,
                    &mut self.deferred,
                    &mut self.detached,
                    self.detached_cap,
                    self.detached_policy,
                    &self.stats,
                    &self.telemetry,
                );
            }
        }
        consumers.clear();
        self.scratch = consumers;
        self.resolver.order(&mut immediate);
        if let Some(tel) = &self.telemetry {
            tel.observe_timer(Stage::FanOut, occ.at, fan_out_timer, || {
                format!("{}.{}", occ.oid, occ.method)
            });
        }
        Ok(immediate)
    }

    /// Advance the timer wheel to instant `now` and deliver every due
    /// fire to its owning rule's detector, returning the **immediate**
    /// firings in execution order (deferred/detached firings queue as
    /// usual). Each delivery consumes one sequence number from
    /// `next_seq`, so timer occurrences are totally ordered against
    /// primitive occurrences.
    pub fn drain_timers(
        &mut self,
        registry: &ClassRegistry,
        now: u64,
        mut next_seq: impl FnMut() -> u64,
    ) -> Result<Vec<ReadyFiring>> {
        if self.timers.is_empty() {
            // Keep the cursor tracking `now` even with nothing scheduled,
            // so timers registered later (a rule enabled mid-run) align
            // to the present rather than replaying from instant 0.
            self.timers.advance(now);
            return Ok(Vec::new());
        }
        let drain_timer = match &self.telemetry {
            Some(t) => t.timer(),
            None => Timer::off(),
        };
        let fires = self.timers.advance(now);
        if fires.is_empty() {
            return Ok(Vec::new());
        }
        let n_fires = fires.len();
        let bodies_version = self.bodies.version();
        let history_on = self.telemetry.as_ref().is_some_and(|t| t.is_history());
        let mut immediate = Vec::new();
        for fire in fires {
            let Some(&(rid, idx)) = self.timer_routes.get(&fire.id) else {
                continue; // stale fire of a removed rule
            };
            if fire.period.is_none() {
                self.timer_routes.remove(&fire.id);
            }
            let Some(rule) = self.rules.get_mut(&rid) else {
                continue;
            };
            if !rule.enabled {
                continue;
            }
            EngineCounters::bump(&self.stats.notifications);
            rule.stats.notifications += 1;
            if let Some(cap) = self.capture.as_mut() {
                if cap.insert(rid) {
                    rule.detector.begin_txn();
                }
            }
            let seq = next_seq();
            let completions = rule.detector.process_timer(registry, idx, fire.due, seq);
            if completions.is_empty() {
                continue;
            }
            rule.stats.triggered += completions.len() as u64;
            if rule.bodies_version != bodies_version
                || rule.cached_condition.is_none()
                || rule.cached_action.is_none()
            {
                rule.cached_condition = Some(self.bodies.condition(&rule.def.condition)?);
                rule.cached_action = Some(self.bodies.action(&rule.def.action)?);
                rule.bodies_version = bodies_version;
            }
            let condition = rule.cached_condition.as_ref().expect("resolved above");
            let action = rule.cached_action.as_ref().expect("resolved above");
            for occurrence in completions {
                let lineage = if history_on {
                    let tel = self.telemetry.as_ref().expect("history implies telemetry");
                    let id = tel.next_firing_id();
                    match self.lineage_ctx {
                        Some((parent, root, parent_depth)) => Lineage {
                            id,
                            parent: Some(parent),
                            root,
                            depth: parent_depth + 1,
                        },
                        None => Lineage {
                            id,
                            parent: None,
                            root: occurrence.end,
                            depth: 0,
                        },
                    }
                } else {
                    Lineage::default()
                };
                let ready = ReadyFiring {
                    priority: rule.def.priority,
                    coupling: rule.def.coupling,
                    condition: condition.clone(),
                    action: action.clone(),
                    firing: Firing {
                        rule: rid,
                        rule_name: rule.name.clone(),
                        occurrence,
                        lineage,
                    },
                    group: self
                        .conflict_tags
                        .as_ref()
                        .and_then(|t| t.get(&rid).copied()),
                };
                route_ready(
                    ready,
                    &rule.name,
                    rule.oid,
                    fire.due,
                    &mut immediate,
                    &mut self.deferred,
                    &mut self.detached,
                    self.detached_cap,
                    self.detached_policy,
                    &self.stats,
                    &self.telemetry,
                );
            }
        }
        self.resolver.order(&mut immediate);
        if let Some(tel) = &self.telemetry {
            tel.observe_timer(Stage::TimerDrain, now, drain_timer, || {
                format!("fires={n_fires}")
            });
        }
        Ok(immediate)
    }

    /// The earliest due instant across all scheduled timers.
    pub fn next_timer_due(&self) -> Option<u64> {
        self.timers.next_due()
    }

    /// Number of scheduled timers.
    pub fn timer_count(&self) -> usize {
        self.timers.len()
    }

    /// Snapshot of every scheduled timer, with its owning rule's name
    /// resolved — the `timers` meta relation.
    pub fn timer_rows(&self) -> Vec<(TimerRow, Option<Arc<str>>)> {
        self.timers
            .rows()
            .into_iter()
            .map(|row| {
                let name = self
                    .timer_routes
                    .get(&row.id)
                    .and_then(|(rid, _)| self.rules.get(rid))
                    .map(|r| r.name.clone());
                (row, name)
            })
            .collect()
    }

    /// Drain the deferred queue (at commit), in execution order.
    pub fn take_deferred(&mut self) -> Vec<ReadyFiring> {
        let mut out = std::mem::take(&mut self.deferred);
        self.resolver.order(&mut out);
        out
    }

    /// Drain the detached queue (after commit), in execution order.
    pub fn take_detached(&mut self) -> Vec<ReadyFiring> {
        let n = self.detached.len();
        self.drain_detached_front(n)
    }

    /// Drain only the *overflow*: the oldest firings beyond `cap`, in
    /// execution order. The commit path uses this under
    /// [`BackpressurePolicy::Block`] to bring a transiently over-full
    /// queue back to its cap before acknowledging the commit.
    pub fn take_detached_over(&mut self, cap: usize) -> Vec<ReadyFiring> {
        let n = self.detached.len().saturating_sub(cap);
        self.drain_detached_front(n)
    }

    fn drain_detached_front(&mut self, n: usize) -> Vec<ReadyFiring> {
        let mut out = Vec::with_capacity(n);
        for q in self.detached.drain(..n) {
            if let Some(tel) = &self.telemetry {
                let waited = q.queued.elapsed().as_nanos() as u64;
                let name = q.ready.firing.rule_name.clone();
                tel.observe(
                    Stage::DetachedQueueWait,
                    q.ready.firing.occurrence.end,
                    waited,
                    || name.to_string(),
                );
            }
            out.push(q.ready);
        }
        self.detached_floor = self.detached_floor.min(self.detached.len());
        self.resolver.order(&mut out);
        out
    }

    /// Throw away the aborting transaction's queued work: its deferred
    /// firings die with it, and the detached firings *it* scheduled
    /// belong to a commit that never happened. Detached work queued by
    /// earlier committed transactions (before
    /// [`begin_capture`](Self::begin_capture)) survives.
    pub fn discard_pending(&mut self) {
        self.deferred.clear();
        self.detached.truncate(self.detached_floor);
    }

    /// Bound the detached queue at `cap` entries with the given
    /// overflow policy. Defaults to an unbounded blocking queue.
    pub fn set_detached_queue(&mut self, cap: usize, policy: BackpressurePolicy) {
        self.detached_cap = cap.max(1);
        self.detached_policy = policy;
    }

    /// The detached queue's capacity.
    pub fn detached_cap(&self) -> usize {
        self.detached_cap
    }

    /// The detached queue's overflow policy.
    pub fn detached_policy(&self) -> BackpressurePolicy {
        self.detached_policy
    }

    /// Pending queue sizes (deferred, detached).
    pub fn pending(&self) -> (usize, usize) {
        (self.deferred.len(), self.detached.len())
    }

    /// Engine-wide counters.
    pub fn stats(&self) -> EngineStats {
        self.stats.snapshot()
    }

    /// Shared handle to the live counters (read concurrently by stats
    /// exporters without going through the engine).
    pub fn counters(&self) -> Arc<EngineCounters> {
        Arc::clone(&self.stats)
    }

    /// Reset engine-wide counters (benchmark warm-up).
    pub fn reset_stats(&mut self) {
        self.stats.reset();
        for r in self.rules.values_mut() {
            r.stats = RuleStats::default();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::body::{ACTION_NOOP, COND_TRUE};
    use sentinel_events::{EventExpr, EventModifier, PrimitiveEventSpec};
    use sentinel_object::{ClassDecl, Value};
    use std::sync::Arc;

    fn registry() -> ClassRegistry {
        let mut reg = ClassRegistry::new();
        reg.define(ClassDecl::reactive("Stock").method("SetPrice", &[]))
            .unwrap();
        reg.define(ClassDecl::reactive("Index").method("SetValue", &[]))
            .unwrap();
        reg
    }

    fn occ(
        reg: &ClassRegistry,
        at: u64,
        oid: u64,
        class: &str,
        method: &str,
    ) -> PrimitiveOccurrence {
        let cid = reg.id_of(class).unwrap();
        PrimitiveOccurrence {
            at,
            oid: Oid(oid),
            class: cid,
            owner: cid,
            method: method.into(),
            modifier: EventModifier::End,
            params: Arc::from(vec![Value::Int(at as i64)]),
        }
    }

    fn simple_rule(name: &str) -> RuleDef {
        RuleDef::new(
            name,
            EventExpr::primitive(PrimitiveEventSpec::end("Stock", "SetPrice")),
            ACTION_NOOP,
        )
    }

    #[test]
    fn only_subscribed_rules_are_notified() {
        let reg = registry();
        let mut eng = RuleEngine::new();
        let r1 = eng.add_rule(simple_rule("r1"), Oid::NIL, &reg).unwrap();
        let _r2 = eng.add_rule(simple_rule("r2"), Oid::NIL, &reg).unwrap();
        eng.subscriptions.subscribe_object(Oid(1), r1);

        let fired = eng
            .on_occurrence(&reg, &occ(&reg, 1, 1, "Stock", "SetPrice"))
            .unwrap();
        assert_eq!(fired.len(), 1);
        assert_eq!(fired[0].firing.rule, r1);
        // Exactly one notification delivered: r2 was never checked.
        assert_eq!(eng.stats().notifications, 1);
        assert_eq!(eng.rule(r1).unwrap().stats.triggered, 1);
    }

    #[test]
    fn inter_object_conjunction_spanning_classes() {
        // The paper's Purchase rule shape: IBM!SetPrice && DowJones!SetValue.
        let reg = registry();
        let mut eng = RuleEngine::new();
        let e = EventExpr::primitive(PrimitiveEventSpec::end("Stock", "SetPrice")).and(
            EventExpr::primitive(PrimitiveEventSpec::end("Index", "SetValue")),
        );
        let r = eng
            .add_rule(RuleDef::new("Purchase", e, ACTION_NOOP), Oid::NIL, &reg)
            .unwrap();
        let ibm = Oid(10);
        let dj = Oid(20);
        eng.subscriptions.subscribe_object(ibm, r);
        eng.subscriptions.subscribe_object(dj, r);

        assert!(eng
            .on_occurrence(&reg, &occ(&reg, 1, 10, "Stock", "SetPrice"))
            .unwrap()
            .is_empty());
        let fired = eng
            .on_occurrence(&reg, &occ(&reg, 2, 20, "Index", "SetValue"))
            .unwrap();
        assert_eq!(fired.len(), 1);
        let f = &fired[0].firing;
        assert!(f.occurrence.constituent_of(ibm).is_some());
        assert!(f.occurrence.constituent_of(dj).is_some());
    }

    #[test]
    fn events_from_unsubscribed_objects_are_invisible() {
        // A second Stock instance the rule did not subscribe to must not
        // complete the rule's event (instance-level monitoring).
        let reg = registry();
        let mut eng = RuleEngine::new();
        let r = eng.add_rule(simple_rule("r"), Oid::NIL, &reg).unwrap();
        eng.subscriptions.subscribe_object(Oid(1), r);
        let fired = eng
            .on_occurrence(&reg, &occ(&reg, 1, 2, "Stock", "SetPrice"))
            .unwrap();
        assert!(fired.is_empty());
        assert_eq!(eng.stats().notifications, 0);
    }

    #[test]
    fn coupling_modes_route_to_queues() {
        let reg = registry();
        let mut eng = RuleEngine::new();
        let ri = eng.add_rule(simple_rule("imm"), Oid::NIL, &reg).unwrap();
        let rd = eng
            .add_rule(
                simple_rule("def").coupling(CouplingMode::Deferred),
                Oid::NIL,
                &reg,
            )
            .unwrap();
        let rx = eng
            .add_rule(
                simple_rule("det").coupling(CouplingMode::Detached),
                Oid::NIL,
                &reg,
            )
            .unwrap();
        for r in [ri, rd, rx] {
            eng.subscriptions.subscribe_object(Oid(1), r);
        }
        let fired = eng
            .on_occurrence(&reg, &occ(&reg, 1, 1, "Stock", "SetPrice"))
            .unwrap();
        assert_eq!(fired.len(), 1);
        assert_eq!(eng.pending(), (1, 1));
        let d = eng.take_deferred();
        assert_eq!(d.len(), 1);
        assert_eq!(d[0].firing.rule, rd);
        let x = eng.take_detached();
        assert_eq!(x[0].firing.rule, rx);
        assert_eq!(eng.pending(), (0, 0));
    }

    #[test]
    fn discard_pending_on_abort() {
        let reg = registry();
        let mut eng = RuleEngine::new();
        let rd = eng
            .add_rule(
                simple_rule("def").coupling(CouplingMode::Deferred),
                Oid::NIL,
                &reg,
            )
            .unwrap();
        eng.subscriptions.subscribe_object(Oid(1), rd);
        eng.on_occurrence(&reg, &occ(&reg, 1, 1, "Stock", "SetPrice"))
            .unwrap();
        assert_eq!(eng.pending(), (1, 0));
        eng.discard_pending();
        assert_eq!(eng.pending(), (0, 0));
    }

    fn detached_engine(reg: &ClassRegistry) -> RuleEngine {
        let mut eng = RuleEngine::new();
        let r = eng
            .add_rule(
                simple_rule("det").coupling(CouplingMode::Detached),
                Oid::NIL,
                reg,
            )
            .unwrap();
        eng.subscriptions.subscribe_object(Oid(1), r);
        eng
    }

    #[test]
    fn shed_policy_caps_the_detached_queue() {
        let reg = registry();
        let mut eng = detached_engine(&reg);
        eng.set_detached_queue(3, BackpressurePolicy::Shed);
        for at in 0..10 {
            eng.on_occurrence(&reg, &occ(&reg, at, 1, "Stock", "SetPrice"))
                .unwrap();
        }
        assert_eq!(eng.pending(), (0, 3), "queue never exceeds its cap");
        assert_eq!(eng.stats().detached, 3, "only admitted firings counted");
        assert_eq!(eng.stats().detached_shed, 7, "the overflow is visible");
        assert_eq!(eng.take_detached().len(), 3);
    }

    #[test]
    fn block_policy_admits_overflow_for_the_committer_to_drain() {
        let reg = registry();
        let mut eng = detached_engine(&reg);
        eng.set_detached_queue(3, BackpressurePolicy::Block);
        for at in 0..10 {
            eng.on_occurrence(&reg, &occ(&reg, at, 1, "Stock", "SetPrice"))
                .unwrap();
        }
        assert_eq!(eng.pending(), (0, 10), "block admits transient overflow");
        assert_eq!(eng.stats().detached_shed, 0);
        // The committer drains the overflow, oldest first, back to cap.
        let over = eng.take_detached_over(3);
        assert_eq!(over.len(), 7);
        assert_eq!(over[0].firing.occurrence.end, 0);
        assert_eq!(eng.pending(), (0, 3));
        assert_eq!(eng.take_detached_over(3).len(), 0);
    }

    #[test]
    fn abort_keeps_detached_work_of_earlier_transactions() {
        let reg = registry();
        let mut eng = detached_engine(&reg);
        // Transaction 1 commits with one detached firing queued.
        eng.begin_capture();
        eng.on_occurrence(&reg, &occ(&reg, 1, 1, "Stock", "SetPrice"))
            .unwrap();
        eng.commit_capture();
        assert_eq!(eng.pending(), (0, 1));
        // Transaction 2 queues another and aborts: only its own firing
        // is discarded.
        eng.begin_capture();
        eng.on_occurrence(&reg, &occ(&reg, 2, 1, "Stock", "SetPrice"))
            .unwrap();
        assert_eq!(eng.pending(), (0, 2));
        eng.discard_pending();
        eng.abort_capture();
        assert_eq!(eng.pending(), (0, 1));
        assert_eq!(eng.take_detached()[0].firing.occurrence.end, 1);
    }

    #[test]
    fn disabled_rule_neither_notified_nor_retains_state() {
        let reg = registry();
        let mut eng = RuleEngine::new();
        let e = EventExpr::primitive(PrimitiveEventSpec::end("Stock", "SetPrice")).and(
            EventExpr::primitive(PrimitiveEventSpec::end("Index", "SetValue")),
        );
        let r = eng
            .add_rule(RuleDef::new("r", e, ACTION_NOOP), Oid::NIL, &reg)
            .unwrap();
        eng.subscriptions.subscribe_object(Oid(1), r);
        eng.subscriptions.subscribe_object(Oid(2), r);
        // Buffer a left constituent, then disable: state must be dropped.
        eng.on_occurrence(&reg, &occ(&reg, 1, 1, "Stock", "SetPrice"))
            .unwrap();
        eng.disable(r).unwrap();
        eng.on_occurrence(&reg, &occ(&reg, 2, 2, "Index", "SetValue"))
            .unwrap();
        eng.enable(r).unwrap();
        // After re-enable, the old left must not pair.
        let fired = eng
            .on_occurrence(&reg, &occ(&reg, 3, 2, "Index", "SetValue"))
            .unwrap();
        assert!(fired.is_empty());
        assert_eq!(eng.rule(r).unwrap().stats.notifications, 2);
    }

    #[test]
    fn duplicate_names_and_missing_bodies_rejected() {
        let reg = registry();
        let mut eng = RuleEngine::new();
        eng.add_rule(simple_rule("r"), Oid::NIL, &reg).unwrap();
        assert!(matches!(
            eng.add_rule(simple_rule("r"), Oid::NIL, &reg),
            Err(ObjectError::DuplicateRule(_))
        ));
        let bad = simple_rule("bad").condition("never-registered");
        assert!(matches!(
            eng.add_rule(bad, Oid::NIL, &reg),
            Err(ObjectError::BodyNotRegistered {
                kind: "condition",
                ..
            })
        ));
        let mut bad = simple_rule("bad2");
        bad.action = "never-registered".into();
        assert!(matches!(
            eng.add_rule(bad, Oid::NIL, &reg),
            Err(ObjectError::BodyNotRegistered { kind: "action", .. })
        ));
    }

    /// Regression: a rule whose bodies are still missing at fire time
    /// (the `add_rule_unchecked` recovery path) must error cleanly with
    /// `BodyNotRegistered` when its event arrives — never panic inside
    /// dispatch.
    #[test]
    fn missing_body_at_fire_time_errors_cleanly() {
        let reg = registry();
        let mut eng = RuleEngine::new();
        let r = eng
            .add_rule_unchecked(
                simple_rule("orphan").condition("not-yet-registered"),
                Oid::NIL,
                &reg,
            )
            .unwrap();
        eng.subscriptions.subscribe_object(Oid(1), r);
        let err = eng
            .on_occurrence(&reg, &occ(&reg, 1, 1, "Stock", "SetPrice"))
            .unwrap_err();
        assert!(matches!(
            err,
            ObjectError::BodyNotRegistered {
                kind: "condition",
                ..
            }
        ));
        // Registering the body afterwards (recovery completing) heals
        // the rule: the next occurrence resolves and fires.
        eng.bodies
            .register_condition("not-yet-registered", |_, _| Ok(true));
        let fired = eng
            .on_occurrence(&reg, &occ(&reg, 2, 1, "Stock", "SetPrice"))
            .unwrap();
        assert_eq!(fired.len(), 1);
    }

    #[test]
    fn remove_rule_clears_subscriptions_and_name() {
        let reg = registry();
        let mut eng = RuleEngine::new();
        let r = eng.add_rule(simple_rule("r"), Oid::NIL, &reg).unwrap();
        eng.subscriptions.subscribe_object(Oid(1), r);
        let def = eng.remove_rule(r).unwrap();
        assert_eq!(def.name, "r");
        assert!(eng.id_of("r").is_err());
        // Occurrence delivery hits no rules.
        let fired = eng
            .on_occurrence(&reg, &occ(&reg, 1, 1, "Stock", "SetPrice"))
            .unwrap();
        assert!(fired.is_empty());
        // Name is reusable after removal.
        eng.add_rule(simple_rule("r"), Oid::NIL, &reg).unwrap();
    }

    #[test]
    fn priority_resolver_orders_simultaneous_firings() {
        let reg = registry();
        let mut eng = RuleEngine::new();
        eng.set_resolver(Box::new(crate::conflict::PriorityResolver));
        let lo = eng
            .add_rule(simple_rule("lo").priority(1), Oid::NIL, &reg)
            .unwrap();
        let hi = eng
            .add_rule(simple_rule("hi").priority(10), Oid::NIL, &reg)
            .unwrap();
        eng.subscriptions.subscribe_object(Oid(1), lo);
        eng.subscriptions.subscribe_object(Oid(1), hi);
        let fired = eng
            .on_occurrence(&reg, &occ(&reg, 1, 1, "Stock", "SetPrice"))
            .unwrap();
        assert_eq!(fired.len(), 2);
        assert_eq!(fired[0].firing.rule, hi);
        assert_eq!(fired[1].firing.rule, lo);
    }

    #[test]
    fn class_subscription_fires_for_every_instance() {
        let reg = registry();
        let mut eng = RuleEngine::new();
        let r = eng
            .add_rule(simple_rule("class-rule"), Oid::NIL, &reg)
            .unwrap();
        eng.subscriptions
            .subscribe_class(reg.id_of("Stock").unwrap(), r);
        for oid in [1, 2, 3] {
            let fired = eng
                .on_occurrence(&reg, &occ(&reg, oid, oid, "Stock", "SetPrice"))
                .unwrap();
            assert_eq!(fired.len(), 1, "instance {oid}");
        }
        assert_eq!(eng.rule(r).unwrap().stats.triggered, 3);
    }

    #[test]
    fn timer_rules_fire_from_the_drain_without_subscriptions() {
        let reg = registry();
        let mut eng = RuleEngine::new();
        let r = eng
            .add_rule(
                RuleDef::new("tick", EventExpr::every(10), ACTION_NOOP),
                Oid::NIL,
                &reg,
            )
            .unwrap();
        assert_eq!(eng.timer_count(), 1);
        let mut seq = 100u64;
        let fired = eng
            .drain_timers(&reg, 25, || {
                seq += 1;
                seq
            })
            .unwrap();
        // Boundaries 10 and 20 elapsed: two firings, in due order.
        assert_eq!(fired.len(), 2);
        assert!(fired.iter().all(|f| f.firing.rule == r));
        assert_eq!(fired[0].firing.occurrence.end, 101);
        assert_eq!(fired[1].firing.occurrence.end, 102);
        assert_eq!(eng.rule(r).unwrap().stats.triggered, 2);
        // Nothing new due yet.
        assert!(eng.drain_timers(&reg, 29, || 0).unwrap().is_empty());
    }

    #[test]
    fn disable_cancels_timers_and_enable_reschedules() {
        let reg = registry();
        let mut eng = RuleEngine::new();
        let r = eng
            .add_rule(
                RuleDef::new("tick", EventExpr::every(10), ACTION_NOOP),
                Oid::NIL,
                &reg,
            )
            .unwrap();
        eng.disable(r).unwrap();
        assert_eq!(eng.timer_count(), 0);
        assert!(eng.drain_timers(&reg, 50, || 1).unwrap().is_empty());
        // Re-enabling schedules at the next boundary after the cursor —
        // the elapsed periods are not replayed.
        eng.enable(r).unwrap();
        assert_eq!(eng.timer_count(), 1);
        let mut seq = 0u64;
        let fired = eng
            .drain_timers(&reg, 60, || {
                seq += 1;
                seq
            })
            .unwrap();
        assert_eq!(fired.len(), 1);
        let rows = eng.timer_rows();
        assert_eq!(rows.len(), 1);
        assert_eq!(rows[0].1.as_deref(), Some("tick"));
        assert_eq!(rows[0].0.due, 70);
    }

    #[test]
    fn timer_fires_in_aborted_transactions_roll_back() {
        // An `m ; every(10)` rule under Chronicle: a tick consumed the
        // buffered left inside a transaction that aborts — the left must
        // be re-armed for the next tick.
        let reg = registry();
        let mut eng = RuleEngine::new();
        let e = EventExpr::primitive(PrimitiveEventSpec::end("Stock", "SetPrice"))
            .then(EventExpr::every(10));
        let r = eng
            .add_rule(
                RuleDef::new("windowed", e, ACTION_NOOP)
                    .consume(sentinel_events::ParamContext::Chronicle),
                Oid::NIL,
                &reg,
            )
            .unwrap();
        eng.subscriptions.subscribe_object(Oid(1), r);
        eng.on_occurrence(&reg, &occ(&reg, 1, 1, "Stock", "SetPrice"))
            .unwrap();
        eng.begin_capture();
        let mut seq = 1u64;
        let fired = eng
            .drain_timers(&reg, 10, || {
                seq += 1;
                seq
            })
            .unwrap();
        assert_eq!(fired.len(), 1);
        eng.discard_pending();
        eng.abort_capture();
        let fired = eng
            .drain_timers(&reg, 20, || {
                seq += 1;
                seq
            })
            .unwrap();
        assert_eq!(fired.len(), 1, "left re-armed after abort");
    }

    #[test]
    fn condition_true_builtin_used() {
        let reg = registry();
        let mut eng = RuleEngine::new();
        let r = eng.add_rule(simple_rule("r"), Oid::NIL, &reg).unwrap();
        assert_eq!(eng.rule(r).unwrap().def.condition, COND_TRUE);
    }
}
