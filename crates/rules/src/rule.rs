//! First-class rule objects (paper §3.4, Figure 7).

use crate::body::{ActionFn, CondFn};
use crate::coupling::CouplingMode;
use sentinel_events::{DetectorCaps, DetectorInstance, EventExpr, ParamContext};
use sentinel_object::{ClassRegistry, EventSym, Oid, Result};
use serde::{Deserialize, Serialize};
use std::fmt;
use std::sync::Arc;

/// Rule identifier, unique per engine lifetime.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct RuleId(pub u64);

impl fmt::Display for RuleId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "rule#{}", self.0)
    }
}

/// The serializable definition of a rule — what Figure 7 stores:
/// `name`, `event-id`, `condition`, `action`, `mode`, plus the paper's
/// implied priority used by the conflict-resolution strategies.
///
/// `condition`/`action` are *names* into the
/// [`RuleBodyRegistry`](crate::body::RuleBodyRegistry), the persistable
/// analog of Figure 7's `PMF` pointers.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RuleDef {
    /// Rule name (unique per engine).
    pub name: String,
    /// The triggering event expression.
    pub event: EventExpr,
    /// Name of the condition body in the body registry.
    pub condition: String,
    /// Name of the action body in the body registry.
    pub action: String,
    /// When the rule executes relative to its triggering transaction.
    pub coupling: CouplingMode,
    /// Larger fires earlier under the priority resolver.
    pub priority: i32,
    /// Parameter context for this rule's private detector.
    pub context: ParamContext,
}

impl RuleDef {
    /// A rule with the given name, event and action, an always-true
    /// condition, immediate coupling, and default priority/context.
    pub fn new(name: impl Into<String>, event: EventExpr, action: impl Into<String>) -> Self {
        RuleDef {
            name: name.into(),
            event,
            condition: crate::body::COND_TRUE.into(),
            action: action.into(),
            coupling: CouplingMode::Immediate,
            priority: 0,
            context: ParamContext::default(),
        }
    }

    /// Set the condition body name.
    pub fn condition(mut self, name: impl Into<String>) -> Self {
        self.condition = name.into();
        self
    }

    /// Set the coupling mode.
    pub fn coupling(mut self, mode: CouplingMode) -> Self {
        self.coupling = mode;
        self
    }

    /// Set the priority (larger fires earlier under the priority
    /// resolver).
    pub fn priority(mut self, p: i32) -> Self {
        self.priority = p;
        self
    }

    /// Set the parameter context for the rule's detector.
    pub fn context(mut self, ctx: ParamContext) -> Self {
        self.context = ctx;
        self
    }

    /// Select the event-consumption policy — an alias for
    /// [`context`](Self::context) in the vocabulary of the temporal
    /// operators ("how are constituent occurrences consumed by a
    /// detection?").
    pub fn consume(self, ctx: ParamContext) -> Self {
        self.context(ctx)
    }

    /// Start a fluent builder from the triggering event, reading in ECA
    /// order:
    ///
    /// ```
    /// use sentinel_rules::{CouplingMode, RuleDef};
    /// use sentinel_events::{EventExpr, PrimitiveEventSpec};
    ///
    /// let e = EventExpr::primitive(PrimitiveEventSpec::end("Acct", "Withdraw"));
    /// let def = RuleDef::on(e)
    ///     .named("Overdraft")
    ///     .when("balance-negative")
    ///     .then("freeze-account")
    ///     .coupling(CouplingMode::Deferred)
    ///     .build();
    /// assert_eq!(def.name, "Overdraft");
    /// ```
    ///
    /// `when` is optional (default: always-true condition); `named` and
    /// `then` are required before the definition is usable. Anything
    /// taking `impl Into<RuleDef>` accepts the builder directly, without
    /// [`build`](RuleBuilder::build).
    pub fn on(event: EventExpr) -> RuleBuilder {
        RuleBuilder {
            def: RuleDef::new("", event, crate::body::ACTION_NOOP),
        }
    }
}

/// Fluent builder for [`RuleDef`], created by [`RuleDef::on`].
#[derive(Debug, Clone)]
pub struct RuleBuilder {
    def: RuleDef,
}

impl RuleBuilder {
    /// Set the rule name (required; unique per engine).
    pub fn named(mut self, name: impl Into<String>) -> Self {
        self.def.name = name.into();
        self
    }

    /// Set the condition body name (default: always true).
    pub fn when(mut self, condition: impl Into<String>) -> Self {
        self.def.condition = condition.into();
        self
    }

    /// Set the action body name (required).
    pub fn then(mut self, action: impl Into<String>) -> Self {
        self.def.action = action.into();
        self
    }

    /// Set the coupling mode (default: immediate).
    pub fn coupling(mut self, mode: CouplingMode) -> Self {
        self.def.coupling = mode;
        self
    }

    /// Set the priority (larger fires earlier under the priority
    /// resolver; default 0).
    pub fn priority(mut self, p: i32) -> Self {
        self.def.priority = p;
        self
    }

    /// Set the parameter context for the rule's detector.
    pub fn context(mut self, ctx: ParamContext) -> Self {
        self.def.context = ctx;
        self
    }

    /// Select the event-consumption policy (alias for
    /// [`context`](Self::context)).
    pub fn consume(self, ctx: ParamContext) -> Self {
        self.context(ctx)
    }

    /// Finish, yielding the [`RuleDef`].
    pub fn build(self) -> RuleDef {
        self.def
    }
}

impl From<RuleBuilder> for RuleDef {
    fn from(b: RuleBuilder) -> Self {
        b.build()
    }
}

/// Per-rule counters, surfaced by the comparison experiments (E3, E5).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct RuleStats {
    /// Primitive occurrences delivered to this rule's detector.
    pub notifications: u64,
    /// Detections of the rule's (composite) event.
    pub triggered: u64,
    /// Condition evaluations performed.
    pub condition_evals: u64,
    /// Conditions that held.
    pub condition_true: u64,
    /// Actions executed.
    pub actions_run: u64,
}

/// A live rule: definition + runtime state + private event detector.
pub struct Rule {
    /// Engine-local identity.
    pub id: RuleId,
    /// The rule's identity as a first-class object in the store
    /// ([`Oid::NIL`] when the engine is used standalone without a store).
    pub oid: Oid,
    /// The serializable definition.
    pub def: RuleDef,
    /// The rule's name, shared: firings and telemetry labels clone the
    /// `Arc`, not the string.
    pub name: Arc<str>,
    /// Disabled rules receive no events and hold no detector state.
    pub enabled: bool,
    /// The rule's private event detector (paper Figure 2).
    pub detector: DetectorInstance,
    /// Firing counters.
    pub stats: RuleStats,
    /// The detector's primitive-event alphabet: the interned symbols that
    /// can advance it, closed over subclasses. `None` means unbounded
    /// (the expression contains `Plus`, whose deadline is signalled by
    /// any subsequent occurrence) — such rules are routed broadly.
    pub(crate) alphabet: Option<Vec<EventSym>>,
    /// Schema size the alphabet was computed against; a later `define`
    /// may add subclasses whose symbols belong in the alphabet.
    pub(crate) alphabet_schema_len: usize,
    /// Resolved condition body, cached at registration so completions
    /// skip the name → body map lookup.
    pub(crate) cached_condition: Option<CondFn>,
    /// Resolved action body (same caching discipline).
    pub(crate) cached_action: Option<ActionFn>,
    /// Body-registry version the cached handles were resolved at;
    /// re-registering a body bumps the registry version and forces a
    /// re-resolve on next completion.
    pub(crate) bodies_version: u64,
}

impl fmt::Debug for Rule {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Rule")
            .field("id", &self.id)
            .field("oid", &self.oid)
            .field("def", &self.def)
            .field("enabled", &self.enabled)
            .field("detector", &self.detector)
            .field("stats", &self.stats)
            .field("alphabet", &self.alphabet)
            .finish_non_exhaustive()
    }
}

impl Rule {
    /// Instantiate a rule, compiling its detector against the schema.
    pub fn instantiate(
        id: RuleId,
        oid: Oid,
        def: RuleDef,
        registry: &ClassRegistry,
        caps: DetectorCaps,
    ) -> Result<Self> {
        let detector = DetectorInstance::compile(&def.event, registry, def.context, caps)?;
        let name: Arc<str> = def.name.as_str().into();
        let alphabet = def.event.alphabet(registry);
        Ok(Rule {
            id,
            oid,
            def,
            name,
            enabled: true,
            detector,
            stats: RuleStats::default(),
            alphabet,
            alphabet_schema_len: registry.len(),
            cached_condition: None,
            cached_action: None,
            bodies_version: 0,
        })
    }

    /// Recompute the alphabet if classes were defined since it was last
    /// derived (a new subclass adds fresh symbols for inherited methods).
    pub(crate) fn refresh_alphabet(&mut self, registry: &ClassRegistry) {
        if self.alphabet_schema_len != registry.len() {
            self.alphabet = self.def.event.alphabet(registry);
            self.alphabet_schema_len = registry.len();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sentinel_events::PrimitiveEventSpec;
    use sentinel_object::ClassDecl;

    #[test]
    fn def_builder_defaults() {
        let e = EventExpr::primitive(PrimitiveEventSpec::end("C", "m"));
        let d = RuleDef::new("R", e.clone(), crate::body::ACTION_NOOP);
        assert_eq!(d.condition, crate::body::COND_TRUE);
        assert_eq!(d.coupling, CouplingMode::Immediate);
        assert_eq!(d.priority, 0);
        let d = d
            .condition("c1")
            .coupling(CouplingMode::Deferred)
            .priority(5)
            .context(ParamContext::Recent);
        assert_eq!(d.condition, "c1");
        assert_eq!(d.coupling, CouplingMode::Deferred);
        assert_eq!(d.priority, 5);
        assert_eq!(d.context, ParamContext::Recent);
    }

    #[test]
    fn def_serde_round_trip() {
        let e = EventExpr::primitive(PrimitiveEventSpec::end("C", "m"))
            .and(EventExpr::primitive(PrimitiveEventSpec::begin("C", "n")));
        let d = RuleDef::new("R", e, "act").priority(-3);
        let s = serde_json::to_string(&d).unwrap();
        assert_eq!(serde_json::from_str::<RuleDef>(&s).unwrap(), d);
    }

    #[test]
    fn instantiate_compiles_detector() {
        let mut reg = ClassRegistry::new();
        reg.define(ClassDecl::reactive("C").method("m", &[]))
            .unwrap();
        let def = RuleDef::new(
            "R",
            EventExpr::primitive(PrimitiveEventSpec::end("C", "m")),
            crate::body::ACTION_NOOP,
        );
        let r = Rule::instantiate(RuleId(1), Oid::NIL, def, &reg, DetectorCaps::default()).unwrap();
        assert!(r.enabled);
        assert_eq!(r.stats, RuleStats::default());
        // Unknown class in the event is rejected at instantiation.
        let bad = RuleDef::new(
            "B",
            EventExpr::primitive(PrimitiveEventSpec::end("Nope", "m")),
            crate::body::ACTION_NOOP,
        );
        assert!(
            Rule::instantiate(RuleId(2), Oid::NIL, bad, &reg, DetectorCaps::default()).is_err()
        );
    }
}
