//! `ActionDef` — the declarative action-registration surface.
//!
//! Historically an action and its declared side-effects were registered
//! through two calls (`register_action_with_effects`, or
//! `register_action` followed by `declare_action_effects`). That split
//! made it easy to register a body and forget the declaration, leaving
//! the analyzer — and now the parallel scheduler — with "effects
//! unknown". `ActionDef` folds both into one builder mirroring
//! [`RuleDef`](crate::rule::RuleDef):
//!
//! ```
//! use sentinel_rules::{ActionDef, RuleBodyRegistry};
//!
//! let credit = ActionDef::new("credit")
//!     .writes(("Account", "balance"))
//!     .raises(("Account", "Notify"))
//!     .body(|_w, _firing| Ok(()));
//!
//! let mut reg = RuleBodyRegistry::new();
//! reg.register_def(credit).unwrap();
//! assert!(reg.has_action("credit"));
//! assert!(reg.action_effects("credit").is_some());
//! ```
//!
//! The effects contract is what the parallel scheduler trusts: an action
//! whose definition declares writes and raises nothing is eligible for
//! conflict-grouped concurrent execution; an action registered with no
//! effects calls at all stays "unknown" and its rules run serially.

use crate::body::{ActionEffects, ActionFn, AttrPattern, EventPattern, Firing, RuleBodyRegistry};
use sentinel_object::{ObjectError, Result, World};
use std::sync::Arc;

/// Split a `"Class::member"` / `"Class.member"` shorthand into its two
/// halves. A string with no separator yields an empty member — such a
/// pattern matches nothing, which (like any wrong effects declaration)
/// is the author's contract to get right.
fn split_pattern(s: &str) -> (&str, &str) {
    if let Some((class, member)) = s.split_once("::") {
        (class, member)
    } else if let Some((class, member)) = s.split_once('.') {
        (class, member)
    } else {
        (s, "")
    }
}

impl From<(&str, &str)> for AttrPattern {
    fn from((class, attr): (&str, &str)) -> Self {
        AttrPattern::new(class, attr)
    }
}

impl From<&str> for AttrPattern {
    fn from(s: &str) -> Self {
        let (class, attr) = split_pattern(s);
        AttrPattern::new(class, attr)
    }
}

impl From<(&str, &str)> for EventPattern {
    fn from((class, method): (&str, &str)) -> Self {
        EventPattern::new(class, method)
    }
}

impl From<&str> for EventPattern {
    fn from(s: &str) -> Self {
        let (class, method) = split_pattern(s);
        EventPattern::new(class, method)
    }
}

/// A declarative action definition: name, declared side-effects, and
/// (optionally) the body closure, registered in one step.
///
/// Three effect states, mirroring the registry's contract:
///
/// * no effects call at all → effects **unknown** (analyzer is
///   conservative, scheduler runs the action's rules serially);
/// * [`pure`](Self::pure), or any [`writes`](Self::writes) /
///   [`reads`](Self::reads) / [`raises`](Self::raises) → effects
///   **declared** as exactly the accumulated patterns (an empty
///   declaration asserts "no effects").
///
/// A declared `ActionDef` states the firing's **complete data
/// footprint**: [`writes`](Self::writes) lists every attribute the
/// action may write (and read), [`reads`](Self::reads) lists every
/// *additional* attribute the action — or any rule condition paired
/// with it — may read. Omitting `reads` asserts the firing reads
/// nothing beyond its writes. The parallel scheduler trusts this
/// footprint to run independent firings concurrently, and its worker
/// shim verifies it at runtime: an access outside the declared
/// footprint (or to an object other than the firing's target) makes
/// the whole group fall back to serial re-execution.
///
/// A definition without a [`body`](Self::body) re-declares the effects
/// of an action already registered under the same name — the successor
/// of `declare_action_effects`.
#[derive(Clone)]
pub struct ActionDef {
    name: String,
    effects: Option<ActionEffects>,
    body: Option<ActionFn>,
}

impl std::fmt::Debug for ActionDef {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ActionDef")
            .field("name", &self.name)
            .field("effects", &self.effects)
            .field("has_body", &self.body.is_some())
            .finish()
    }
}

impl ActionDef {
    /// Start a definition for the action registered under `name`.
    pub fn new(name: impl Into<String>) -> Self {
        ActionDef {
            name: name.into(),
            effects: None,
            body: None,
        }
    }

    /// The action's name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Declare an attribute the action may write. Accepts an
    /// [`AttrPattern`], a `("Class", "attr")` pair, or a `"Class.attr"`
    /// string.
    pub fn writes(mut self, pattern: impl Into<AttrPattern>) -> Self {
        self.effects
            .get_or_insert_with(ActionEffects::none)
            .writes
            .push(pattern.into());
        self
    }

    /// Declare an attribute the firing reads but does not write
    /// (declared writes are implicitly readable, so read-modify-write
    /// attributes need only a [`writes`](Self::writes) entry). The
    /// declaration covers the rule's *condition* as well as the action
    /// body. Accepts the same pattern forms as [`writes`](Self::writes).
    pub fn reads(mut self, pattern: impl Into<AttrPattern>) -> Self {
        self.effects
            .get_or_insert_with(ActionEffects::none)
            .reads
            .get_or_insert_with(Vec::new)
            .push(pattern.into());
        self
    }

    /// Declare an event the action may cause to be raised. Accepts an
    /// [`EventPattern`], a `("Class", "method")` pair, or a
    /// `"Class.method"` string.
    pub fn raises(mut self, pattern: impl Into<EventPattern>) -> Self {
        self.effects
            .get_or_insert_with(ActionEffects::none)
            .raises
            .push(pattern.into());
        self
    }

    /// Assert the action raises no events, writes no attributes, and
    /// reads no attributes (a pure observer of firing parameters).
    /// Equivalent to declaring empty [`ActionEffects`]; without this
    /// (or any `writes`/`reads`/`raises`) the effects stay *unknown*.
    pub fn pure(mut self) -> Self {
        self.effects.get_or_insert_with(ActionEffects::none);
        self
    }

    /// Attach the body closure.
    pub fn body<F>(mut self, f: F) -> Self
    where
        F: Fn(&mut dyn World, &Firing) -> Result<()> + Send + Sync + 'static,
    {
        self.body = Some(Arc::new(f));
        self
    }

    /// The declared effects, if any (`None` = unknown).
    pub fn declared_effects(&self) -> Option<&ActionEffects> {
        self.effects.as_ref()
    }

    /// Does the definition carry a body closure?
    pub fn has_body(&self) -> bool {
        self.body.is_some()
    }

    /// Consume the definition into its parts.
    pub(crate) fn into_parts(self) -> (String, Option<ActionEffects>, Option<ActionFn>) {
        (self.name, self.effects, self.body)
    }
}

impl RuleBodyRegistry {
    /// Register an [`ActionDef`]: body plus effects in one step.
    ///
    /// * With a body: registers (or replaces) the action, with effects
    ///   declared if the definition carries any, unknown otherwise.
    /// * Without a body: re-declares the effects of an
    ///   already-registered action; errors with
    ///   [`ObjectError::BodyNotRegistered`] if no body exists under the
    ///   name, and with [`ObjectError::Unsupported`] if the definition
    ///   has neither body nor effects (it would do nothing).
    pub fn register_def(&mut self, def: ActionDef) -> Result<()> {
        let (name, effects, body) = def.into_parts();
        match (body, effects) {
            (Some(body), effects) => {
                self.install_action(name, effects, body);
                Ok(())
            }
            (None, Some(effects)) => self.declare_effects_internal(name, effects),
            (None, None) => Err(ObjectError::Unsupported(format!(
                "ActionDef `{name}` has neither a body nor declared effects"
            ))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn def_with_body_and_effects_registers_both() {
        let mut reg = RuleBodyRegistry::new();
        reg.register_def(
            ActionDef::new("credit")
                .writes(("Account", "balance"))
                .raises("Account::Notify")
                .body(|_, _| Ok(())),
        )
        .unwrap();
        assert!(reg.has_action("credit"));
        let fx = reg.action_effects("credit").unwrap();
        assert_eq!(fx.writes, vec![AttrPattern::new("Account", "balance")]);
        assert_eq!(fx.raises, vec![EventPattern::new("Account", "Notify")]);
    }

    #[test]
    fn def_without_effects_is_unknown() {
        let mut reg = RuleBodyRegistry::new();
        reg.register_def(ActionDef::new("opaque").body(|_, _| Ok(())))
            .unwrap();
        assert!(reg.has_action("opaque"));
        assert_eq!(reg.action_effects("opaque"), None);
    }

    #[test]
    fn pure_declares_empty_effects() {
        let mut reg = RuleBodyRegistry::new();
        reg.register_def(ActionDef::new("watch").pure().body(|_, _| Ok(())))
            .unwrap();
        assert_eq!(reg.action_effects("watch"), Some(&ActionEffects::none()));
    }

    #[test]
    fn bodyless_def_redeclares_existing_action() {
        let mut reg = RuleBodyRegistry::new();
        reg.register_action("mutate", |_, _| Ok(()));
        assert_eq!(reg.action_effects("mutate"), None);
        reg.register_def(ActionDef::new("mutate").writes("Account.balance"))
            .unwrap();
        assert_eq!(
            reg.action_effects("mutate").unwrap().writes,
            vec![AttrPattern::new("Account", "balance")]
        );
    }

    #[test]
    fn bodyless_def_for_missing_action_errors() {
        let mut reg = RuleBodyRegistry::new();
        assert!(matches!(
            reg.register_def(ActionDef::new("ghost").pure()),
            Err(ObjectError::BodyNotRegistered { kind: "action", .. })
        ));
    }

    #[test]
    fn empty_def_is_rejected() {
        let mut reg = RuleBodyRegistry::new();
        assert!(matches!(
            reg.register_def(ActionDef::new("nothing")),
            Err(ObjectError::Unsupported(_))
        ));
    }

    #[test]
    fn string_patterns_split_on_double_colon_and_dot() {
        assert_eq!(
            AttrPattern::from("Account.balance"),
            AttrPattern::new("Account", "balance")
        );
        assert_eq!(
            EventPattern::from("Account::Withdraw"),
            EventPattern::new("Account", "Withdraw")
        );
        // No separator: empty member, matches nothing.
        assert_eq!(
            AttrPattern::from("Account"),
            AttrPattern::new("Account", "")
        );
    }
}
