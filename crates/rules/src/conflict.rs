//! Pluggable conflict-resolution strategies.
//!
//! When one event triggers several rules, *something* must pick an
//! execution order. The paper makes extensibility here a design goal:
//! "our design allows incorporation of new features (for example,
//! providing a new conflict resolution strategy) without modifications
//! to application code" (§3). The strategy is therefore a trait object
//! installed on the engine, replaceable at runtime.

use crate::engine::ReadyFiring;

/// Orders a batch of simultaneous firings.
pub trait ConflictResolver: Send + Sync {
    /// Strategy name (for experiment tables).
    fn name(&self) -> &'static str;

    /// Reorder `firings` in place into execution order.
    fn order(&self, firings: &mut [ReadyFiring]);
}

/// Fire higher-priority rules first; ties keep trigger order (stable).
#[derive(Debug, Default, Clone, Copy)]
pub struct PriorityResolver;

impl ConflictResolver for PriorityResolver {
    fn name(&self) -> &'static str {
        "priority"
    }
    fn order(&self, firings: &mut [ReadyFiring]) {
        firings.sort_by_key(|f| std::cmp::Reverse(f.priority));
    }
}

/// Fire in trigger order (the detection order) — the engine default.
#[derive(Debug, Default, Clone, Copy)]
pub struct FifoResolver;

impl ConflictResolver for FifoResolver {
    fn name(&self) -> &'static str {
        "fifo"
    }
    fn order(&self, _firings: &mut [ReadyFiring]) {}
}

/// Fire most recently triggered first.
#[derive(Debug, Default, Clone, Copy)]
pub struct LifoResolver;

impl ConflictResolver for LifoResolver {
    fn name(&self) -> &'static str {
        "lifo"
    }
    fn order(&self, firings: &mut [ReadyFiring]) {
        firings.reverse();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::body::{Firing, RuleBodyRegistry, ACTION_NOOP, COND_TRUE};
    use crate::rule::RuleId;
    use sentinel_events::CompositeOccurrence;

    fn firing(id: u64, priority: i32) -> ReadyFiring {
        let bodies = RuleBodyRegistry::new();
        ReadyFiring {
            priority,
            coupling: crate::coupling::CouplingMode::Immediate,
            condition: bodies.condition(COND_TRUE).unwrap(),
            action: bodies.action(ACTION_NOOP).unwrap(),
            firing: Firing {
                rule: RuleId(id),
                rule_name: format!("r{id}").into(),
                occurrence: CompositeOccurrence {
                    constituents: vec![],
                    start: id,
                    end: id,
                },
                lineage: Default::default(),
            },
            group: None,
        }
    }

    fn ids(fs: &[ReadyFiring]) -> Vec<u64> {
        fs.iter().map(|f| f.firing.rule.0).collect()
    }

    #[test]
    fn priority_orders_descending_and_is_stable() {
        let mut fs = vec![firing(1, 0), firing(2, 5), firing(3, 0), firing(4, 5)];
        PriorityResolver.order(&mut fs);
        assert_eq!(ids(&fs), [2, 4, 1, 3]);
    }

    #[test]
    fn fifo_keeps_trigger_order() {
        let mut fs = vec![firing(3, 9), firing(1, 0), firing(2, 5)];
        FifoResolver.order(&mut fs);
        assert_eq!(ids(&fs), [3, 1, 2]);
    }

    #[test]
    fn lifo_reverses() {
        let mut fs = vec![firing(1, 0), firing(2, 0), firing(3, 0)];
        LifoResolver.order(&mut fs);
        assert_eq!(ids(&fs), [3, 2, 1]);
    }

    #[test]
    fn priority_all_ties_is_identity() {
        // Equal priorities throughout: the stable sort must leave the
        // trigger order completely untouched.
        let mut fs = vec![firing(7, 3), firing(5, 3), firing(9, 3), firing(1, 3)];
        PriorityResolver.order(&mut fs);
        assert_eq!(ids(&fs), [7, 5, 9, 1]);
    }

    /// A custom resolver installed at runtime via `set_resolver` must
    /// actually be consulted by the engine — §3's "new conflict
    /// resolution strategy without modifications to application code".
    #[test]
    fn custom_resolver_installed_at_runtime_is_consulted() {
        use crate::engine::RuleEngine;
        use crate::rule::RuleDef;
        use sentinel_events::{EventExpr, EventModifier, PrimitiveEventSpec, PrimitiveOccurrence};
        use sentinel_object::{ClassDecl, ClassRegistry, Oid, Value};
        use std::sync::atomic::{AtomicUsize, Ordering};
        use std::sync::Arc;

        /// Reverses the batch and counts invocations.
        struct CountingReverser(Arc<AtomicUsize>);
        impl ConflictResolver for CountingReverser {
            fn name(&self) -> &'static str {
                "counting-reverser"
            }
            fn order(&self, firings: &mut [ReadyFiring]) {
                self.0.fetch_add(1, Ordering::SeqCst);
                firings.reverse();
            }
        }

        let mut reg = ClassRegistry::new();
        reg.define(ClassDecl::reactive("Stock").method("SetPrice", &[]))
            .unwrap();
        let mut eng = RuleEngine::new();
        let calls = Arc::new(AtomicUsize::new(0));
        eng.set_resolver(Box::new(CountingReverser(calls.clone())));

        let mk = |name: &str| {
            RuleDef::new(
                name,
                EventExpr::primitive(PrimitiveEventSpec::end("Stock", "SetPrice")),
                ACTION_NOOP,
            )
        };
        let first = eng.add_rule(mk("first"), Oid::NIL, &reg).unwrap();
        let second = eng.add_rule(mk("second"), Oid::NIL, &reg).unwrap();
        eng.subscriptions.subscribe_object(Oid(1), first);
        eng.subscriptions.subscribe_object(Oid(1), second);

        let cid = reg.id_of("Stock").unwrap();
        let fired = eng
            .on_occurrence(
                &reg,
                &PrimitiveOccurrence {
                    at: 1,
                    oid: Oid(1),
                    class: cid,
                    owner: cid,
                    method: "SetPrice".into(),
                    modifier: EventModifier::End,
                    params: Arc::from(vec![Value::Int(1)]),
                },
            )
            .unwrap();
        assert_eq!(calls.load(Ordering::SeqCst), 1, "resolver not consulted");
        assert_eq!(fired.len(), 2);
        // Trigger order was (first, second); the reverser flipped it.
        assert_eq!(fired[0].firing.rule, second);
        assert_eq!(fired[1].firing.rule, first);
    }
}
