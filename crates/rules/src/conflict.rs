//! Pluggable conflict-resolution strategies.
//!
//! When one event triggers several rules, *something* must pick an
//! execution order. The paper makes extensibility here a design goal:
//! "our design allows incorporation of new features (for example,
//! providing a new conflict resolution strategy) without modifications
//! to application code" (§3). The strategy is therefore a trait object
//! installed on the engine, replaceable at runtime.

use crate::engine::ReadyFiring;

/// Orders a batch of simultaneous firings.
pub trait ConflictResolver: Send + Sync {
    /// Strategy name (for experiment tables).
    fn name(&self) -> &'static str;

    /// Reorder `firings` in place into execution order.
    fn order(&self, firings: &mut [ReadyFiring]);
}

/// Fire higher-priority rules first; ties keep trigger order (stable).
#[derive(Debug, Default, Clone, Copy)]
pub struct PriorityResolver;

impl ConflictResolver for PriorityResolver {
    fn name(&self) -> &'static str {
        "priority"
    }
    fn order(&self, firings: &mut [ReadyFiring]) {
        firings.sort_by_key(|f| std::cmp::Reverse(f.priority));
    }
}

/// Fire in trigger order (the detection order) — the engine default.
#[derive(Debug, Default, Clone, Copy)]
pub struct FifoResolver;

impl ConflictResolver for FifoResolver {
    fn name(&self) -> &'static str {
        "fifo"
    }
    fn order(&self, _firings: &mut [ReadyFiring]) {}
}

/// Fire most recently triggered first.
#[derive(Debug, Default, Clone, Copy)]
pub struct LifoResolver;

impl ConflictResolver for LifoResolver {
    fn name(&self) -> &'static str {
        "lifo"
    }
    fn order(&self, firings: &mut [ReadyFiring]) {
        firings.reverse();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::body::{Firing, RuleBodyRegistry, ACTION_NOOP, COND_TRUE};
    use crate::rule::RuleId;
    use sentinel_events::CompositeOccurrence;

    fn firing(id: u64, priority: i32) -> ReadyFiring {
        let bodies = RuleBodyRegistry::new();
        ReadyFiring {
            priority,
            condition: bodies.condition(COND_TRUE).unwrap(),
            action: bodies.action(ACTION_NOOP).unwrap(),
            firing: Firing {
                rule: RuleId(id),
                rule_name: format!("r{id}").into(),
                occurrence: CompositeOccurrence {
                    constituents: vec![],
                    start: id,
                    end: id,
                },
            },
        }
    }

    fn ids(fs: &[ReadyFiring]) -> Vec<u64> {
        fs.iter().map(|f| f.firing.rule.0).collect()
    }

    #[test]
    fn priority_orders_descending_and_is_stable() {
        let mut fs = vec![firing(1, 0), firing(2, 5), firing(3, 0), firing(4, 5)];
        PriorityResolver.order(&mut fs);
        assert_eq!(ids(&fs), [2, 4, 1, 3]);
    }

    #[test]
    fn fifo_keeps_trigger_order() {
        let mut fs = vec![firing(3, 9), firing(1, 0), firing(2, 5)];
        FifoResolver.order(&mut fs);
        assert_eq!(ids(&fs), [3, 1, 2]);
    }

    #[test]
    fn lifo_reverses() {
        let mut fs = vec![firing(1, 0), firing(2, 0), firing(3, 0)];
        LifoResolver.order(&mut fs);
        assert_eq!(ids(&fs), [3, 2, 1]);
    }
}
