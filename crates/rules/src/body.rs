//! Named condition and action bodies — the PMF analog.
//!
//! The paper's rule class stores `PMF *condition, *action` — pointers to
//! C++ member functions. Persisting a pointer is meaningless; what
//! Zeitgeist actually persisted was the *identity* of the function, with
//! the code supplied by the (re)compiled application. This registry
//! reproduces that split: rules store body *names*; applications register
//! the code under those names at startup; recovery rebinds by name.

use crate::rule::RuleId;
use sentinel_events::CompositeOccurrence;
use sentinel_object::{ObjectError, Result, Value, World};
use std::collections::HashMap;
use std::sync::Arc;

/// Everything a condition/action can inspect about its triggering: the
/// rule identity and the composite occurrence (constituent primitives
/// with their recorded parameters — the paper's `Record`ed state).
#[derive(Debug, Clone)]
pub struct Firing {
    /// The triggered rule.
    pub rule: RuleId,
    /// Its name (cheap to clone into error messages).
    pub rule_name: Arc<str>,
    /// The detected (possibly composite) event occurrence.
    pub occurrence: CompositeOccurrence,
}

impl Firing {
    /// Parameter `i` of the constituent raised by `method`, if present.
    /// The common access pattern for conditions ("the amount passed to
    /// Change-Income").
    pub fn param_of(&self, method: &str, i: usize) -> Option<&Value> {
        self.occurrence
            .constituent_for_method(method)
            .and_then(|c| c.param(i))
    }
}

/// A condition body: evaluated when the rule's event is detected;
/// returning `Ok(true)` lets the action run.
pub type CondFn = Arc<dyn Fn(&mut dyn World, &Firing) -> Result<bool> + Send + Sync>;

/// An action body: executed when the condition holds. Returning
/// `Err(TransactionAborted)` aborts the triggering transaction.
pub type ActionFn = Arc<dyn Fn(&mut dyn World, &Firing) -> Result<()> + Send + Sync>;

/// Name → body registry for rule conditions and actions.
#[derive(Clone)]
pub struct RuleBodyRegistry {
    conditions: HashMap<String, CondFn>,
    actions: HashMap<String, ActionFn>,
    /// Bumped on every registration. Rules cache resolved body handles
    /// tagged with this version; a mismatch re-resolves, so re-registering
    /// a body (recovery, hot swap) invalidates every stale cache without
    /// the registry knowing which rules reference which names.
    version: u64,
}

impl std::fmt::Debug for RuleBodyRegistry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("RuleBodyRegistry")
            .field("conditions", &self.conditions.len())
            .field("actions", &self.actions.len())
            .finish()
    }
}

/// Built-in condition that always holds (a rule with no condition part).
pub const COND_TRUE: &str = "true";
/// Built-in action that aborts the triggering transaction — Figure 9's
/// `A : abort`.
pub const ACTION_ABORT: &str = "abort";
/// Built-in action that does nothing (event-logging rules).
pub const ACTION_NOOP: &str = "noop";

impl Default for RuleBodyRegistry {
    fn default() -> Self {
        let mut reg = RuleBodyRegistry {
            conditions: HashMap::new(),
            actions: HashMap::new(),
            version: 0,
        };
        reg.register_condition(COND_TRUE, |_, _| Ok(true));
        reg.register_action(ACTION_ABORT, |_, firing| {
            Err(ObjectError::abort(format!(
                "rule `{}` aborted the transaction",
                firing.rule_name
            )))
        });
        reg.register_action(ACTION_NOOP, |_, _| Ok(()));
        reg
    }
}

impl RuleBodyRegistry {
    /// A registry pre-populated with the built-in bodies.
    pub fn new() -> Self {
        Self::default()
    }

    /// Register (or replace) a condition body under `name`.
    pub fn register_condition<F>(&mut self, name: impl Into<String>, f: F)
    where
        F: Fn(&mut dyn World, &Firing) -> Result<bool> + Send + Sync + 'static,
    {
        self.version += 1;
        self.conditions.insert(name.into(), Arc::new(f));
    }

    /// Register (or replace) an action body under `name`.
    pub fn register_action<F>(&mut self, name: impl Into<String>, f: F)
    where
        F: Fn(&mut dyn World, &Firing) -> Result<()> + Send + Sync + 'static,
    {
        self.version += 1;
        self.actions.insert(name.into(), Arc::new(f));
    }

    /// Current registration version (see the `version` field).
    pub fn version(&self) -> u64 {
        self.version
    }

    /// Fetch a condition body.
    pub fn condition(&self, name: &str) -> Result<CondFn> {
        self.conditions
            .get(name)
            .cloned()
            .ok_or_else(|| ObjectError::App(format!("unregistered condition body `{name}`")))
    }

    /// Fetch an action body.
    pub fn action(&self, name: &str) -> Result<ActionFn> {
        self.actions
            .get(name)
            .cloned()
            .ok_or_else(|| ObjectError::App(format!("unregistered action body `{name}`")))
    }

    /// Is a condition body registered?
    pub fn has_condition(&self, name: &str) -> bool {
        self.conditions.contains_key(name)
    }

    /// Is an action body registered?
    pub fn has_action(&self, name: &str) -> bool {
        self.actions.contains_key(name)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sentinel_events::{EventModifier, PrimitiveOccurrence};
    use sentinel_object::{ClassId, Oid};

    fn firing() -> Firing {
        let p = PrimitiveOccurrence {
            at: 1,
            oid: Oid(9),
            class: ClassId(0),
            owner: ClassId(0),
            method: "Change-Income".into(),
            modifier: EventModifier::End,
            params: Arc::from(vec![Value::Float(55.0)]),
        };
        Firing {
            rule: RuleId(1),
            rule_name: "IncomeLevel".into(),
            occurrence: CompositeOccurrence::from_primitive(p),
        }
    }

    #[test]
    fn builtins_present() {
        let reg = RuleBodyRegistry::new();
        assert!(reg.has_condition(COND_TRUE));
        assert!(reg.has_action(ACTION_ABORT));
        assert!(reg.has_action(ACTION_NOOP));
        assert!(!reg.has_condition("nope"));
        assert!(matches!(reg.condition("nope"), Err(ObjectError::App(_))));
    }

    #[test]
    fn abort_action_signals_abort_with_rule_name() {
        let reg = RuleBodyRegistry::new();
        let action = reg.action(ACTION_ABORT).unwrap();
        // A world is required by the signature but not touched by abort;
        // passing a dummy is fine because the closure ignores it.
        struct NoWorld(sentinel_object::ClassRegistry);
        impl World for NoWorld {
            fn registry(&self) -> &sentinel_object::ClassRegistry {
                &self.0
            }
            fn create(&mut self, _: &str) -> Result<Oid> {
                unimplemented!()
            }
            fn delete(&mut self, _: Oid) -> Result<()> {
                unimplemented!()
            }
            fn get_attr(&self, _: Oid, _: &str) -> Result<Value> {
                unimplemented!()
            }
            fn set_attr(&mut self, _: Oid, _: &str, _: Value) -> Result<()> {
                unimplemented!()
            }
            fn send(&mut self, _: Oid, _: &str, _: &[Value]) -> Result<Value> {
                unimplemented!()
            }
            fn class_of(&self, _: Oid) -> Result<ClassId> {
                unimplemented!()
            }
            fn extent(&self, _: &str) -> Result<Vec<Oid>> {
                unimplemented!()
            }
            fn now(&self) -> u64 {
                0
            }
        }
        let mut w = NoWorld(sentinel_object::ClassRegistry::new());
        let err = action(&mut w, &firing()).err().unwrap();
        assert!(err.is_abort());
        assert!(err.to_string().contains("IncomeLevel"));
    }

    #[test]
    fn firing_param_access() {
        let f = firing();
        assert_eq!(f.param_of("Change-Income", 0), Some(&Value::Float(55.0)));
        assert_eq!(f.param_of("Change-Income", 1), None);
        assert_eq!(f.param_of("Other", 0), None);
    }
}
