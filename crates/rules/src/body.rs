//! Named condition and action bodies — the PMF analog.
//!
//! The paper's rule class stores `PMF *condition, *action` — pointers to
//! C++ member functions. Persisting a pointer is meaningless; what
//! Zeitgeist actually persisted was the *identity* of the function, with
//! the code supplied by the (re)compiled application. This registry
//! reproduces that split: rules store body *names*; applications register
//! the code under those names at startup; recovery rebinds by name.

use crate::rule::RuleId;
use sentinel_events::CompositeOccurrence;
use sentinel_object::{ObjectError, Result, Value, World};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::sync::Arc;

/// A primitive event an action may raise: "some `class::method` send".
/// Matches both the `begin` and `end` shade and closes over subclasses
/// (declaring `Account::Withdraw` covers `SavingsAccount::Withdraw`).
/// Used by the static analyzer to build the triggering graph.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct EventPattern {
    /// Class name (the declared static class; subclass sends match too).
    pub class: String,
    /// Method name.
    pub method: String,
}

impl EventPattern {
    /// Convenience constructor.
    pub fn new(class: impl Into<String>, method: impl Into<String>) -> Self {
        EventPattern {
            class: class.into(),
            method: method.into(),
        }
    }
}

impl std::fmt::Display for EventPattern {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}::{}", self.class, self.method)
    }
}

/// An attribute an action may write, for the analyzer's confluence
/// check. Subclass-closed like [`EventPattern`].
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct AttrPattern {
    /// Class name.
    pub class: String,
    /// Attribute name.
    pub attr: String,
}

impl AttrPattern {
    /// Convenience constructor.
    pub fn new(class: impl Into<String>, attr: impl Into<String>) -> Self {
        AttrPattern {
            class: class.into(),
            attr: attr.into(),
        }
    }
}

impl std::fmt::Display for AttrPattern {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}.{}", self.class, self.attr)
    }
}

/// Declared side-effects of an action body. Actions are opaque Rust
/// closures, so the analyzer cannot inspect them; this is the contract
/// the author states at registration. An action with *no* declaration
/// is conservatively analyzed as "may raise anything" (and flagged with
/// an `unknown-effects` info lint); a declared empty `ActionEffects`
/// asserts the action raises no events, writes no attributes, and
/// reads no attributes.
///
/// The declaration covers the whole rule firing: a rule's *condition*
/// reads must also fall inside the action's declared `reads`/`writes`
/// footprint for the parallel scheduler to trust the rule.
#[derive(Debug, Clone, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct ActionEffects {
    /// Events the action may cause to be raised (message sends it makes).
    pub raises: Vec<EventPattern>,
    /// Attributes the action may write.
    pub writes: Vec<AttrPattern>,
    /// Attributes the firing (condition + action) may read *beyond* its
    /// writes. `None` means the read-set is **unknown** — the parallel
    /// scheduler must assume the firing can read anything and keeps its
    /// rules on the serial path; `Some(vec![])` asserts the firing reads
    /// nothing but what it writes.
    pub reads: Option<Vec<AttrPattern>>,
}

impl ActionEffects {
    /// An action that provably raises no events, writes nothing, and
    /// reads nothing (pure observers of firing parameters, `abort`,
    /// `noop`).
    pub fn none() -> Self {
        ActionEffects {
            raises: Vec::new(),
            writes: Vec::new(),
            reads: Some(Vec::new()),
        }
    }

    /// Builder: add a raised event pattern.
    pub fn raising(mut self, class: impl Into<String>, method: impl Into<String>) -> Self {
        self.raises.push(EventPattern::new(class, method));
        self
    }

    /// Builder: add a written attribute pattern.
    pub fn writing(mut self, class: impl Into<String>, attr: impl Into<String>) -> Self {
        self.writes.push(AttrPattern::new(class, attr));
        self
    }

    /// Builder: add a read attribute pattern (an attribute the firing
    /// reads but does not write — declared writes are implicitly
    /// readable).
    pub fn reading(mut self, class: impl Into<String>, attr: impl Into<String>) -> Self {
        self.reads
            .get_or_insert_with(Vec::new)
            .push(AttrPattern::new(class, attr));
        self
    }

    /// Builder: mark the read-set as unknown. The analyzer then treats
    /// the action's rules as able to read anything, which confines them
    /// to the serial execution path.
    pub fn reads_unknown(mut self) -> Self {
        self.reads = None;
        self
    }
}

/// Causal coordinates of a firing, stamped at scheduling time while
/// firing history is enabled (all-zero [`Default`] otherwise). The
/// coordinates travel inside the [`Firing`] through the deferred and
/// detached queues, so a firing executed long after its raise still
/// knows its cascade.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Lineage {
    /// `FiringId` value allocated by the telemetry handle (0 = never
    /// stamped, i.e. history was off when the firing was scheduled).
    pub id: u64,
    /// Id of the firing whose action raised the triggering occurrence
    /// (`None` for a cascade root).
    pub parent: Option<u64>,
    /// OccId of the occurrence at the root of this cascade.
    pub root: u64,
    /// Cascade depth: 0 for a root firing, parent's depth + 1 below.
    pub depth: u32,
}

/// Everything a condition/action can inspect about its triggering: the
/// rule identity and the composite occurrence (constituent primitives
/// with their recorded parameters — the paper's `Record`ed state).
#[derive(Debug, Clone)]
pub struct Firing {
    /// The triggered rule.
    pub rule: RuleId,
    /// Its name (cheap to clone into error messages).
    pub rule_name: Arc<str>,
    /// The detected (possibly composite) event occurrence.
    pub occurrence: CompositeOccurrence,
    /// Causal coordinates (meaningful only while firing history is
    /// enabled).
    pub lineage: Lineage,
}

impl Firing {
    /// Parameter `i` of the constituent raised by `method`, if present.
    /// The common access pattern for conditions ("the amount passed to
    /// Change-Income").
    pub fn param_of(&self, method: &str, i: usize) -> Option<&Value> {
        self.occurrence
            .constituent_for_method(method)
            .and_then(|c| c.param(i))
    }
}

/// A condition body: evaluated when the rule's event is detected;
/// returning `Ok(true)` lets the action run.
pub type CondFn = Arc<dyn Fn(&mut dyn World, &Firing) -> Result<bool> + Send + Sync>;

/// An action body: executed when the condition holds. Returning
/// `Err(TransactionAborted)` aborts the triggering transaction.
pub type ActionFn = Arc<dyn Fn(&mut dyn World, &Firing) -> Result<()> + Send + Sync>;

/// Name → body registry for rule conditions and actions.
#[derive(Clone)]
pub struct RuleBodyRegistry {
    conditions: HashMap<String, CondFn>,
    actions: HashMap<String, ActionFn>,
    /// Declared side-effects per action name. Absence means "effects
    /// unknown" — the analyzer treats the action as able to raise
    /// anything.
    effects: HashMap<String, ActionEffects>,
    /// Bumped on every registration. Rules cache resolved body handles
    /// tagged with this version; a mismatch re-resolves, so re-registering
    /// a body (recovery, hot swap) invalidates every stale cache without
    /// the registry knowing which rules reference which names.
    version: u64,
}

impl std::fmt::Debug for RuleBodyRegistry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("RuleBodyRegistry")
            .field("conditions", &self.conditions.len())
            .field("actions", &self.actions.len())
            .finish()
    }
}

/// Built-in condition that always holds (a rule with no condition part).
pub const COND_TRUE: &str = "true";
/// Built-in action that aborts the triggering transaction — Figure 9's
/// `A : abort`.
pub const ACTION_ABORT: &str = "abort";
/// Built-in action that does nothing (event-logging rules).
pub const ACTION_NOOP: &str = "noop";

impl Default for RuleBodyRegistry {
    fn default() -> Self {
        let mut reg = RuleBodyRegistry {
            conditions: HashMap::new(),
            actions: HashMap::new(),
            effects: HashMap::new(),
            version: 0,
        };
        reg.register_condition(COND_TRUE, |_, _| Ok(true));
        // The built-ins provably raise no events and write nothing, so
        // they carry an empty effects declaration out of the box.
        reg.register_action_with_effects(ACTION_ABORT, ActionEffects::none(), |_, firing| {
            Err(ObjectError::abort(format!(
                "rule `{}` aborted the transaction",
                firing.rule_name
            )))
        });
        reg.register_action_with_effects(ACTION_NOOP, ActionEffects::none(), |_, _| Ok(()));
        reg
    }
}

impl RuleBodyRegistry {
    /// A registry pre-populated with the built-in bodies.
    pub fn new() -> Self {
        Self::default()
    }

    /// Register (or replace) a condition body under `name`.
    pub fn register_condition<F>(&mut self, name: impl Into<String>, f: F)
    where
        F: Fn(&mut dyn World, &Firing) -> Result<bool> + Send + Sync + 'static,
    {
        self.version += 1;
        self.conditions.insert(name.into(), Arc::new(f));
    }

    /// Register (or replace) an action body under `name` with no
    /// effects declaration ("effects unknown" to the analyzer). Any
    /// previously declared effects for the name are dropped, since they
    /// described the replaced body.
    pub fn register_action<F>(&mut self, name: impl Into<String>, f: F)
    where
        F: Fn(&mut dyn World, &Firing) -> Result<()> + Send + Sync + 'static,
    {
        self.version += 1;
        let name = name.into();
        self.effects.remove(&name);
        self.actions.insert(name, Arc::new(f));
    }

    /// Register (or replace) an action body together with its declared
    /// side-effects — what events it may raise and attributes it may
    /// write. The analyzer uses the declaration to build precise
    /// triggering-graph edges instead of conservative ones.
    pub fn register_action_with_effects<F>(
        &mut self,
        name: impl Into<String>,
        effects: ActionEffects,
        f: F,
    ) where
        F: Fn(&mut dyn World, &Firing) -> Result<()> + Send + Sync + 'static,
    {
        self.install_action(name.into(), Some(effects), Arc::new(f));
    }

    /// Install an already-boxed action body, with effects declared when
    /// `effects` is `Some` and dropped to "unknown" otherwise. The shared
    /// back end of [`register_action_with_effects`](Self::register_action_with_effects)
    /// and [`register_def`](Self::register_def).
    pub(crate) fn install_action(
        &mut self,
        name: String,
        effects: Option<ActionEffects>,
        body: ActionFn,
    ) {
        self.version += 1;
        match effects {
            Some(fx) => {
                self.effects.insert(name.clone(), fx);
            }
            None => {
                self.effects.remove(&name);
            }
        }
        self.actions.insert(name, body);
    }

    /// Declare (or replace) the effects of an already-registered action.
    /// Errors with [`ObjectError::BodyNotRegistered`] if no action body
    /// exists under `name` — a declaration for a missing body would be
    /// silently meaningless.
    pub fn declare_action_effects(
        &mut self,
        name: impl Into<String>,
        effects: ActionEffects,
    ) -> Result<()> {
        self.declare_effects_internal(name.into(), effects)
    }

    pub(crate) fn declare_effects_internal(
        &mut self,
        name: String,
        effects: ActionEffects,
    ) -> Result<()> {
        if !self.actions.contains_key(&name) {
            return Err(ObjectError::BodyNotRegistered {
                kind: "action",
                name,
            });
        }
        self.version += 1;
        self.effects.insert(name, effects);
        Ok(())
    }

    /// Declared effects of an action, if the author provided them.
    /// `None` means "unknown" — not "no effects".
    pub fn action_effects(&self, name: &str) -> Option<&ActionEffects> {
        self.effects.get(name)
    }

    /// Current registration version (see the `version` field).
    pub fn version(&self) -> u64 {
        self.version
    }

    /// Fetch a condition body.
    pub fn condition(&self, name: &str) -> Result<CondFn> {
        self.conditions
            .get(name)
            .cloned()
            .ok_or_else(|| ObjectError::BodyNotRegistered {
                kind: "condition",
                name: name.to_string(),
            })
    }

    /// Fetch an action body.
    pub fn action(&self, name: &str) -> Result<ActionFn> {
        self.actions
            .get(name)
            .cloned()
            .ok_or_else(|| ObjectError::BodyNotRegistered {
                kind: "action",
                name: name.to_string(),
            })
    }

    /// Is a condition body registered?
    pub fn has_condition(&self, name: &str) -> bool {
        self.conditions.contains_key(name)
    }

    /// Is an action body registered?
    pub fn has_action(&self, name: &str) -> bool {
        self.actions.contains_key(name)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sentinel_events::{EventModifier, PrimitiveOccurrence};
    use sentinel_object::{ClassId, Oid};

    fn firing() -> Firing {
        let p = PrimitiveOccurrence {
            at: 1,
            oid: Oid(9),
            class: ClassId(0),
            owner: ClassId(0),
            method: "Change-Income".into(),
            modifier: EventModifier::End,
            params: Arc::from(vec![Value::Float(55.0)]),
        };
        Firing {
            rule: RuleId(1),
            rule_name: "IncomeLevel".into(),
            occurrence: CompositeOccurrence::from_primitive(p),
            lineage: Lineage::default(),
        }
    }

    #[test]
    fn builtins_present() {
        let reg = RuleBodyRegistry::new();
        assert!(reg.has_condition(COND_TRUE));
        assert!(reg.has_action(ACTION_ABORT));
        assert!(reg.has_action(ACTION_NOOP));
        assert!(!reg.has_condition("nope"));
        assert!(matches!(
            reg.condition("nope"),
            Err(ObjectError::BodyNotRegistered {
                kind: "condition",
                ..
            })
        ));
        assert!(matches!(
            reg.action("nope"),
            Err(ObjectError::BodyNotRegistered { kind: "action", .. })
        ));
        // Built-ins ship with an explicit "no effects" declaration.
        assert_eq!(
            reg.action_effects(ACTION_ABORT),
            Some(&ActionEffects::none())
        );
        assert_eq!(
            reg.action_effects(ACTION_NOOP),
            Some(&ActionEffects::none())
        );
    }

    #[test]
    fn effects_declaration_lifecycle() {
        let mut reg = RuleBodyRegistry::new();
        // Plain registration leaves effects unknown.
        reg.register_action("mutate", |_, _| Ok(()));
        assert_eq!(reg.action_effects("mutate"), None);
        // A declaration sticks...
        let fx = ActionEffects::none()
            .raising("Account", "Withdraw")
            .writing("Account", "suspicious");
        reg.declare_action_effects("mutate", fx.clone()).unwrap();
        assert_eq!(reg.action_effects("mutate"), Some(&fx));
        // ...until the body is replaced without one.
        reg.register_action("mutate", |_, _| Ok(()));
        assert_eq!(reg.action_effects("mutate"), None);
        // Registering with effects sets both at once.
        reg.register_action_with_effects("mutate", fx.clone(), |_, _| Ok(()));
        assert_eq!(reg.action_effects("mutate"), Some(&fx));
        // Declaring for a missing body is an error, not a silent no-op.
        assert!(matches!(
            reg.declare_action_effects("ghost", ActionEffects::none()),
            Err(ObjectError::BodyNotRegistered { kind: "action", .. })
        ));
    }

    #[test]
    fn abort_action_signals_abort_with_rule_name() {
        let reg = RuleBodyRegistry::new();
        let action = reg.action(ACTION_ABORT).unwrap();
        // A world is required by the signature but not touched by abort;
        // passing a dummy is fine because the closure ignores it. Every
        // operation returns a clean `Unsupported` error (never panics),
        // so a body that unexpectedly touches the world surfaces as a
        // diagnosable failure instead of unwinding through the engine.
        struct NoWorld(sentinel_object::ClassRegistry);
        fn no_world(op: &str) -> ObjectError {
            ObjectError::Unsupported(format!("{op}: no world available in this context"))
        }
        impl World for NoWorld {
            fn registry(&self) -> &sentinel_object::ClassRegistry {
                &self.0
            }
            fn create(&mut self, _: &str) -> Result<Oid> {
                Err(no_world("create"))
            }
            fn delete(&mut self, _: Oid) -> Result<()> {
                Err(no_world("delete"))
            }
            fn get_attr(&self, _: Oid, _: &str) -> Result<Value> {
                Err(no_world("get_attr"))
            }
            fn set_attr(&mut self, _: Oid, _: &str, _: Value) -> Result<()> {
                Err(no_world("set_attr"))
            }
            fn send(&mut self, _: Oid, _: &str, _: &[Value]) -> Result<Value> {
                Err(no_world("send"))
            }
            fn class_of(&self, _: Oid) -> Result<ClassId> {
                Err(no_world("class_of"))
            }
            fn extent(&self, _: &str) -> Result<Vec<Oid>> {
                Err(no_world("extent"))
            }
            fn now(&self) -> u64 {
                0
            }
        }
        let mut w = NoWorld(sentinel_object::ClassRegistry::new());
        let err = action(&mut w, &firing()).err().unwrap();
        assert!(err.is_abort());
        assert!(err.to_string().contains("IncomeLevel"));
    }

    #[test]
    fn firing_param_access() {
        let f = firing();
        assert_eq!(f.param_of("Change-Income", 0), Some(&Value::Float(55.0)));
        assert_eq!(f.param_of("Change-Income", 1), None);
        assert_eq!(f.param_of("Other", 0), None);
    }
}
