//! The subscription mechanism (paper §3.5, §4.1, Figure 4).
//!
//! The paper's `Reactive` class keeps a `consumers` list per reactive
//! object: the notifiable objects (rules, event objects) that subscribed
//! to its events. This manager centralises those per-object lists —
//! physically one map instead of a field in every object, which is an
//! implementation detail; the *semantics* are per-object lists, and
//! lookup cost is proportional to the subscribers of the generating
//! object, not to the number of rules in the system (the paper's first
//! claimed advantage, benchmarked in E3).
//!
//! Two granularities:
//!
//! * **instance subscriptions** (`Fred.Subscribe(IncomeLevel)`) — the
//!   rule hears events from exactly that object;
//! * **class subscriptions** — the rule hears events from every instance
//!   of a class, subclass instances included. This implements class-level
//!   rules (Figure 9) with O(1) association cost per rule instead of
//!   O(instances) (experiment E10).

use crate::rule::RuleId;
use sentinel_object::{ClassId, ClassRegistry, Oid};
use std::collections::{HashMap, HashSet};

/// Consumer lists at instance and class granularity.
#[derive(Debug, Default)]
pub struct SubscriptionManager {
    by_object: HashMap<Oid, Vec<RuleId>>,
    by_class: HashMap<ClassId, Vec<RuleId>>,
    // Reverse indices so a rule can be dropped in O(its subscriptions).
    objects_of: HashMap<RuleId, HashSet<Oid>>,
    classes_of: HashMap<RuleId, HashSet<ClassId>>,
    /// Bumped on every mutation. The engine's routing index records the
    /// generation it was built at and rebuilds on mismatch, which keeps
    /// the index correct even though these methods are reachable without
    /// going through the engine (`engine.subscriptions` is public).
    generation: u64,
}

impl SubscriptionManager {
    /// An empty subscription table.
    pub fn new() -> Self {
        Self::default()
    }

    /// `object.Subscribe(rule)` — the rule becomes a consumer of the
    /// object's events. Idempotent.
    pub fn subscribe_object(&mut self, object: Oid, rule: RuleId) {
        if self.objects_of.entry(rule).or_default().insert(object) {
            self.by_object.entry(object).or_default().push(rule);
            self.generation += 1;
        }
    }

    /// Reverse of [`subscribe_object`](Self::subscribe_object).
    pub fn unsubscribe_object(&mut self, object: Oid, rule: RuleId) {
        if let Some(set) = self.objects_of.get_mut(&rule) {
            if set.remove(&object) {
                if let Some(v) = self.by_object.get_mut(&object) {
                    v.retain(|&r| r != rule);
                }
                self.generation += 1;
            }
        }
    }

    /// Subscribe a rule to every instance of a class (present and
    /// future) — the class-level rule association. Idempotent.
    pub fn subscribe_class(&mut self, class: ClassId, rule: RuleId) {
        if self.classes_of.entry(rule).or_default().insert(class) {
            self.by_class.entry(class).or_default().push(rule);
            self.generation += 1;
        }
    }

    /// Reverse of [`subscribe_class`](Self::subscribe_class).
    pub fn unsubscribe_class(&mut self, class: ClassId, rule: RuleId) {
        if let Some(set) = self.classes_of.get_mut(&rule) {
            if set.remove(&class) {
                if let Some(v) = self.by_class.get_mut(&class) {
                    v.retain(|&r| r != rule);
                }
                self.generation += 1;
            }
        }
    }

    /// Drop every subscription of a rule (rule deletion).
    pub fn remove_rule(&mut self, rule: RuleId) {
        if let Some(objects) = self.objects_of.remove(&rule) {
            for o in objects {
                if let Some(v) = self.by_object.get_mut(&o) {
                    v.retain(|&r| r != rule);
                }
                self.generation += 1;
            }
        }
        if let Some(classes) = self.classes_of.remove(&rule) {
            for c in classes {
                if let Some(v) = self.by_class.get_mut(&c) {
                    v.retain(|&r| r != rule);
                }
                self.generation += 1;
            }
        }
    }

    /// Drop the consumer list of a deleted object.
    pub fn remove_object(&mut self, object: Oid) {
        if let Some(rules) = self.by_object.remove(&object) {
            for r in rules {
                if let Some(set) = self.objects_of.get_mut(&r) {
                    set.remove(&object);
                }
            }
            self.generation += 1;
        }
    }

    /// Mutation counter: changes whenever any subscription edge is added
    /// or removed. Caches over the consumer lists key on this.
    pub fn generation(&self) -> u64 {
        self.generation
    }

    /// Iterate the instance-level consumer lists (index construction).
    pub(crate) fn object_lists(&self) -> impl Iterator<Item = (Oid, &[RuleId])> {
        self.by_object.iter().map(|(&o, v)| (o, v.as_slice()))
    }

    /// The consumer list of one class, if any (index construction).
    pub(crate) fn class_list(&self, class: ClassId) -> Option<&[RuleId]> {
        self.by_class.get(&class).map(Vec::as_slice)
    }

    /// The consumers to notify when `object` (of dynamic class `class`)
    /// generates an event: its instance subscribers plus the class
    /// subscribers of every class in its linearization, deduplicated in
    /// subscription order.
    ///
    /// `out` doubles as the seen-list: fan-outs are small, so one linear
    /// `contains` scan per class subscriber beats allocating a `HashSet`
    /// per event. Instance lists are duplicate-free by construction
    /// (idempotent insert), so only the class loop needs the scan — which
    /// also catches a rule subscribed both to the object and its class.
    pub fn consumers(
        &self,
        registry: &ClassRegistry,
        object: Oid,
        class: ClassId,
        out: &mut Vec<RuleId>,
    ) {
        out.clear();
        if let Some(v) = self.by_object.get(&object) {
            out.extend_from_slice(v);
        }
        for &c in &registry.get(class).linearization {
            if let Some(v) = self.by_class.get(&c) {
                for &r in v {
                    if !out.contains(&r) {
                        out.push(r);
                    }
                }
            }
        }
    }

    /// The objects a rule is subscribed to (unspecified order).
    pub fn objects_of(&self, rule: RuleId) -> Vec<Oid> {
        self.objects_of
            .get(&rule)
            .map(|s| s.iter().copied().collect())
            .unwrap_or_default()
    }

    /// The classes a rule is subscribed to (unspecified order).
    pub fn classes_of(&self, rule: RuleId) -> Vec<ClassId> {
        self.classes_of
            .get(&rule)
            .map(|s| s.iter().copied().collect())
            .unwrap_or_default()
    }

    /// Number of instance subscriptions of a rule.
    pub fn object_subscription_count(&self, rule: RuleId) -> usize {
        self.objects_of.get(&rule).map(HashSet::len).unwrap_or(0)
    }

    /// Number of class subscriptions of a rule.
    pub fn class_subscription_count(&self, rule: RuleId) -> usize {
        self.classes_of.get(&rule).map(HashSet::len).unwrap_or(0)
    }

    /// Total subscription edges (memory metric for E4/E10).
    pub fn edge_count(&self) -> usize {
        self.objects_of.values().map(HashSet::len).sum::<usize>()
            + self.classes_of.values().map(HashSet::len).sum::<usize>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sentinel_object::ClassDecl;

    fn registry() -> (ClassRegistry, ClassId, ClassId) {
        let mut reg = ClassRegistry::new();
        let emp = reg.define(ClassDecl::reactive("Employee")).unwrap();
        let mgr = reg
            .define(ClassDecl::reactive("Manager").parent("Employee"))
            .unwrap();
        (reg, emp, mgr)
    }

    #[test]
    fn instance_subscription_delivery() {
        let (reg, emp, _) = registry();
        let mut subs = SubscriptionManager::new();
        let fred = Oid(1);
        let mike = Oid(2);
        subs.subscribe_object(fred, RuleId(10));
        subs.subscribe_object(fred, RuleId(11));
        subs.subscribe_object(mike, RuleId(11));

        let mut out = Vec::new();
        subs.consumers(&reg, fred, emp, &mut out);
        assert_eq!(out, vec![RuleId(10), RuleId(11)]);
        subs.consumers(&reg, mike, emp, &mut out);
        assert_eq!(out, vec![RuleId(11)]);
        subs.consumers(&reg, Oid(99), emp, &mut out);
        assert!(out.is_empty());
    }

    #[test]
    fn subscription_is_idempotent() {
        let (reg, emp, _) = registry();
        let mut subs = SubscriptionManager::new();
        subs.subscribe_object(Oid(1), RuleId(1));
        subs.subscribe_object(Oid(1), RuleId(1));
        let mut out = Vec::new();
        subs.consumers(&reg, Oid(1), emp, &mut out);
        assert_eq!(out.len(), 1);
        assert_eq!(subs.edge_count(), 1);
    }

    #[test]
    fn class_subscription_covers_subclasses() {
        let (reg, emp, mgr) = registry();
        let mut subs = SubscriptionManager::new();
        subs.subscribe_class(emp, RuleId(7));
        let mut out = Vec::new();
        // An event from a Manager instance reaches the Employee-level rule.
        subs.consumers(&reg, Oid(5), mgr, &mut out);
        assert_eq!(out, vec![RuleId(7)]);
        // A rule on Manager does not hear plain Employees.
        subs.subscribe_class(mgr, RuleId(8));
        subs.consumers(&reg, Oid(6), emp, &mut out);
        assert_eq!(out, vec![RuleId(7)]);
        subs.consumers(&reg, Oid(5), mgr, &mut out);
        assert_eq!(out, vec![RuleId(8), RuleId(7)]);
    }

    #[test]
    fn object_plus_class_subscription_delivers_once() {
        let (reg, emp, _) = registry();
        let mut subs = SubscriptionManager::new();
        subs.subscribe_object(Oid(1), RuleId(3));
        subs.subscribe_class(emp, RuleId(3));
        let mut out = Vec::new();
        subs.consumers(&reg, Oid(1), emp, &mut out);
        assert_eq!(out, vec![RuleId(3)]);
    }

    #[test]
    fn unsubscribe_and_remove() {
        let (reg, emp, _) = registry();
        let mut subs = SubscriptionManager::new();
        subs.subscribe_object(Oid(1), RuleId(1));
        subs.subscribe_object(Oid(2), RuleId(1));
        subs.subscribe_class(emp, RuleId(1));
        assert_eq!(subs.edge_count(), 3);

        subs.unsubscribe_object(Oid(1), RuleId(1));
        let mut out = Vec::new();
        subs.consumers(&reg, Oid(1), emp, &mut out);
        assert_eq!(out, vec![RuleId(1)], "class subscription still applies");
        subs.unsubscribe_class(emp, RuleId(1));
        subs.consumers(&reg, Oid(1), emp, &mut out);
        assert!(out.is_empty());

        subs.subscribe_object(Oid(3), RuleId(1));
        subs.remove_rule(RuleId(1));
        subs.consumers(&reg, Oid(3), emp, &mut out);
        assert!(out.is_empty());
        assert_eq!(subs.edge_count(), 0);
    }

    #[test]
    fn remove_object_clears_its_consumer_list() {
        let (reg, emp, _) = registry();
        let mut subs = SubscriptionManager::new();
        subs.subscribe_object(Oid(1), RuleId(1));
        subs.remove_object(Oid(1));
        let mut out = Vec::new();
        subs.consumers(&reg, Oid(1), emp, &mut out);
        assert!(out.is_empty());
        assert_eq!(subs.object_subscription_count(RuleId(1)), 0);
    }
}
