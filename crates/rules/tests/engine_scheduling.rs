//! Engine scheduling behaviour: deferred-queue ordering under conflict
//! resolvers, mixed class/instance delivery, stats accounting, and
//! capture lifecycles.

use sentinel_events::{EventExpr, EventModifier, PrimitiveEventSpec, PrimitiveOccurrence};
use sentinel_object::{ClassDecl, ClassRegistry, Oid, Value};
use sentinel_rules::{CouplingMode, PriorityResolver, RuleDef, RuleEngine, ACTION_NOOP};
use std::sync::Arc;

fn registry() -> ClassRegistry {
    let mut reg = ClassRegistry::new();
    reg.define(ClassDecl::reactive("S").method("m", &[]))
        .unwrap();
    reg
}

fn occ(reg: &ClassRegistry, at: u64, oid: u64) -> PrimitiveOccurrence {
    let cid = reg.id_of("S").unwrap();
    PrimitiveOccurrence {
        at,
        oid: Oid(oid),
        class: cid,
        owner: cid,
        method: "m".into(),
        modifier: EventModifier::End,
        params: Arc::from(Vec::<Value>::new()),
    }
}

fn leaf() -> EventExpr {
    EventExpr::primitive(PrimitiveEventSpec::end("S", "m"))
}

#[test]
fn deferred_queue_is_ordered_by_the_resolver_at_drain() {
    let reg = registry();
    let mut eng = RuleEngine::new();
    eng.set_resolver(Box::new(PriorityResolver));
    for (name, prio) in [("low", 1), ("high", 9), ("mid", 5)] {
        let id = eng
            .add_rule(
                RuleDef::new(name, leaf(), ACTION_NOOP)
                    .coupling(CouplingMode::Deferred)
                    .priority(prio),
                Oid::NIL,
                &reg,
            )
            .unwrap();
        eng.subscriptions.subscribe_object(Oid(1), id);
    }
    eng.on_occurrence(&reg, &occ(&reg, 1, 1)).unwrap();
    let drained = eng.take_deferred();
    let names: Vec<&str> = drained.iter().map(|f| &*f.firing.rule_name).collect();
    assert_eq!(names, ["high", "mid", "low"]);
    // Queue is empty afterwards.
    assert!(eng.take_deferred().is_empty());
}

#[test]
fn engine_stats_route_per_coupling_mode() {
    let reg = registry();
    let mut eng = RuleEngine::new();
    for (name, mode) in [
        ("i", CouplingMode::Immediate),
        ("d", CouplingMode::Deferred),
        ("x", CouplingMode::Detached),
    ] {
        let id = eng
            .add_rule(
                RuleDef::new(name, leaf(), ACTION_NOOP).coupling(mode),
                Oid::NIL,
                &reg,
            )
            .unwrap();
        eng.subscriptions.subscribe_object(Oid(1), id);
    }
    for t in 1..=3 {
        eng.on_occurrence(&reg, &occ(&reg, t, 1)).unwrap();
    }
    let s = eng.stats();
    assert_eq!(s.occurrences, 3);
    assert_eq!(s.notifications, 9);
    assert_eq!((s.immediate, s.deferred, s.detached), (3, 3, 3));
    eng.reset_stats();
    assert_eq!(eng.stats().occurrences, 0);
}

#[test]
fn class_and_instance_subscription_deliver_once() {
    let reg = registry();
    let mut eng = RuleEngine::new();
    let id = eng
        .add_rule(RuleDef::new("r", leaf(), ACTION_NOOP), Oid::NIL, &reg)
        .unwrap();
    let class = reg.id_of("S").unwrap();
    eng.subscriptions.subscribe_object(Oid(1), id);
    eng.subscriptions.subscribe_class(class, id);
    let fired = eng.on_occurrence(&reg, &occ(&reg, 1, 1)).unwrap();
    assert_eq!(fired.len(), 1, "exactly one delivery despite two routes");
    assert_eq!(eng.rule(id).unwrap().stats.notifications, 1);
}

#[test]
fn capture_lifecycle_commit_keeps_abort_restores() {
    let reg = registry();
    let mut eng = RuleEngine::new();
    // Sequence rule so partial state is visible through `buffered`.
    let expr = EventExpr::primitive(PrimitiveEventSpec::end("S", "m"))
        .then(EventExpr::primitive(PrimitiveEventSpec::end("S", "m")));
    let id = eng
        .add_rule(RuleDef::new("seq", expr, ACTION_NOOP), Oid::NIL, &reg)
        .unwrap();
    eng.subscriptions.subscribe_object(Oid(1), id);

    // Abort path: buffered left restored (to nothing).
    eng.begin_capture();
    eng.on_occurrence(&reg, &occ(&reg, 1, 1)).unwrap();
    assert_eq!(eng.rule(id).unwrap().detector.buffered(), 1);
    eng.abort_capture();
    assert_eq!(eng.rule(id).unwrap().detector.buffered(), 0);

    // Commit path: buffered left survives.
    eng.begin_capture();
    eng.on_occurrence(&reg, &occ(&reg, 2, 1)).unwrap();
    eng.commit_capture();
    assert_eq!(eng.rule(id).unwrap().detector.buffered(), 1);
    // And the detector journal is closed: processing outside a capture
    // window still works.
    let fired = eng.on_occurrence(&reg, &occ(&reg, 3, 1)).unwrap();
    assert_eq!(fired.len(), 1);
}

#[test]
fn discard_pending_clears_both_queues() {
    let reg = registry();
    let mut eng = RuleEngine::new();
    for (name, mode) in [("d", CouplingMode::Deferred), ("x", CouplingMode::Detached)] {
        let id = eng
            .add_rule(
                RuleDef::new(name, leaf(), ACTION_NOOP).coupling(mode),
                Oid::NIL,
                &reg,
            )
            .unwrap();
        eng.subscriptions.subscribe_object(Oid(1), id);
    }
    eng.on_occurrence(&reg, &occ(&reg, 1, 1)).unwrap();
    assert_eq!(eng.pending(), (1, 1));
    eng.discard_pending();
    assert_eq!(eng.pending(), (0, 0));
    assert!(eng.take_deferred().is_empty());
    assert!(eng.take_detached().is_empty());
}

#[test]
fn rule_oid_reverse_lookup() {
    let reg = registry();
    let mut eng = RuleEngine::new();
    let id = eng
        .add_rule(RuleDef::new("r", leaf(), ACTION_NOOP), Oid(42), &reg)
        .unwrap();
    assert_eq!(eng.id_of_oid(Oid(42)), Some(id));
    assert_eq!(eng.id_of_oid(Oid(43)), None);
    eng.remove_rule(id).unwrap();
    assert_eq!(eng.id_of_oid(Oid(42)), None);
}
