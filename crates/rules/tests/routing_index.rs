//! Routing-index correctness under every invalidation source.
//!
//! The engine's `(target, symbol)` dispatch index is rebuilt lazily from
//! version stamps (schema size, subscription generation, engine epoch).
//! These tests drive events, mutate each stamp's source, and assert the
//! delivered notification counts — the observable the index changes —
//! against what per-object fan-out would deliver.

use sentinel_events::PrimitiveOccurrence;
use sentinel_events::{EventExpr, EventModifier, ParamContext, PrimitiveEventSpec};
use sentinel_object::{ClassDecl, ClassRegistry, Oid, Value};
use sentinel_rules::{RuleDef, RuleEngine, ACTION_NOOP};
use std::sync::Arc;

fn registry() -> ClassRegistry {
    let mut reg = ClassRegistry::new();
    reg.define(
        ClassDecl::reactive("Stock")
            .method("SetPrice", &[])
            .method("SetVolume", &[]),
    )
    .unwrap();
    reg
}

fn occ(reg: &ClassRegistry, at: u64, oid: u64, class: &str, method: &str) -> PrimitiveOccurrence {
    let cid = reg.id_of(class).unwrap();
    PrimitiveOccurrence {
        at,
        oid: Oid(oid),
        class: cid,
        owner: cid,
        method: method.into(),
        modifier: EventModifier::End,
        params: Arc::from(vec![Value::Int(at as i64)]),
    }
}

fn watcher(name: &str, class: &str, method: &str) -> RuleDef {
    RuleDef::new(
        name,
        EventExpr::primitive(PrimitiveEventSpec::end(class, method)),
        ACTION_NOOP,
    )
}

/// Routing filters notifications down to the alphabet-matching rules;
/// disabling it reverts to notifying every subscriber of the object.
#[test]
fn routing_enable_disable_changes_fanout() {
    let reg = registry();
    let mut eng = RuleEngine::new();
    let price = eng
        .add_rule(watcher("price", "Stock", "SetPrice"), Oid::NIL, &reg)
        .unwrap();
    let volume = eng
        .add_rule(watcher("volume", "Stock", "SetVolume"), Oid::NIL, &reg)
        .unwrap();
    eng.subscriptions.subscribe_object(Oid(1), price);
    eng.subscriptions.subscribe_object(Oid(1), volume);

    eng.on_occurrence(&reg, &occ(&reg, 1, 1, "Stock", "SetPrice"))
        .unwrap();
    // Routed: only the SetPrice watcher was notified.
    assert_eq!(eng.stats().notifications, 1);
    assert_eq!(eng.rule(price).unwrap().stats.notifications, 1);
    assert_eq!(eng.rule(volume).unwrap().stats.notifications, 0);

    eng.set_routing(false);
    eng.on_occurrence(&reg, &occ(&reg, 2, 1, "Stock", "SetPrice"))
        .unwrap();
    // Full fan-out: both subscribers notified (the volume watcher's
    // detector rejects the occurrence itself).
    assert_eq!(eng.stats().notifications, 3);
    assert_eq!(eng.rule(volume).unwrap().stats.notifications, 1);

    eng.set_routing(true);
    eng.on_occurrence(&reg, &occ(&reg, 3, 1, "Stock", "SetPrice"))
        .unwrap();
    assert_eq!(eng.stats().notifications, 4);
    assert_eq!(eng.rule(volume).unwrap().stats.notifications, 1);
}

/// Removing a rule after the index was built must stop its deliveries;
/// detection results stay identical to the fallback path.
#[test]
fn remove_rule_invalidates_index() {
    let reg = registry();
    let mut eng = RuleEngine::new();
    let a = eng
        .add_rule(watcher("a", "Stock", "SetPrice"), Oid::NIL, &reg)
        .unwrap();
    let b = eng
        .add_rule(watcher("b", "Stock", "SetPrice"), Oid::NIL, &reg)
        .unwrap();
    eng.subscriptions.subscribe_object(Oid(1), a);
    eng.subscriptions.subscribe_object(Oid(1), b);

    let fired = eng
        .on_occurrence(&reg, &occ(&reg, 1, 1, "Stock", "SetPrice"))
        .unwrap();
    assert_eq!(fired.len(), 2);
    assert_eq!(eng.stats().notifications, 2);

    eng.remove_rule(a).unwrap();
    let fired = eng
        .on_occurrence(&reg, &occ(&reg, 2, 1, "Stock", "SetPrice"))
        .unwrap();
    assert_eq!(fired.len(), 1);
    assert_eq!(fired[0].firing.rule, b);
    assert_eq!(eng.stats().notifications, 3);
}

/// Disabled rules drop out of the index; re-enabling re-admits them.
#[test]
fn disable_enable_invalidates_index() {
    let reg = registry();
    let mut eng = RuleEngine::new();
    let r = eng
        .add_rule(watcher("r", "Stock", "SetPrice"), Oid::NIL, &reg)
        .unwrap();
    eng.subscriptions.subscribe_object(Oid(1), r);

    eng.on_occurrence(&reg, &occ(&reg, 1, 1, "Stock", "SetPrice"))
        .unwrap();
    assert_eq!(eng.stats().notifications, 1);

    eng.disable(r).unwrap();
    eng.on_occurrence(&reg, &occ(&reg, 2, 1, "Stock", "SetPrice"))
        .unwrap();
    assert_eq!(eng.stats().notifications, 1, "disabled: not notified");
    assert_eq!(eng.rule(r).unwrap().stats.notifications, 1);

    eng.enable(r).unwrap();
    let fired = eng
        .on_occurrence(&reg, &occ(&reg, 3, 1, "Stock", "SetPrice"))
        .unwrap();
    assert_eq!(fired.len(), 1);
    assert_eq!(eng.stats().notifications, 2);
}

/// Subscribing and unsubscribing after events already flowed (the index
/// is hot) must be reflected on the very next occurrence, including
/// mutations made through the public `subscriptions` field.
#[test]
fn subscribe_unsubscribe_after_events_flowed() {
    let reg = registry();
    let mut eng = RuleEngine::new();
    let r = eng
        .add_rule(watcher("r", "Stock", "SetPrice"), Oid::NIL, &reg)
        .unwrap();
    eng.subscriptions.subscribe_object(Oid(1), r);

    eng.on_occurrence(&reg, &occ(&reg, 1, 1, "Stock", "SetPrice"))
        .unwrap();
    assert_eq!(eng.stats().notifications, 1);

    // A second producer subscribed while the index is hot.
    eng.subscriptions.subscribe_object(Oid(2), r);
    eng.on_occurrence(&reg, &occ(&reg, 2, 2, "Stock", "SetPrice"))
        .unwrap();
    assert_eq!(eng.stats().notifications, 2);

    eng.subscriptions.unsubscribe_object(Oid(1), r);
    eng.on_occurrence(&reg, &occ(&reg, 3, 1, "Stock", "SetPrice"))
        .unwrap();
    assert_eq!(eng.stats().notifications, 2, "unsubscribed: silent");

    // Class subscription added late is honoured too.
    let stock = reg.id_of("Stock").unwrap();
    eng.subscriptions.subscribe_class(stock, r);
    eng.on_occurrence(&reg, &occ(&reg, 4, 7, "Stock", "SetPrice"))
        .unwrap();
    assert_eq!(eng.stats().notifications, 3);
    eng.subscriptions.unsubscribe_class(stock, r);
    eng.on_occurrence(&reg, &occ(&reg, 5, 7, "Stock", "SetPrice"))
        .unwrap();
    assert_eq!(eng.stats().notifications, 3);
}

/// A subclass defined *after* a rule (and its index entry) exists mints
/// fresh symbols for inherited methods; an instance of that subclass
/// raising the parent-spec method must still reach the rule.
#[test]
fn subclass_instance_raises_parent_spec_method() {
    let mut reg = registry();
    let mut eng = RuleEngine::new();
    let r = eng
        .add_rule(watcher("r", "Stock", "SetPrice"), Oid::NIL, &reg)
        .unwrap();
    let stock = reg.id_of("Stock").unwrap();
    eng.subscriptions.subscribe_class(stock, r);

    // Build the index against the current schema.
    eng.on_occurrence(&reg, &occ(&reg, 1, 1, "Stock", "SetPrice"))
        .unwrap();
    assert_eq!(eng.stats().notifications, 1);

    // New subclass: SetPrice on a TechStock is a *different* symbol.
    reg.define(ClassDecl::reactive("TechStock").parent("Stock"))
        .unwrap();
    let fired = eng
        .on_occurrence(&reg, &occ(&reg, 2, 9, "TechStock", "SetPrice"))
        .unwrap();
    assert_eq!(fired.len(), 1, "subclass event reaches the parent rule");
    assert_eq!(eng.stats().notifications, 2);

    // And the sibling method still routes away from the rule.
    eng.on_occurrence(&reg, &occ(&reg, 3, 9, "TechStock", "SetVolume"))
        .unwrap();
    assert_eq!(eng.stats().notifications, 2);
}

/// Expressions containing `Plus` have an unbounded alphabet (any
/// subsequent occurrence can signal the deadline), so such rules must
/// hear *every* event of their subscribed producers even under routing.
#[test]
fn plus_rules_are_routed_broadly() {
    let reg = registry();
    let mut eng = RuleEngine::new();
    let plus = EventExpr::primitive(PrimitiveEventSpec::end("Stock", "SetPrice")).plus(5);
    let r = eng
        .add_rule(
            RuleDef::new("deadline", plus, ACTION_NOOP).context(ParamContext::Chronicle),
            Oid::NIL,
            &reg,
        )
        .unwrap();
    eng.subscriptions.subscribe_object(Oid(1), r);

    // The anchor event, then an unrelated method past the deadline: the
    // rule must be notified of both for the deadline to be detected.
    eng.on_occurrence(&reg, &occ(&reg, 1, 1, "Stock", "SetPrice"))
        .unwrap();
    let fired = eng
        .on_occurrence(&reg, &occ(&reg, 10, 1, "Stock", "SetVolume"))
        .unwrap();
    assert_eq!(eng.stats().notifications, 2, "broad rule hears everything");
    assert_eq!(fired.len(), 1, "deadline detected via unrelated event");
}

/// Occurrences whose method is outside the declared schema carry no
/// symbol and fall back to full fan-out plus string matching.
#[test]
fn symbol_less_occurrences_fall_back() {
    let reg = registry();
    let mut eng = RuleEngine::new();
    let r = eng
        .add_rule(watcher("r", "Stock", "SetPrice"), Oid::NIL, &reg)
        .unwrap();
    eng.subscriptions.subscribe_object(Oid(1), r);
    // "Audit" is not in Stock's declared interface: no symbol, so the
    // engine falls back to notifying every subscriber.
    eng.on_occurrence(&reg, &occ(&reg, 1, 1, "Stock", "Audit"))
        .unwrap();
    assert_eq!(eng.stats().notifications, 1);
    assert_eq!(eng.rule(r).unwrap().stats.triggered, 0);
}
