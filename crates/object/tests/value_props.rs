//! Property tests for the value universe.

use proptest::prelude::*;
use sentinel_object::{Oid, TypeTag, Value};
use std::cmp::Ordering;

fn arb_scalar() -> impl Strategy<Value = Value> {
    prop_oneof![
        Just(Value::Null),
        any::<bool>().prop_map(Value::Bool),
        any::<i64>().prop_map(Value::Int),
        // Finite floats only: NaN is deliberately incomparable and
        // tested separately.
        (-1e12f64..1e12).prop_map(Value::Float),
        "[a-z]{0,12}".prop_map(Value::Str),
        (0u64..1000).prop_map(|n| Value::Oid(Oid(n))),
    ]
}

proptest! {
    /// `compare` is antisymmetric: swapping operands reverses the order.
    #[test]
    fn compare_is_antisymmetric(a in arb_scalar(), b in arb_scalar()) {
        let ab = a.compare(&b);
        let ba = b.compare(&a);
        match (ab, ba) {
            (Some(x), Some(y)) => prop_assert_eq!(x, y.reverse()),
            (None, None) => {}
            other => prop_assert!(false, "asymmetric comparability: {:?}", other),
        }
    }

    /// `compare` against self is Equal for every comparable value.
    #[test]
    fn compare_is_reflexive(a in arb_scalar()) {
        if let Some(ord) = a.compare(&a) {
            prop_assert_eq!(ord, Ordering::Equal);
        }
    }

    /// Int/Float cross-comparison agrees with pure float comparison.
    #[test]
    fn numeric_widening_is_consistent(i in -1_000_000i64..1_000_000, f in -1e6f64..1e6) {
        let a = Value::Int(i);
        let b = Value::Float(f);
        prop_assert_eq!(a.compare(&b), (i as f64).partial_cmp(&f));
    }

    /// Every default value conforms to its tag, and conformance is
    /// stable under the widening rule.
    #[test]
    fn defaults_conform(v in arb_scalar()) {
        for tag in [
            TypeTag::Any, TypeTag::Bool, TypeTag::Int, TypeTag::Float,
            TypeTag::Str, TypeTag::Oid, TypeTag::List, TypeTag::Map,
        ] {
            prop_assert!(Value::default_for(tag).conforms_to(tag));
        }
        // Any accepts everything.
        prop_assert!(v.conforms_to(TypeTag::Any));
        // A value always conforms to its own tag.
        prop_assert!(v.conforms_to(v.type_tag()));
    }

    /// Extraction agrees with conformance for the scalar accessors
    /// (modulo widening: as_float also accepts ints).
    #[test]
    fn extraction_matches_tag(v in arb_scalar()) {
        prop_assert_eq!(v.as_int().is_ok(), v.type_tag() == TypeTag::Int);
        prop_assert_eq!(
            v.as_float().is_ok(),
            matches!(v.type_tag(), TypeTag::Float | TypeTag::Int)
        );
        prop_assert_eq!(v.as_bool().is_ok(), v.type_tag() == TypeTag::Bool);
        prop_assert_eq!(v.as_str().is_ok(), v.type_tag() == TypeTag::Str);
        prop_assert_eq!(v.as_oid().is_ok(), v.type_tag() == TypeTag::Oid);
    }

    /// Serde round-trips every scalar exactly.
    #[test]
    fn serde_round_trip(v in arb_scalar()) {
        let s = serde_json::to_string(&v).unwrap();
        let back: Value = serde_json::from_str(&s).unwrap();
        prop_assert_eq!(back, v);
    }
}

#[test]
fn nan_is_incomparable_even_to_itself() {
    let nan = Value::Float(f64::NAN);
    assert_eq!(nan.compare(&nan), None);
    assert_eq!(nan.compare(&Value::Float(0.0)), None);
    assert_eq!(Value::Int(0).compare(&nan), None);
}
