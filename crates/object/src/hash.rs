//! A fast, non-cryptographic hasher for the object layer's hot maps.
//!
//! The steady-state write path pays two map lookups per attribute
//! write: oid → object state in the store shard, and attribute name →
//! slot index in the class layout. With std's default SipHash those
//! two hashes are a measurable slice of the ~100ns write budget; this
//! multiplicative hasher (the `rotate ^ word * constant` scheme known
//! from rustc's FxHash) costs a couple of cycles per word instead.
//!
//! Not DoS-resistant — fine here: keys are internally allocated oids
//! and schema-declared attribute names, never attacker-controlled.

use std::collections::{HashMap, HashSet};
use std::hash::{BuildHasherDefault, Hasher};

const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

/// Multiplicative word-at-a-time hasher (FxHash scheme).
#[derive(Default)]
pub struct FastHasher {
    hash: u64,
}

impl FastHasher {
    #[inline]
    fn add(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(5) ^ word).wrapping_mul(SEED);
    }
}

impl Hasher for FastHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(8);
        for c in &mut chunks {
            self.add(u64::from_le_bytes(c.try_into().unwrap()));
        }
        let rest = chunks.remainder();
        if !rest.is_empty() {
            let mut tail = [0u8; 8];
            tail[..rest.len()].copy_from_slice(rest);
            // Fold the length in so "a" and "a\0" keyed prefixes differ.
            self.add(u64::from_le_bytes(tail) ^ (rest.len() as u64));
        }
    }

    #[inline]
    fn write_u8(&mut self, n: u8) {
        self.add(n as u64);
    }

    #[inline]
    fn write_u32(&mut self, n: u32) {
        self.add(n as u64);
    }

    #[inline]
    fn write_u64(&mut self, n: u64) {
        self.add(n);
    }

    #[inline]
    fn write_usize(&mut self, n: usize) {
        self.add(n as u64);
    }
}

/// `HashMap` keyed by the fast hasher.
pub type FastMap<K, V> = HashMap<K, V, BuildHasherDefault<FastHasher>>;

/// `HashSet` keyed by the fast hasher.
pub type FastSet<T> = HashSet<T, BuildHasherDefault<FastHasher>>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn distinct_keys_hash_distinctly() {
        let mut m: FastMap<String, i32> = FastMap::default();
        for (i, k) in ["v", "w", "balance", "owner", ""].iter().enumerate() {
            m.insert(k.to_string(), i as i32);
        }
        assert_eq!(m.len(), 5);
        assert_eq!(m.get("balance"), Some(&2));
        assert_eq!(m.get("missing"), None);
    }

    #[test]
    fn oid_like_keys_spread() {
        let mut s: FastSet<u64> = FastSet::default();
        for i in 0..10_000u64 {
            s.insert(i);
        }
        assert_eq!(s.len(), 10_000);
    }

    #[test]
    fn prefix_padding_is_not_a_collision() {
        fn h(bytes: &[u8]) -> u64 {
            let mut hasher = FastHasher::default();
            hasher.write(bytes);
            hasher.finish()
        }
        assert_ne!(h(b"a"), h(b"a\0"));
        assert_ne!(h(b"abcdefgh"), h(b"abcdefgh\0"));
    }
}
