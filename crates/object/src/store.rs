//! The in-memory object store.
//!
//! Holds every live instance, keyed by [`Oid`], and maintains a per-class
//! *extent* index so class-level rules can be applied to "all instances of
//! a class" without scanning the whole store (paper §4.7).

use crate::error::{ObjectError, Result};
use crate::object::ObjectState;
use crate::oid::{Oid, OidGenerator};
use crate::schema::{ClassId, ClassRegistry};
use crate::value::Value;
use std::collections::{HashMap, HashSet};

/// In-memory instance storage with per-class extents.
#[derive(Debug, Default)]
pub struct ObjectStore {
    objects: HashMap<Oid, ObjectState>,
    extents: HashMap<ClassId, HashSet<Oid>>,
    oidgen: OidGenerator,
}

impl ObjectStore {
    /// An empty store.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of live objects.
    pub fn len(&self) -> usize {
        self.objects.len()
    }

    /// True when the store holds no objects.
    pub fn is_empty(&self) -> bool {
        self.objects.is_empty()
    }

    /// Allocate a fresh oid without creating an object (the database
    /// facade uses this to assign oids to rule/event objects).
    pub fn allocate_oid(&self) -> Oid {
        self.oidgen.allocate()
    }

    /// Create a new instance of `class` with default slot values.
    pub fn create(&mut self, registry: &ClassRegistry, class: ClassId) -> Oid {
        let oid = self.oidgen.allocate();
        let state = ObjectState::new(registry.get(class));
        self.insert_raw(oid, state);
        oid
    }

    /// Insert a pre-built state under a pre-assigned oid (recovery path).
    /// Advances the oid generator past `oid`.
    pub fn insert_raw(&mut self, oid: Oid, state: ObjectState) {
        self.oidgen.bump_past(oid);
        self.extents.entry(state.class).or_default().insert(oid);
        self.objects.insert(oid, state);
    }

    /// Remove an object, returning its final state (used for undo).
    pub fn delete(&mut self, oid: Oid) -> Result<ObjectState> {
        let state = self
            .objects
            .remove(&oid)
            .ok_or(ObjectError::NoSuchObject(oid))?;
        if let Some(ext) = self.extents.get_mut(&state.class) {
            ext.remove(&oid);
        }
        Ok(state)
    }

    /// Does the object exist?
    pub fn exists(&self, oid: Oid) -> bool {
        self.objects.contains_key(&oid)
    }

    /// The class of an object.
    pub fn class_of(&self, oid: Oid) -> Result<ClassId> {
        Ok(self.state(oid)?.class)
    }

    /// Borrow an object's state.
    pub fn state(&self, oid: Oid) -> Result<&ObjectState> {
        self.objects.get(&oid).ok_or(ObjectError::NoSuchObject(oid))
    }

    /// Mutably borrow an object's state.
    pub fn state_mut(&mut self, oid: Oid) -> Result<&mut ObjectState> {
        self.objects
            .get_mut(&oid)
            .ok_or(ObjectError::NoSuchObject(oid))
    }

    /// Read `attr` of `oid`.
    pub fn get_attr(&self, registry: &ClassRegistry, oid: Oid, attr: &str) -> Result<Value> {
        let st = self.state(oid)?;
        Ok(st.get(registry.get(st.class), attr)?.clone())
    }

    /// Write `attr` of `oid`, returning the previous value.
    pub fn set_attr(
        &mut self,
        registry: &ClassRegistry,
        oid: Oid,
        attr: &str,
        value: Value,
    ) -> Result<Value> {
        let st = self
            .objects
            .get_mut(&oid)
            .ok_or(ObjectError::NoSuchObject(oid))?;
        st.set(registry.get(st.class), attr, value)
    }

    /// Oids of the *direct* extent of `class` (instances whose class is
    /// exactly `class`).
    pub fn direct_extent(&self, class: ClassId) -> impl Iterator<Item = Oid> + '_ {
        self.extents.get(&class).into_iter().flatten().copied()
    }

    /// Oids of all instances of `class`, including instances of
    /// subclasses (the paper's class-level rules apply to these).
    pub fn extent<'a>(
        &'a self,
        registry: &'a ClassRegistry,
        class: ClassId,
    ) -> impl Iterator<Item = Oid> + 'a {
        registry
            .iter()
            .filter(move |c| registry.is_subclass(c.id, class))
            .flat_map(move |c| self.direct_extent(c.id))
    }

    /// Iterate over every (oid, state) pair — snapshot/persistence path.
    pub fn iter(&self) -> impl Iterator<Item = (Oid, &ObjectState)> {
        self.objects.iter().map(|(&o, s)| (o, s))
    }

    /// Replace an object's entire state (undo path). The class of the
    /// replacement must match the stored class.
    pub fn restore_state(&mut self, oid: Oid, state: ObjectState) {
        self.extents.entry(state.class).or_default().insert(oid);
        self.objects.insert(oid, state);
    }

    /// Drop everything (recovery reload path).
    pub fn clear(&mut self) {
        self.objects.clear();
        self.extents.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::{ClassDecl, ClassRegistry};
    use crate::value::TypeTag;

    fn setup() -> (ClassRegistry, ObjectStore, ClassId, ClassId) {
        let mut reg = ClassRegistry::new();
        let emp = reg
            .define(ClassDecl::new("Employee").attr("salary", TypeTag::Float))
            .unwrap();
        let mgr = reg
            .define(ClassDecl::new("Manager").parent("Employee"))
            .unwrap();
        (reg, ObjectStore::new(), emp, mgr)
    }

    #[test]
    fn create_read_write_delete() {
        let (reg, mut store, emp, _) = setup();
        let fred = store.create(&reg, emp);
        assert!(store.exists(fred));
        assert_eq!(
            store.get_attr(&reg, fred, "salary").unwrap(),
            Value::Float(0.0)
        );
        let old = store
            .set_attr(&reg, fred, "salary", Value::Float(100.0))
            .unwrap();
        assert_eq!(old, Value::Float(0.0));
        assert_eq!(
            store.get_attr(&reg, fred, "salary").unwrap(),
            Value::Float(100.0)
        );
        store.delete(fred).unwrap();
        assert!(!store.exists(fred));
        assert!(matches!(
            store.get_attr(&reg, fred, "salary"),
            Err(ObjectError::NoSuchObject(_))
        ));
    }

    #[test]
    fn extent_includes_subclasses() {
        let (reg, mut store, emp, mgr) = setup();
        let fred = store.create(&reg, emp);
        let mike = store.create(&reg, mgr);
        let emps: HashSet<Oid> = store.extent(&reg, emp).collect();
        assert_eq!(emps, HashSet::from([fred, mike]));
        let mgrs: HashSet<Oid> = store.extent(&reg, mgr).collect();
        assert_eq!(mgrs, HashSet::from([mike]));
        let direct: HashSet<Oid> = store.direct_extent(emp).collect();
        assert_eq!(direct, HashSet::from([fred]));
    }

    #[test]
    fn restore_state_round_trip() {
        let (reg, mut store, emp, _) = setup();
        let fred = store.create(&reg, emp);
        let before = store.state(fred).unwrap().clone();
        store
            .set_attr(&reg, fred, "salary", Value::Float(5.0))
            .unwrap();
        store.restore_state(fred, before.clone());
        assert_eq!(store.state(fred).unwrap(), &before);
    }

    #[test]
    fn insert_raw_bumps_oid_generator() {
        let (reg, mut store, emp, _) = setup();
        let st = ObjectState::new(reg.get(emp));
        store.insert_raw(Oid(50), st);
        let next = store.create(&reg, emp);
        assert!(next > Oid(50));
    }
}
