//! The in-memory object store — sharded for concurrent readers.
//!
//! Holds every live instance, keyed by [`Oid`], and maintains a per-class
//! *extent* index so class-level rules can be applied to "all instances of
//! a class" without scanning the whole store (paper §4.7).
//!
//! Concurrency model: the store is split into a power-of-two number of
//! **shards**, each guarding its objects and extent slices with one
//! reader/writer lock. All operations take `&self`; the store is shared
//! between the database's serialized write core and any number of
//! concurrent reader sessions via `Arc`. Readers of different objects
//! (and readers of the same object) proceed in parallel; a writer
//! serializes only against the one shard it touches. Every lock
//! acquisition is counted per shard in a
//! [`ShardCounters`](sentinel_telemetry::ShardCounters) so load skew is
//! observable in the metrics export.
//!
//! Isolation note: a single read (`get_attr`, `state_cloned`) is always
//! internally consistent — it happens entirely under the shard's read
//! lock — but readers that do not hold the database's write core can
//! observe the intermediate states of an in-flight transaction
//! (read-uncommitted). DESIGN.md §11 records the trade-off.

use crate::error::{ObjectError, Result};
use crate::hash::{FastMap, FastSet};
use crate::object::ObjectState;
use crate::oid::{Oid, OidGenerator};
use crate::schema::{ClassId, ClassRegistry};
use crate::value::Value;
use parking_lot::RwLock;
use sentinel_telemetry::{ShardCounters, ShardLoad};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

/// Default shard count: enough to keep four to eight reader threads off
/// each other's locks without bloating a small store.
pub const DEFAULT_SHARDS: usize = 16;

/// One shard's object map and extent slice.
#[derive(Debug, Default)]
struct Shard {
    objects: FastMap<Oid, ObjectState>,
    extents: FastMap<ClassId, FastSet<Oid>>,
}

/// In-memory instance storage with per-class extents, sharded by oid.
#[derive(Debug)]
pub struct ObjectStore {
    shards: Box<[RwLock<Shard>]>,
    mask: u64,
    oidgen: OidGenerator,
    len: AtomicUsize,
    counters: Arc<ShardCounters>,
}

impl Default for ObjectStore {
    fn default() -> Self {
        Self::with_shards(DEFAULT_SHARDS)
    }
}

impl ObjectStore {
    /// An empty store with the default shard count.
    pub fn new() -> Self {
        Self::default()
    }

    /// An empty store with `shards` shards (rounded up to a power of
    /// two, minimum 1).
    pub fn with_shards(shards: usize) -> Self {
        let n = shards.max(1).next_power_of_two();
        ObjectStore {
            shards: (0..n).map(|_| RwLock::new(Shard::default())).collect(),
            mask: (n - 1) as u64,
            oidgen: OidGenerator::new(),
            len: AtomicUsize::new(0),
            counters: Arc::new(ShardCounters::new(n)),
        }
    }

    /// Number of shards.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// Which shard holds `oid`.
    #[inline]
    fn shard_of(&self, oid: Oid) -> usize {
        (oid.0 & self.mask) as usize
    }

    #[inline]
    fn read(&self, idx: usize) -> parking_lot::RwLockReadGuard<'_, Shard> {
        self.counters.record_read(idx);
        self.shards[idx].read()
    }

    #[inline]
    fn write(&self, idx: usize) -> parking_lot::RwLockWriteGuard<'_, Shard> {
        self.counters.record_write(idx);
        self.shards[idx].write()
    }

    /// Per-shard lock-acquisition counters (shared handle).
    pub fn shard_counters(&self) -> Arc<ShardCounters> {
        Arc::clone(&self.counters)
    }

    /// Snapshot of the per-shard load counters.
    pub fn shard_loads(&self) -> Vec<ShardLoad> {
        self.counters.snapshot()
    }

    /// Number of live objects.
    pub fn len(&self) -> usize {
        self.len.load(Ordering::Relaxed)
    }

    /// True when the store holds no objects.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Allocate a fresh oid without creating an object (the database
    /// facade uses this to assign oids to rule/event objects).
    pub fn allocate_oid(&self) -> Oid {
        self.oidgen.allocate()
    }

    /// Create a new instance of `class` with default slot values.
    pub fn create(&self, registry: &ClassRegistry, class: ClassId) -> Oid {
        let oid = self.oidgen.allocate();
        let state = ObjectState::new(registry.get(class));
        self.insert_raw(oid, state);
        oid
    }

    /// Insert a pre-built state under a pre-assigned oid (recovery path).
    /// Advances the oid generator past `oid`.
    pub fn insert_raw(&self, oid: Oid, state: ObjectState) {
        self.oidgen.bump_past(oid);
        let mut shard = self.write(self.shard_of(oid));
        shard.extents.entry(state.class).or_default().insert(oid);
        if shard.objects.insert(oid, state).is_none() {
            self.len.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Remove an object, returning its final state (used for undo).
    pub fn delete(&self, oid: Oid) -> Result<ObjectState> {
        let mut shard = self.write(self.shard_of(oid));
        let state = shard
            .objects
            .remove(&oid)
            .ok_or(ObjectError::NoSuchObject(oid))?;
        if let Some(ext) = shard.extents.get_mut(&state.class) {
            ext.remove(&oid);
        }
        self.len.fetch_sub(1, Ordering::Relaxed);
        Ok(state)
    }

    /// Does the object exist?
    pub fn exists(&self, oid: Oid) -> bool {
        self.read(self.shard_of(oid)).objects.contains_key(&oid)
    }

    /// The class of an object.
    pub fn class_of(&self, oid: Oid) -> Result<ClassId> {
        self.with_state(oid, |st| st.class)
    }

    /// Clone an object's full state.
    pub fn state_cloned(&self, oid: Oid) -> Result<ObjectState> {
        self.with_state(oid, Clone::clone)
    }

    /// Run `f` over an object's state under the shard read lock.
    pub fn with_state<R>(&self, oid: Oid, f: impl FnOnce(&ObjectState) -> R) -> Result<R> {
        let shard = self.read(self.shard_of(oid));
        shard
            .objects
            .get(&oid)
            .map(f)
            .ok_or(ObjectError::NoSuchObject(oid))
    }

    /// Run `f` over an object's state under the shard **write** lock
    /// (transaction-undo path: slot restores bypass schema checks).
    pub fn with_state_mut<R>(&self, oid: Oid, f: impl FnOnce(&mut ObjectState) -> R) -> Result<R> {
        let mut shard = self.write(self.shard_of(oid));
        shard
            .objects
            .get_mut(&oid)
            .map(f)
            .ok_or(ObjectError::NoSuchObject(oid))
    }

    /// Read `attr` of `oid`.
    pub fn get_attr(&self, registry: &ClassRegistry, oid: Oid, attr: &str) -> Result<Value> {
        let shard = self.read(self.shard_of(oid));
        let st = shard
            .objects
            .get(&oid)
            .ok_or(ObjectError::NoSuchObject(oid))?;
        Ok(st.get(registry.get(st.class), attr)?.clone())
    }

    /// Write `attr` of `oid`, returning the previous value.
    pub fn set_attr(
        &self,
        registry: &ClassRegistry,
        oid: Oid,
        attr: &str,
        value: Value,
    ) -> Result<Value> {
        let mut shard = self.write(self.shard_of(oid));
        let st = shard
            .objects
            .get_mut(&oid)
            .ok_or(ObjectError::NoSuchObject(oid))?;
        st.set(registry.get(st.class), attr, value)
    }

    /// Write `attr` of `oid`, resolving the attribute to its slot index
    /// under the **same** shard write lock as the write itself. Returns
    /// `(class, slot, previous value)` so the caller can key undo, WAL,
    /// and effect records by slot without a second lock acquisition or
    /// any string clone. This is the hot write path: with a scalar
    /// `value` it performs zero heap allocations.
    pub fn set_attr_resolved(
        &self,
        registry: &ClassRegistry,
        oid: Oid,
        attr: &str,
        value: Value,
    ) -> Result<(ClassId, usize, Value)> {
        let mut shard = self.write(self.shard_of(oid));
        let st = shard
            .objects
            .get_mut(&oid)
            .ok_or(ObjectError::NoSuchObject(oid))?;
        let class = st.class;
        let def = registry.get(class);
        let slot = def
            .slot_of(attr)
            .ok_or_else(|| ObjectError::UnknownAttribute {
                class: def.name.clone(),
                attribute: attr.to_string(),
            })?;
        let old = st.set_slot(def, slot, value)?;
        Ok((class, slot, old))
    }

    /// Write slot `slot` of `oid` directly (recovery replay and the
    /// scheduler's slot-keyed undo), enforcing the declared slot type.
    /// Returns `(class, previous value)`.
    pub fn set_slot(
        &self,
        registry: &ClassRegistry,
        oid: Oid,
        slot: usize,
        value: Value,
    ) -> Result<(ClassId, Value)> {
        let mut shard = self.write(self.shard_of(oid));
        let st = shard
            .objects
            .get_mut(&oid)
            .ok_or(ObjectError::NoSuchObject(oid))?;
        let class = st.class;
        let old = st.set_slot(registry.get(class), slot, value)?;
        Ok((class, old))
    }

    /// Oids of the *direct* extent of `class` (instances whose class is
    /// exactly `class`).
    pub fn direct_extent(&self, class: ClassId) -> Vec<Oid> {
        let mut out = Vec::new();
        for idx in 0..self.shards.len() {
            let shard = self.read(idx);
            if let Some(ext) = shard.extents.get(&class) {
                out.extend(ext.iter().copied());
            }
        }
        out
    }

    /// Oids of all instances of `class`, including instances of
    /// subclasses (the paper's class-level rules apply to these).
    pub fn extent(&self, registry: &ClassRegistry, class: ClassId) -> Vec<Oid> {
        let subclasses: Vec<ClassId> = registry
            .iter()
            .filter(|c| registry.is_subclass(c.id, class))
            .map(|c| c.id)
            .collect();
        let mut out = Vec::new();
        for idx in 0..self.shards.len() {
            let shard = self.read(idx);
            for cid in &subclasses {
                if let Some(ext) = shard.extents.get(cid) {
                    out.extend(ext.iter().copied());
                }
            }
        }
        out
    }

    /// Visit every (oid, state) pair — snapshot/persistence path. Shards
    /// are visited one at a time; the callback must not re-enter the
    /// store (the shard lock is held across the call).
    pub fn for_each(&self, mut f: impl FnMut(Oid, &ObjectState)) {
        for idx in 0..self.shards.len() {
            let shard = self.read(idx);
            for (&oid, st) in shard.objects.iter() {
                f(oid, st);
            }
        }
    }

    /// Replace an object's entire state (undo path). The class of the
    /// replacement must match the stored class.
    pub fn restore_state(&self, oid: Oid, state: ObjectState) {
        let mut shard = self.write(self.shard_of(oid));
        shard.extents.entry(state.class).or_default().insert(oid);
        if shard.objects.insert(oid, state).is_none() {
            self.len.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Drop everything (recovery reload path).
    pub fn clear(&self) {
        for idx in 0..self.shards.len() {
            let mut shard = self.write(idx);
            shard.objects.clear();
            shard.extents.clear();
        }
        self.len.store(0, Ordering::Relaxed);
    }
}

// Shared across the Sentinel handle, reader sessions, and the detached
// executor; the compiler verifies the shard locks make that sound.
const _: () = {
    const fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<ObjectStore>()
};

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::{ClassDecl, ClassRegistry};
    use crate::value::TypeTag;
    use std::collections::HashSet;

    fn setup() -> (ClassRegistry, ObjectStore, ClassId, ClassId) {
        let mut reg = ClassRegistry::new();
        let emp = reg
            .define(ClassDecl::new("Employee").attr("salary", TypeTag::Float))
            .unwrap();
        let mgr = reg
            .define(ClassDecl::new("Manager").parent("Employee"))
            .unwrap();
        (reg, ObjectStore::new(), emp, mgr)
    }

    #[test]
    fn create_read_write_delete() {
        let (reg, store, emp, _) = setup();
        let fred = store.create(&reg, emp);
        assert!(store.exists(fred));
        assert_eq!(
            store.get_attr(&reg, fred, "salary").unwrap(),
            Value::Float(0.0)
        );
        let old = store
            .set_attr(&reg, fred, "salary", Value::Float(100.0))
            .unwrap();
        assert_eq!(old, Value::Float(0.0));
        assert_eq!(
            store.get_attr(&reg, fred, "salary").unwrap(),
            Value::Float(100.0)
        );
        store.delete(fred).unwrap();
        assert!(!store.exists(fred));
        assert!(matches!(
            store.get_attr(&reg, fred, "salary"),
            Err(ObjectError::NoSuchObject(_))
        ));
    }

    #[test]
    fn extent_includes_subclasses() {
        let (reg, store, emp, mgr) = setup();
        let fred = store.create(&reg, emp);
        let mike = store.create(&reg, mgr);
        let emps: HashSet<Oid> = store.extent(&reg, emp).into_iter().collect();
        assert_eq!(emps, HashSet::from([fred, mike]));
        let mgrs: HashSet<Oid> = store.extent(&reg, mgr).into_iter().collect();
        assert_eq!(mgrs, HashSet::from([mike]));
        let direct: HashSet<Oid> = store.direct_extent(emp).into_iter().collect();
        assert_eq!(direct, HashSet::from([fred]));
    }

    #[test]
    fn restore_state_round_trip() {
        let (reg, store, emp, _) = setup();
        let fred = store.create(&reg, emp);
        let before = store.state_cloned(fred).unwrap();
        store
            .set_attr(&reg, fred, "salary", Value::Float(5.0))
            .unwrap();
        store.restore_state(fred, before.clone());
        assert_eq!(store.state_cloned(fred).unwrap(), before);
    }

    #[test]
    fn insert_raw_bumps_oid_generator() {
        let (reg, store, emp, _) = setup();
        let st = ObjectState::new(reg.get(emp));
        store.insert_raw(Oid(50), st);
        let next = store.create(&reg, emp);
        assert!(next > Oid(50));
    }

    #[test]
    fn len_tracks_inserts_restores_and_deletes() {
        let (reg, store, emp, _) = setup();
        assert!(store.is_empty());
        let a = store.create(&reg, emp);
        let b = store.create(&reg, emp);
        assert_eq!(store.len(), 2);
        let st = store.delete(a).unwrap();
        assert_eq!(store.len(), 1);
        store.restore_state(a, st.clone());
        assert_eq!(store.len(), 2);
        // Restoring over an existing object must not double-count.
        store.restore_state(a, st);
        assert_eq!(store.len(), 2);
        store.clear();
        assert!(store.is_empty());
        assert!(!store.exists(b));
    }

    #[test]
    fn shard_count_rounds_to_power_of_two() {
        assert_eq!(ObjectStore::with_shards(0).shard_count(), 1);
        assert_eq!(ObjectStore::with_shards(3).shard_count(), 4);
        assert_eq!(ObjectStore::with_shards(16).shard_count(), 16);
    }

    #[test]
    fn shard_counters_observe_traffic() {
        let (reg, store, emp, _) = setup();
        let a = store.create(&reg, emp);
        store.get_attr(&reg, a, "salary").unwrap();
        let (reads, writes) = store.shard_counters().totals();
        assert!(writes >= 1, "create takes a write lock");
        assert!(reads >= 1, "get_attr takes a read lock");
        assert_eq!(store.shard_loads().len(), store.shard_count());
    }

    #[test]
    fn concurrent_readers_and_one_writer() {
        let (reg, store, emp, _) = setup();
        let reg = std::sync::Arc::new(reg);
        let store = std::sync::Arc::new(store);
        let oids: Vec<Oid> = (0..64).map(|_| store.create(&reg, emp)).collect();
        let mut handles = Vec::new();
        for _ in 0..4 {
            let (store, reg, oids) = (store.clone(), reg.clone(), oids.clone());
            handles.push(std::thread::spawn(move || {
                for _ in 0..200 {
                    for &o in &oids {
                        let v = store.get_attr(&reg, o, "salary").unwrap();
                        assert!(matches!(v, Value::Float(_)));
                    }
                }
            }));
        }
        {
            let (store, reg, oids) = (store.clone(), reg.clone(), oids.clone());
            handles.push(std::thread::spawn(move || {
                for i in 0..200 {
                    for &o in &oids {
                        store
                            .set_attr(&reg, o, "salary", Value::Float(i as f64))
                            .unwrap();
                    }
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(store.len(), 64);
    }
}
