//! Native method implementations — the PMF analog.
//!
//! The schema declares method *signatures*; this table holds their
//! *bodies* as registered closures keyed by `(defining class, method
//! name)`. Dispatch resolves the receiver's dynamic class through the C3
//! linearization (in [`ClassRegistry::resolve_method`]) to find the
//! defining class, then looks the body up here.
//!
//! Bodies receive the [`World`] capability, the receiver oid, and the
//! actual arguments — mirroring the implicit `this` plus parameter list of
//! the paper's C++ member functions.

use crate::error::{ObjectError, Result};
use crate::schema::{ClassId, ClassRegistry, MethodDef};
use crate::value::Value;
use crate::world::World;
use crate::Oid;
use std::collections::HashMap;
use std::sync::Arc;

/// A native method body.
pub type NativeFn = Arc<dyn Fn(&mut dyn World, Oid, &[Value]) -> Result<Value> + Send + Sync>;

/// Registry of method bodies, keyed by defining class and method name.
#[derive(Default, Clone)]
pub struct MethodTable {
    impls: HashMap<(ClassId, String), NativeFn>,
}

impl std::fmt::Debug for MethodTable {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("MethodTable")
            .field("implementations", &self.impls.len())
            .finish()
    }
}

impl MethodTable {
    /// An empty table.
    pub fn new() -> Self {
        Self::default()
    }

    /// Register the body for `class::method`. Overwrites any previous
    /// body (tests use this to stub behaviours).
    pub fn register<F>(&mut self, class: ClassId, method: impl Into<String>, body: F)
    where
        F: Fn(&mut dyn World, Oid, &[Value]) -> Result<Value> + Send + Sync + 'static,
    {
        self.impls.insert((class, method.into()), Arc::new(body));
    }

    /// Register a trivial setter body: `method(x)` stores `x` into `attr`.
    /// Covers the paper's ubiquitous `Set-Salary` / `SetPrice` pattern.
    pub fn register_setter(&mut self, class: ClassId, method: impl Into<String>, attr: &str) {
        let attr = attr.to_string();
        self.register(class, method, move |w, this, args| {
            let v = args
                .first()
                .cloned()
                .ok_or_else(|| ObjectError::App("setter expects one argument".into()))?;
            w.set_attr(this, &attr, v)?;
            Ok(Value::Null)
        });
    }

    /// Register a trivial getter body: `method()` returns `attr`.
    pub fn register_getter(&mut self, class: ClassId, method: impl Into<String>, attr: &str) {
        let attr = attr.to_string();
        self.register(class, method, move |w, this, _args| w.get_attr(this, &attr));
    }

    /// Look up the body for an already-resolved `(owner, method)` pair.
    pub fn body(&self, owner: ClassId, method: &str) -> Option<&NativeFn> {
        self.impls.get(&(owner, method.to_string()))
    }

    /// Resolve a message against the schema and fetch the body, checking
    /// arity. Returns the defining class, the method definition, and the
    /// body. This is the common half of every engine's dispatch path.
    pub fn resolve<'r>(
        &self,
        registry: &'r ClassRegistry,
        class: ClassId,
        method: &str,
        args: &[Value],
    ) -> Result<(ClassId, &'r MethodDef, NativeFn)> {
        let (owner, def) = registry.resolve_method(class, method)?;
        if def.params.len() != args.len() {
            return Err(ObjectError::ArityMismatch {
                method: method.to_string(),
                expected: def.params.len(),
                found: args.len(),
            });
        }
        for (p, a) in def.params.iter().zip(args) {
            if !a.conforms_to(p.ty) {
                return Err(ObjectError::TypeMismatch {
                    expected: p.ty,
                    found: a.type_tag(),
                });
            }
        }
        let body = self
            .impls
            .get(&(owner, method.to_string()))
            .cloned()
            .ok_or_else(|| ObjectError::MissingImplementation {
                class: registry.get(owner).name.clone(),
                method: method.to_string(),
            })?;
        Ok((owner, def, body))
    }

    /// Number of registered bodies.
    pub fn len(&self) -> usize {
        self.impls.len()
    }

    /// True when no bodies are registered.
    pub fn is_empty(&self) -> bool {
        self.impls.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::{ClassDecl, EventSpec};
    use crate::store::ObjectStore;
    use crate::value::TypeTag;

    /// Minimal passive world over a bare store, used only by tests in
    /// this crate. The real engines live in `sentinel-db` and
    /// `sentinel-baselines`.
    struct TestWorld {
        registry: ClassRegistry,
        store: ObjectStore,
        methods: MethodTable,
        clock: u64,
    }

    impl World for TestWorld {
        fn registry(&self) -> &ClassRegistry {
            &self.registry
        }
        fn create(&mut self, class: &str) -> Result<Oid> {
            let id = self.registry.id_of(class)?;
            Ok(self.store.create(&self.registry, id))
        }
        fn delete(&mut self, oid: Oid) -> Result<()> {
            self.store.delete(oid).map(|_| ())
        }
        fn get_attr(&self, oid: Oid, attr: &str) -> Result<Value> {
            self.store.get_attr(&self.registry, oid, attr)
        }
        fn set_attr(&mut self, oid: Oid, attr: &str, value: Value) -> Result<()> {
            self.store
                .set_attr(&self.registry, oid, attr, value)
                .map(|_| ())
        }
        fn send(&mut self, receiver: Oid, method: &str, args: &[Value]) -> Result<Value> {
            let class = self.store.class_of(receiver)?;
            let (_, _, body) = self.methods.resolve(&self.registry, class, method, args)?;
            self.clock += 1;
            body(self, receiver, args)
        }
        fn class_of(&self, oid: Oid) -> Result<ClassId> {
            self.store.class_of(oid)
        }
        fn extent(&self, class: &str) -> Result<Vec<Oid>> {
            let id = self.registry.id_of(class)?;
            Ok(self.store.extent(&self.registry, id))
        }
        fn now(&self) -> u64 {
            self.clock
        }
    }

    fn world() -> (TestWorld, ClassId) {
        let mut registry = ClassRegistry::new();
        let emp = registry
            .define(
                ClassDecl::reactive("Employee")
                    .attr("salary", TypeTag::Float)
                    .event_method("Set-Salary", &[("x", TypeTag::Float)], EventSpec::End)
                    .method("Get-Salary", &[])
                    .method("Raise", &[("pct", TypeTag::Float)]),
            )
            .unwrap();
        let mut methods = MethodTable::new();
        methods.register_setter(emp, "Set-Salary", "salary");
        methods.register_getter(emp, "Get-Salary", "salary");
        methods.register(emp, "Raise", |w, this, args| {
            let pct = args[0].as_float()?;
            let cur = w.get_attr(this, "salary")?.as_float()?;
            // Nested send: re-enters dispatch.
            w.send(this, "Set-Salary", &[Value::Float(cur * (1.0 + pct))])
        });
        (
            TestWorld {
                registry,
                store: ObjectStore::new(),
                methods,
                clock: 0,
            },
            emp,
        )
    }

    #[test]
    fn dispatch_setter_getter_and_nested_send() {
        let (mut w, _) = world();
        let fred = w.create("Employee").unwrap();
        w.send(fred, "Set-Salary", &[Value::Float(100.0)]).unwrap();
        assert_eq!(
            w.send(fred, "Get-Salary", &[]).unwrap(),
            Value::Float(100.0)
        );
        w.send(fred, "Raise", &[Value::Float(0.5)]).unwrap();
        assert_eq!(
            w.send(fred, "Get-Salary", &[]).unwrap(),
            Value::Float(150.0)
        );
    }

    #[test]
    fn arity_and_type_checked_at_dispatch() {
        let (mut w, _) = world();
        let fred = w.create("Employee").unwrap();
        assert!(matches!(
            w.send(fred, "Set-Salary", &[]),
            Err(ObjectError::ArityMismatch { .. })
        ));
        assert!(matches!(
            w.send(fred, "Set-Salary", &[Value::Str("x".into())]),
            Err(ObjectError::TypeMismatch { .. })
        ));
    }

    #[test]
    fn missing_implementation_detected() {
        let (w, emp) = world();
        // Declare a method without registering a body.
        let mut reg2 = ClassRegistry::new();
        let c = reg2
            .define(ClassDecl::new("Ghost").method("Spook", &[]))
            .unwrap();
        let table = MethodTable::new();
        let err = table.resolve(&reg2, c, "Spook", &[]).err().unwrap();
        assert!(matches!(err, ObjectError::MissingImplementation { .. }));
        // And unknown methods are distinct errors.
        let err = w
            .methods
            .resolve(&w.registry, emp, "Nope", &[])
            .err()
            .unwrap();
        assert!(matches!(err, ObjectError::UnknownMethod { .. }));
    }

    #[test]
    fn inherited_body_dispatches_on_subclass_instance() {
        let (mut w, emp) = world();
        let mgr = w
            .registry
            .define(ClassDecl::reactive("Manager").parent("Employee"))
            .unwrap();
        let mike = w.store.create(&w.registry, mgr);
        w.send(mike, "Set-Salary", &[Value::Float(9.0)]).unwrap();
        assert_eq!(w.send(mike, "Get-Salary", &[]).unwrap(), Value::Float(9.0));
        // The resolved owner is Employee.
        let (owner, _, _) = w
            .methods
            .resolve(&w.registry, mgr, "Set-Salary", &[Value::Float(1.0)])
            .unwrap();
        assert_eq!(owner, emp);
    }
}
