//! Error types shared by every layer built on the object model.

use crate::oid::Oid;
use crate::value::TypeTag;
use std::fmt;

/// Result alias used throughout the workspace.
pub type Result<T> = std::result::Result<T, ObjectError>;

/// Everything that can go wrong in the object substrate and the layers
/// above it.
///
/// The rule layers reuse this type so that a rule condition/action body can
/// signal `TransactionAborted` — the paper's Figure 9 `A : abort` action —
/// and have the database roll the triggering transaction back.
/// The enum is `#[non_exhaustive]`: downstream `match`es need a
/// wildcard arm, and new error variants are not breaking changes. For
/// the two distinctions callers actually branch on, prefer the
/// [`is_abort`](Self::is_abort) / [`is_not_found`](Self::is_not_found)
/// predicates over matching variants directly.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
#[allow(missing_docs)] // variant fields are named and self-describing
pub enum ObjectError {
    /// No class with this name has been defined.
    UnknownClass(String),
    /// A class with this name already exists.
    DuplicateClass(String),
    /// A parent named in a class declaration does not exist.
    UnknownParent { class: String, parent: String },
    /// Two attributes with the same name in one declaration.
    DuplicateAttribute { class: String, attribute: String },
    /// Two methods with the same name in one declaration.
    DuplicateMethod { class: String, method: String },
    /// Inheritance graph has no consistent linearization (C3 failure).
    InconsistentHierarchy(String),
    /// The method is not defined on (or inherited by) the receiver's class.
    UnknownMethod { class: String, method: String },
    /// The attribute is not defined on (or inherited by) the class.
    UnknownAttribute { class: String, attribute: String },
    /// Object does not exist (never created, or deleted).
    NoSuchObject(Oid),
    /// A value did not conform to the declared type.
    TypeMismatch { expected: TypeTag, found: TypeTag },
    /// Wrong number of arguments in a message send.
    ArityMismatch {
        method: String,
        expected: usize,
        found: usize,
    },
    /// A method body was declared in the schema but never registered in
    /// the [`MethodTable`](crate::method::MethodTable).
    MissingImplementation { class: String, method: String },
    /// A private/protected method was invoked from outside the class.
    VisibilityViolation { class: String, method: String },
    /// Raised by a rule action (or method) to abort the surrounding
    /// transaction — the paper's `abort` rule action.
    TransactionAborted(String),
    /// Cascading rule execution exceeded the configured depth limit.
    CascadeDepthExceeded { limit: usize },
    /// No transaction is active where one is required.
    NoActiveTransaction,
    /// A transaction is already active where none may be.
    TransactionAlreadyActive,
    /// Referenced rule does not exist.
    UnknownRule(String),
    /// A rule with this name already exists.
    DuplicateRule(String),
    /// Referenced event object does not exist.
    UnknownEvent(String),
    /// Malformed event-signature string (paper §4.6 syntax).
    EventParse(String),
    /// The engine does not support the requested capability. Used by the
    /// baseline engines for the E1 capability matrix.
    Unsupported(String),
    /// Storage-layer failure (I/O, corrupt record, ...).
    Storage(String),
    /// A rule references a condition/action body name that was never
    /// registered in the body registry. `kind` is `"condition"` or
    /// `"action"`. Surfaced as a diagnostic by the engine (at
    /// `add_rule` and at fire time) and by the static analyzer,
    /// instead of panicking inside dispatch.
    BodyNotRegistered { kind: &'static str, name: String },
    /// Catch-all for application-level failures inside method bodies.
    App(String),
}

impl fmt::Display for ObjectError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        use ObjectError::*;
        match self {
            UnknownClass(c) => write!(f, "unknown class `{c}`"),
            DuplicateClass(c) => write!(f, "class `{c}` already defined"),
            UnknownParent { class, parent } => {
                write!(f, "class `{class}`: unknown parent `{parent}`")
            }
            DuplicateAttribute { class, attribute } => {
                write!(f, "class `{class}`: duplicate attribute `{attribute}`")
            }
            DuplicateMethod { class, method } => {
                write!(f, "class `{class}`: duplicate method `{method}`")
            }
            InconsistentHierarchy(c) => {
                write!(f, "class `{c}`: no consistent C3 linearization")
            }
            UnknownMethod { class, method } => {
                write!(f, "class `{class}` does not understand `{method}`")
            }
            UnknownAttribute { class, attribute } => {
                write!(f, "class `{class}` has no attribute `{attribute}`")
            }
            NoSuchObject(oid) => write!(f, "no such object {oid}"),
            TypeMismatch { expected, found } => {
                write!(f, "type mismatch: expected {expected}, found {found}")
            }
            ArityMismatch {
                method,
                expected,
                found,
            } => write!(
                f,
                "method `{method}` takes {expected} argument(s), {found} given"
            ),
            MissingImplementation { class, method } => {
                write!(f, "method `{class}::{method}` declared but not implemented")
            }
            VisibilityViolation { class, method } => {
                write!(f, "method `{class}::{method}` is not publicly callable")
            }
            TransactionAborted(reason) => write!(f, "transaction aborted: {reason}"),
            CascadeDepthExceeded { limit } => {
                write!(f, "rule cascade exceeded depth limit {limit}")
            }
            NoActiveTransaction => f.write_str("no active transaction"),
            TransactionAlreadyActive => f.write_str("a transaction is already active"),
            UnknownRule(r) => write!(f, "unknown rule `{r}`"),
            DuplicateRule(r) => write!(f, "rule `{r}` already defined"),
            UnknownEvent(e) => write!(f, "unknown event `{e}`"),
            EventParse(msg) => write!(f, "cannot parse event signature: {msg}"),
            Unsupported(what) => write!(f, "unsupported by this engine: {what}"),
            BodyNotRegistered { kind, name } => {
                write!(f, "no {kind} body registered under `{name}`")
            }
            Storage(msg) => write!(f, "storage error: {msg}"),
            App(msg) => write!(f, "application error: {msg}"),
        }
    }
}

impl std::error::Error for ObjectError {}

impl ObjectError {
    /// Convenience constructor for the paper's `abort` action.
    pub fn abort(reason: impl Into<String>) -> Self {
        ObjectError::TransactionAborted(reason.into())
    }

    /// True if this error denotes a deliberate transaction abort rather
    /// than a programming error.
    pub fn is_abort(&self) -> bool {
        matches!(self, ObjectError::TransactionAborted(_))
    }

    /// True if this error means a named entity (object, class, method,
    /// attribute, rule, or event) does not exist — the "look it up,
    /// fall back if absent" cases, as opposed to malformed input or an
    /// engine failure.
    pub fn is_not_found(&self) -> bool {
        matches!(
            self,
            ObjectError::NoSuchObject(_)
                | ObjectError::UnknownClass(_)
                | ObjectError::UnknownMethod { .. }
                | ObjectError::UnknownAttribute { .. }
                | ObjectError::UnknownRule(_)
                | ObjectError::UnknownEvent(_)
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_human_readable() {
        let e = ObjectError::UnknownMethod {
            class: "Employee".into(),
            method: "Fire".into(),
        };
        assert_eq!(e.to_string(), "class `Employee` does not understand `Fire`");
    }

    #[test]
    fn abort_helper() {
        let e = ObjectError::abort("same sex");
        assert!(e.is_abort());
        assert!(!ObjectError::NoActiveTransaction.is_abort());
    }

    #[test]
    fn body_not_registered_display() {
        let e = ObjectError::BodyNotRegistered {
            kind: "action",
            name: "purchase".into(),
        };
        assert_eq!(e.to_string(), "no action body registered under `purchase`");
        assert!(!e.is_abort());
        assert!(!e.is_not_found());
    }

    #[test]
    fn not_found_predicate() {
        assert!(ObjectError::NoSuchObject(Oid(7)).is_not_found());
        assert!(ObjectError::UnknownClass("X".into()).is_not_found());
        assert!(ObjectError::UnknownRule("R".into()).is_not_found());
        assert!(!ObjectError::abort("no").is_not_found());
        assert!(!ObjectError::Storage("disk".into()).is_not_found());
    }
}
