//! Object identifiers.
//!
//! Every first-class entity in Sentinel — ordinary instances, but also
//! event objects and rule objects — carries an [`Oid`]. Oids are never
//! reused within one store; generation is a monotone counter.

use serde::{Deserialize, Serialize};
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};

/// An object identifier: opaque, totally ordered, never reused.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct Oid(pub u64);

impl Oid {
    /// The reserved "no object" identifier. Never allocated by a generator.
    pub const NIL: Oid = Oid(0);

    /// True for the reserved nil identifier.
    pub fn is_nil(self) -> bool {
        self == Self::NIL
    }

    /// Raw numeric form, used by the storage layer.
    pub fn as_u64(self) -> u64 {
        self.0
    }
}

impl fmt::Display for Oid {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "@{}", self.0)
    }
}

/// Monotone allocator for [`Oid`]s.
///
/// Thread-safe so that the detached rule executor can create objects
/// concurrently with the main thread.
#[derive(Debug)]
pub struct OidGenerator {
    next: AtomicU64,
}

impl Default for OidGenerator {
    fn default() -> Self {
        Self::new()
    }
}

impl OidGenerator {
    /// A fresh generator whose first allocation is `@1`.
    pub fn new() -> Self {
        OidGenerator {
            next: AtomicU64::new(1),
        }
    }

    /// Allocate the next identifier.
    pub fn allocate(&self) -> Oid {
        Oid(self.next.fetch_add(1, Ordering::Relaxed))
    }

    /// Advance the counter so it will never hand out ids at or below
    /// `floor`. Used during recovery so re-created stores do not reuse
    /// identifiers present in the log.
    pub fn bump_past(&self, floor: Oid) {
        let mut cur = self.next.load(Ordering::Relaxed);
        while cur <= floor.0 {
            match self
                .next
                .compare_exchange(cur, floor.0 + 1, Ordering::Relaxed, Ordering::Relaxed)
            {
                Ok(_) => return,
                Err(actual) => cur = actual,
            }
        }
    }

    /// The id that would be returned by the next [`allocate`](Self::allocate).
    pub fn peek(&self) -> Oid {
        Oid(self.next.load(Ordering::Relaxed))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn allocation_is_monotone_and_skips_nil() {
        let g = OidGenerator::new();
        let a = g.allocate();
        let b = g.allocate();
        assert!(!a.is_nil());
        assert!(a < b);
    }

    #[test]
    fn bump_past_prevents_reuse() {
        let g = OidGenerator::new();
        g.bump_past(Oid(100));
        assert_eq!(g.allocate(), Oid(101));
        // Bumping below the current floor is a no-op.
        g.bump_past(Oid(5));
        assert_eq!(g.allocate(), Oid(102));
    }

    #[test]
    fn display_form() {
        assert_eq!(Oid(42).to_string(), "@42");
    }

    #[test]
    fn nil_is_reserved() {
        assert!(Oid::NIL.is_nil());
        let g = OidGenerator::new();
        for _ in 0..10 {
            assert!(!g.allocate().is_nil());
        }
    }
}
