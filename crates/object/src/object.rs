//! Instance state.

use crate::error::{ObjectError, Result};
use crate::schema::{ClassDef, ClassId};
use crate::value::Value;
use serde::{Deserialize, Serialize};

/// The stored state of one object: its class plus one value per slot of
/// the class layout (inherited slots included).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ObjectState {
    /// The instance's (dynamic) class.
    pub class: ClassId,
    /// One value per slot of the class layout, inherited slots included.
    pub slots: Vec<Value>,
}

impl ObjectState {
    /// Fresh instance state with every slot at its declared default.
    pub fn new(def: &ClassDef) -> Self {
        ObjectState {
            class: def.id,
            slots: def.layout.iter().map(|s| s.attr.default.clone()).collect(),
        }
    }

    /// Read an attribute through the class layout.
    pub fn get(&self, def: &ClassDef, attr: &str) -> Result<&Value> {
        match def.slot_of(attr) {
            Some(idx) => Ok(&self.slots[idx]),
            None => Err(ObjectError::UnknownAttribute {
                class: def.name.clone(),
                attribute: attr.to_string(),
            }),
        }
    }

    /// Write an attribute through the class layout, enforcing the
    /// declared type. Returns the previous value (used for undo logging).
    pub fn set(&mut self, def: &ClassDef, attr: &str, value: Value) -> Result<Value> {
        let idx = def
            .slot_of(attr)
            .ok_or_else(|| ObjectError::UnknownAttribute {
                class: def.name.clone(),
                attribute: attr.to_string(),
            })?;
        let declared = def.layout[idx].attr.ty;
        if !value.conforms_to(declared) {
            return Err(ObjectError::TypeMismatch {
                expected: declared,
                found: value.type_tag(),
            });
        }
        Ok(std::mem::replace(&mut self.slots[idx], value))
    }

    /// Write a slot directly by index, enforcing the declared type.
    /// Returns the previous value. The allocation-free core of
    /// [`set`](Self::set): no attribute-name lookup, no error-path
    /// string formatting on the happy path.
    pub fn set_slot(&mut self, def: &ClassDef, slot: usize, value: Value) -> Result<Value> {
        let declared = match def.layout.get(slot) {
            Some(s) => s.attr.ty,
            None => {
                return Err(ObjectError::UnknownAttribute {
                    class: def.name.clone(),
                    attribute: format!("<slot {slot}>"),
                })
            }
        };
        if !value.conforms_to(declared) {
            return Err(ObjectError::TypeMismatch {
                expected: declared,
                found: value.type_tag(),
            });
        }
        Ok(std::mem::replace(&mut self.slots[slot], value))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::{ClassDecl, ClassRegistry};
    use crate::value::TypeTag;

    #[test]
    fn defaults_then_get_set() {
        let mut reg = ClassRegistry::new();
        let id = reg
            .define(
                ClassDecl::new("Point")
                    .attr("x", TypeTag::Float)
                    .attr_with_default("label", TypeTag::Str, Value::Str("origin".into())),
            )
            .unwrap();
        let def = reg.get(id);
        let mut st = ObjectState::new(def);
        assert_eq!(st.get(def, "x").unwrap(), &Value::Float(0.0));
        assert_eq!(st.get(def, "label").unwrap(), &Value::Str("origin".into()));
        let old = st.set(def, "x", Value::Float(3.5)).unwrap();
        assert_eq!(old, Value::Float(0.0));
        assert_eq!(st.get(def, "x").unwrap(), &Value::Float(3.5));
    }

    #[test]
    fn type_enforcement_and_widening() {
        let mut reg = ClassRegistry::new();
        let id = reg
            .define(ClassDecl::new("P").attr("x", TypeTag::Float))
            .unwrap();
        let def = reg.get(id);
        let mut st = ObjectState::new(def);
        // Int widens into a Float slot.
        st.set(def, "x", Value::Int(2)).unwrap();
        // But a string does not.
        assert!(matches!(
            st.set(def, "x", Value::Str("no".into())),
            Err(ObjectError::TypeMismatch { .. })
        ));
        assert!(matches!(
            st.get(def, "nope"),
            Err(ObjectError::UnknownAttribute { .. })
        ));
    }
}
