//! The tagged value universe.
//!
//! Attribute values, method parameters and event parameters (the paper's
//! "Actual parameters" in the generated-event tuple) are all [`Value`]s.
//! The universe mirrors what the paper's C++ examples use: numbers,
//! strings, booleans, object references, plus lists and maps so that
//! composite state (e.g. a portfolio's holdings) can be modelled without
//! auxiliary classes.

use crate::error::{ObjectError, Result};
use crate::oid::Oid;
use serde::{Deserialize, Serialize};
use std::cmp::Ordering;
use std::collections::BTreeMap;
use std::fmt;

/// Type tags for schema declarations and runtime checks.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
#[allow(missing_docs)] // variants name primitive types
pub enum TypeTag {
    /// Unconstrained attribute/parameter.
    Any,
    Bool,
    Int,
    Float,
    Str,
    Oid,
    List,
    Map,
}

impl fmt::Display for TypeTag {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            TypeTag::Any => "any",
            TypeTag::Bool => "bool",
            TypeTag::Int => "int",
            TypeTag::Float => "float",
            TypeTag::Str => "str",
            TypeTag::Oid => "oid",
            TypeTag::List => "list",
            TypeTag::Map => "map",
        };
        f.write_str(s)
    }
}

/// A dynamically-typed database value.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
#[allow(missing_docs)] // variants mirror TypeTag
pub enum Value {
    Null,
    Bool(bool),
    Int(i64),
    Float(f64),
    Str(String),
    Oid(Oid),
    List(Vec<Value>),
    Map(BTreeMap<String, Value>),
}

impl Value {
    /// The tag describing this value's runtime type.
    pub fn type_tag(&self) -> TypeTag {
        match self {
            Value::Null => TypeTag::Any,
            Value::Bool(_) => TypeTag::Bool,
            Value::Int(_) => TypeTag::Int,
            Value::Float(_) => TypeTag::Float,
            Value::Str(_) => TypeTag::Str,
            Value::Oid(_) => TypeTag::Oid,
            Value::List(_) => TypeTag::List,
            Value::Map(_) => TypeTag::Map,
        }
    }

    /// Whether this value is acceptable for a slot declared with `tag`.
    ///
    /// `Null` is acceptable everywhere (unset attribute); `Int` is
    /// acceptable where `Float` is declared (numeric widening, matching
    /// the paper's free use of C++ numeric conversions).
    pub fn conforms_to(&self, tag: TypeTag) -> bool {
        match (self, tag) {
            (_, TypeTag::Any) | (Value::Null, _) => true,
            (Value::Int(_), TypeTag::Float) => true,
            (v, t) => v.type_tag() == t,
        }
    }

    /// Default (zero) value for a declared type.
    pub fn default_for(tag: TypeTag) -> Value {
        match tag {
            TypeTag::Any => Value::Null,
            TypeTag::Bool => Value::Bool(false),
            TypeTag::Int => Value::Int(0),
            TypeTag::Float => Value::Float(0.0),
            TypeTag::Str => Value::Str(String::new()),
            TypeTag::Oid => Value::Oid(Oid::NIL),
            TypeTag::List => Value::List(Vec::new()),
            TypeTag::Map => Value::Map(BTreeMap::new()),
        }
    }

    fn mismatch(&self, expected: TypeTag) -> ObjectError {
        ObjectError::TypeMismatch {
            expected,
            found: self.type_tag(),
        }
    }

    /// Extract a boolean, erroring on any other type.
    pub fn as_bool(&self) -> Result<bool> {
        match self {
            Value::Bool(b) => Ok(*b),
            other => Err(other.mismatch(TypeTag::Bool)),
        }
    }

    /// Extract an integer, erroring on any other type.
    pub fn as_int(&self) -> Result<i64> {
        match self {
            Value::Int(i) => Ok(*i),
            other => Err(other.mismatch(TypeTag::Int)),
        }
    }

    /// Extract a float; integers widen.
    pub fn as_float(&self) -> Result<f64> {
        match self {
            Value::Float(f) => Ok(*f),
            Value::Int(i) => Ok(*i as f64),
            other => Err(other.mismatch(TypeTag::Float)),
        }
    }

    /// Borrow a string, erroring on any other type.
    pub fn as_str(&self) -> Result<&str> {
        match self {
            Value::Str(s) => Ok(s),
            other => Err(other.mismatch(TypeTag::Str)),
        }
    }

    /// Extract an object reference, erroring on any other type.
    pub fn as_oid(&self) -> Result<Oid> {
        match self {
            Value::Oid(o) => Ok(*o),
            other => Err(other.mismatch(TypeTag::Oid)),
        }
    }

    /// Borrow a list, erroring on any other type.
    pub fn as_list(&self) -> Result<&[Value]> {
        match self {
            Value::List(l) => Ok(l),
            other => Err(other.mismatch(TypeTag::List)),
        }
    }

    /// Borrow a map, erroring on any other type.
    pub fn as_map(&self) -> Result<&BTreeMap<String, Value>> {
        match self {
            Value::Map(m) => Ok(m),
            other => Err(other.mismatch(TypeTag::Map)),
        }
    }

    /// Truthiness used by rule conditions that return a value rather than
    /// a boolean: `Null`, `false`, `0`, `0.0`, and the empty string/list/map
    /// are falsy; everything else (including any oid) is truthy.
    pub fn is_truthy(&self) -> bool {
        match self {
            Value::Null => false,
            Value::Bool(b) => *b,
            Value::Int(i) => *i != 0,
            Value::Float(f) => *f != 0.0,
            Value::Str(s) => !s.is_empty(),
            Value::Oid(_) => true,
            Value::List(l) => !l.is_empty(),
            Value::Map(m) => !m.is_empty(),
        }
    }

    /// Ordering used by conditions comparing event parameters. Numeric
    /// values compare across `Int`/`Float`; other comparisons require the
    /// same type tag. Returns `None` for incomparable pairs (including any
    /// NaN operand).
    pub fn compare(&self, other: &Value) -> Option<Ordering> {
        match (self, other) {
            (Value::Int(a), Value::Int(b)) => Some(a.cmp(b)),
            (Value::Float(a), Value::Float(b)) => a.partial_cmp(b),
            (Value::Int(a), Value::Float(b)) => (*a as f64).partial_cmp(b),
            (Value::Float(a), Value::Int(b)) => a.partial_cmp(&(*b as f64)),
            (Value::Str(a), Value::Str(b)) => Some(a.cmp(b)),
            (Value::Bool(a), Value::Bool(b)) => Some(a.cmp(b)),
            (Value::Oid(a), Value::Oid(b)) => Some(a.cmp(b)),
            _ => None,
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Null => f.write_str("null"),
            Value::Bool(b) => write!(f, "{b}"),
            Value::Int(i) => write!(f, "{i}"),
            Value::Float(x) => write!(f, "{x}"),
            Value::Str(s) => write!(f, "{s:?}"),
            Value::Oid(o) => write!(f, "{o}"),
            Value::List(l) => {
                f.write_str("[")?;
                for (i, v) in l.iter().enumerate() {
                    if i > 0 {
                        f.write_str(", ")?;
                    }
                    write!(f, "{v}")?;
                }
                f.write_str("]")
            }
            Value::Map(m) => {
                f.write_str("{")?;
                for (i, (k, v)) in m.iter().enumerate() {
                    if i > 0 {
                        f.write_str(", ")?;
                    }
                    write!(f, "{k}: {v}")?;
                }
                f.write_str("}")
            }
        }
    }
}

impl From<bool> for Value {
    fn from(b: bool) -> Self {
        Value::Bool(b)
    }
}
impl From<i64> for Value {
    fn from(i: i64) -> Self {
        Value::Int(i)
    }
}
impl From<i32> for Value {
    fn from(i: i32) -> Self {
        Value::Int(i as i64)
    }
}
impl From<f64> for Value {
    fn from(f: f64) -> Self {
        Value::Float(f)
    }
}
impl From<&str> for Value {
    fn from(s: &str) -> Self {
        Value::Str(s.to_string())
    }
}
impl From<String> for Value {
    fn from(s: String) -> Self {
        Value::Str(s)
    }
}
impl From<Oid> for Value {
    fn from(o: Oid) -> Self {
        Value::Oid(o)
    }
}
impl From<Vec<Value>> for Value {
    fn from(l: Vec<Value>) -> Self {
        Value::List(l)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conformance_and_widening() {
        assert!(Value::Int(3).conforms_to(TypeTag::Float));
        assert!(Value::Null.conforms_to(TypeTag::Oid));
        assert!(!Value::Float(1.0).conforms_to(TypeTag::Int));
        assert!(Value::Str("x".into()).conforms_to(TypeTag::Any));
    }

    #[test]
    fn extraction_errors_carry_tags() {
        let e = Value::Str("hi".into()).as_int().unwrap_err();
        match e {
            ObjectError::TypeMismatch { expected, found } => {
                assert_eq!(expected, TypeTag::Int);
                assert_eq!(found, TypeTag::Str);
            }
            other => panic!("unexpected error {other:?}"),
        }
    }

    #[test]
    fn numeric_cross_comparison() {
        assert_eq!(
            Value::Int(2).compare(&Value::Float(2.5)),
            Some(Ordering::Less)
        );
        assert_eq!(
            Value::Float(3.0).compare(&Value::Int(3)),
            Some(Ordering::Equal)
        );
        assert_eq!(Value::Str("a".into()).compare(&Value::Int(1)), None);
        assert_eq!(Value::Float(f64::NAN).compare(&Value::Float(1.0)), None);
    }

    #[test]
    fn truthiness() {
        assert!(!Value::Null.is_truthy());
        assert!(!Value::Int(0).is_truthy());
        assert!(Value::Int(-1).is_truthy());
        assert!(!Value::Str(String::new()).is_truthy());
        assert!(Value::Oid(Oid(7)).is_truthy());
        assert!(!Value::List(vec![]).is_truthy());
    }

    #[test]
    fn defaults_conform() {
        for tag in [
            TypeTag::Any,
            TypeTag::Bool,
            TypeTag::Int,
            TypeTag::Float,
            TypeTag::Str,
            TypeTag::Oid,
            TypeTag::List,
            TypeTag::Map,
        ] {
            assert!(Value::default_for(tag).conforms_to(tag), "{tag}");
        }
    }

    #[test]
    fn float_as_float_and_int_widen() {
        assert_eq!(Value::Int(7).as_float().unwrap(), 7.0);
        assert_eq!(Value::Float(1.5).as_float().unwrap(), 1.5);
    }

    #[test]
    fn display_round_trips_for_debugging() {
        let v = Value::List(vec![Value::Int(1), Value::Str("a".into())]);
        assert_eq!(v.to_string(), "[1, \"a\"]");
    }
}
