#![warn(missing_docs)]
//! # sentinel-object — the object-model substrate
//!
//! The 1993 Sentinel paper builds its reactive capability on top of
//! Zeitgeist, a C++ OODBMS from Texas Instruments. This crate is the
//! from-scratch substitute for that substrate: a dynamic object model with
//!
//! * tagged [`Value`]s and [`Oid`]s (object identity),
//! * class schemas with single **and** multiple inheritance
//!   ([`ClassRegistry`], C3 linearization),
//! * per-method **event interface** declarations (`event begin`, `event
//!   end`, `event begin && end` — paper Figure 8),
//! * a slot-based [`ObjectStore`] holding instance state, and
//! * a [`MethodTable`] of native method implementations — the analog of the
//!   paper's C++ member functions reached through pointers-to-member
//!   (`PMF`). Rust has no reflection, so methods (and later, rule
//!   conditions and actions) are registered closures addressed by name; a
//!   message send resolves the receiver's class, walks the linearization,
//!   and invokes the registered body.
//!
//! The crate deliberately knows nothing about events, rules, or
//! persistence; those layers are built on top (see `sentinel-events`,
//! `sentinel-rules`, `sentinel-storage`, `sentinel-db`). Method bodies talk
//! to the rest of the system only through the [`World`] trait, which the
//! database facade implements; this is what lets the same method body run
//! under the Sentinel engine and under the Ode/ADAM baseline engines.

pub mod error;
pub mod hash;
pub mod method;
pub mod object;
pub mod oid;
pub mod schema;
pub mod store;
pub mod value;
pub mod world;

pub use error::{ObjectError, Result};
pub use hash::{FastMap, FastSet};
pub use method::{MethodTable, NativeFn};
pub use object::ObjectState;
pub use oid::{Oid, OidGenerator};
pub use schema::{
    AttributeDef, ClassDecl, ClassDef, ClassId, ClassRegistry, EventSpec, EventSym, EventSymInfo,
    MethodDef, ParamDef, Reactivity, Visibility,
};
pub use store::ObjectStore;
pub use value::{TypeTag, Value};
pub use world::World;
