//! Class schemas, inheritance, and the **event interface**.
//!
//! A *reactive class definition* in the paper is
//!
//! ```text
//! Reactive class definition = Traditional class definition
//!                           + Event interface specification
//! ```
//!
//! so a [`ClassDecl`] carries, per method, an [`EventSpec`] saying whether
//! invoking the method generates a begin-of-method (bom) event, an
//! end-of-method (eom) event, both, or none (paper Figure 8:
//! `event begin Change-Salary(float x);`, `event end Get-Salary();`,
//! `event begin && end Get-Age();`).
//!
//! Classes support single and multiple inheritance. Method and attribute
//! lookup walks the C3 linearization of the class, which gives the usual
//! "most-derived wins, left parent before right parent" resolution and
//! rejects genuinely ambiguous hierarchies at definition time.

use crate::error::{ObjectError, Result};
use crate::hash::FastMap;
use crate::value::{TypeTag, Value};
use serde::{Deserialize, Serialize};
use std::fmt;

/// Index of a class inside a [`ClassRegistry`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct ClassId(pub u32);

impl fmt::Display for ClassId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "#{}", self.0)
    }
}

/// Interned primitive-event symbol: a dense identifier for one
/// `(class, method, begin|end)` triple.
///
/// Every method visible on a class (own or inherited) gets two symbols —
/// the paper's "every method of a class corresponds to two potential
/// primitive events" — interned when the class is defined. A subclass
/// receives *fresh* symbols for inherited methods: the symbol identifies
/// the event as raised by an instance of that dynamic class, which is what
/// lets subclass-closed alphabets match by integer compare instead of a
/// string compare plus a linearization walk.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct EventSym(pub u32);

impl fmt::Display for EventSym {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "e{}", self.0)
    }
}

/// Reverse-lookup record for an interned [`EventSym`].
#[derive(Debug, Clone)]
pub struct EventSymInfo {
    /// The dynamic class the symbol belongs to.
    pub class: ClassId,
    /// The method name.
    pub method: String,
    /// `false` = begin-of-method half, `true` = end-of-method half.
    pub end: bool,
}

/// C++-style member visibility (paper difference #2: "the distinctions
/// between features supported (e.g., private, protected, and public in
/// C++) need to be accounted for").
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub enum Visibility {
    /// Callable/readable from anywhere.
    #[default]
    Public,
    /// Visible to the class and its subclasses.
    Protected,
    /// Visible to the defining class only.
    Private,
}

/// Per-method event-interface declaration.
///
/// `None` means invocations are invisible to the rule system — the method
/// behaves exactly like a method of a passive object ("The method Get-Name
/// does not generate any events, and hence its invocation does not cause
/// any rule evaluation").
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub enum EventSpec {
    /// Not an event generator (the default).
    #[default]
    None,
    /// `event begin M(...)` — raise before executing the body.
    Begin,
    /// `event end M(...)` — raise after the body returns.
    End,
    /// `event begin && end M(...)`.
    BeginAndEnd,
}

impl EventSpec {
    /// Does this spec generate a begin-of-method event?
    pub fn begin(self) -> bool {
        matches!(self, EventSpec::Begin | EventSpec::BeginAndEnd)
    }

    /// Does this spec generate an end-of-method event?
    pub fn end(self) -> bool {
        matches!(self, EventSpec::End | EventSpec::BeginAndEnd)
    }

    /// Number of potential primitive events this spec contributes
    /// (paper: "every method of a class corresponds to two potential
    /// primitive events").
    pub fn event_count(self) -> usize {
        self.begin() as usize + self.end() as usize
    }
}

/// Whether instances of a class can generate events at all.
///
/// The paper's three-way object classification is: *passive* (plain
/// objects, zero event overhead), *reactive* (event producers), and
/// *notifiable* (event consumers). Notifiability is a property of the
/// consumer side (rules, event objects) and is modelled in
/// `sentinel-rules`; the schema records only the producer side.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub enum Reactivity {
    /// Plain objects; zero event overhead.
    #[default]
    Passive,
    /// Instances generate events through the event interface.
    Reactive,
}

/// A declared attribute (data member).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct AttributeDef {
    /// Attribute name (unique within a declaration).
    pub name: String,
    /// Declared slot type.
    pub ty: TypeTag,
    /// Initial value for fresh instances; must conform to `ty`.
    pub default: Value,
    /// C++-style member visibility.
    pub visibility: Visibility,
}

/// A declared method parameter.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ParamDef {
    /// Parameter name (carried into event-occurrence records).
    pub name: String,
    /// Declared parameter type (checked at dispatch).
    pub ty: TypeTag,
}

/// A declared method (member function).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct MethodDef {
    /// Method name (unique within a declaration).
    pub name: String,
    /// Declared parameters, in order.
    pub params: Vec<ParamDef>,
    /// C++-style member visibility.
    pub visibility: Visibility,
    /// The event-interface entry for this method.
    pub events: EventSpec,
}

/// User-facing class declaration, fed to [`ClassRegistry::define`].
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct ClassDecl {
    /// Class name (unique within a registry).
    pub name: String,
    /// Parent class names, in C++ base-class order.
    pub parents: Vec<String>,
    /// Whether instances generate events.
    pub reactivity: Reactivity,
    /// Attributes introduced by this class.
    pub attributes: Vec<AttributeDef>,
    /// Methods introduced (or overridden) by this class.
    pub methods: Vec<MethodDef>,
}

impl ClassDecl {
    /// Start a declaration for a passive class.
    pub fn new(name: impl Into<String>) -> Self {
        ClassDecl {
            name: name.into(),
            ..Default::default()
        }
    }

    /// Start a declaration for a reactive class (one able to generate
    /// events through its event interface).
    pub fn reactive(name: impl Into<String>) -> Self {
        ClassDecl {
            name: name.into(),
            reactivity: Reactivity::Reactive,
            ..Default::default()
        }
    }

    /// Add a parent class (may be called repeatedly for multiple
    /// inheritance; order is the C++ base-class order and drives C3).
    pub fn parent(mut self, name: impl Into<String>) -> Self {
        self.parents.push(name.into());
        self
    }

    /// Add a public attribute with the type's zero default.
    pub fn attr(mut self, name: impl Into<String>, ty: TypeTag) -> Self {
        self.attributes.push(AttributeDef {
            name: name.into(),
            ty,
            default: Value::default_for(ty),
            visibility: Visibility::Public,
        });
        self
    }

    /// Add an attribute with an explicit default value.
    pub fn attr_with_default(
        mut self,
        name: impl Into<String>,
        ty: TypeTag,
        default: Value,
    ) -> Self {
        self.attributes.push(AttributeDef {
            name: name.into(),
            ty,
            default,
            visibility: Visibility::Public,
        });
        self
    }

    /// Add a public method with no event-interface entry.
    pub fn method(mut self, name: impl Into<String>, params: &[(&str, TypeTag)]) -> Self {
        self.methods.push(MethodDef {
            name: name.into(),
            params: params
                .iter()
                .map(|(n, t)| ParamDef {
                    name: (*n).into(),
                    ty: *t,
                })
                .collect(),
            visibility: Visibility::Public,
            events: EventSpec::None,
        });
        self
    }

    /// Add a public method that is a primitive event generator.
    pub fn event_method(
        mut self,
        name: impl Into<String>,
        params: &[(&str, TypeTag)],
        events: EventSpec,
    ) -> Self {
        self.methods.push(MethodDef {
            name: name.into(),
            params: params
                .iter()
                .map(|(n, t)| ParamDef {
                    name: (*n).into(),
                    ty: *t,
                })
                .collect(),
            visibility: Visibility::Public,
            events,
        });
        self
    }

    /// Adjust the visibility of the most recently added method.
    pub fn last_method_visibility(mut self, vis: Visibility) -> Self {
        if let Some(m) = self.methods.last_mut() {
            m.visibility = vis;
        }
        self
    }
}

/// One slot of an instance's state vector: the attribute plus the class
/// that introduced it.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SlotDef {
    /// The class that introduced (or overrode) this slot.
    pub owner: ClassId,
    /// The attribute stored in this slot.
    pub attr: AttributeDef,
}

/// A fully elaborated class: declaration plus precomputed linearization
/// and slot layout.
#[derive(Debug, Clone)]
pub struct ClassDef {
    /// The class's registry index.
    pub id: ClassId,
    /// Class name.
    pub name: String,
    /// Direct parents, in declaration order.
    pub parents: Vec<ClassId>,
    /// Whether instances generate events.
    pub reactivity: Reactivity,
    /// Attributes/methods introduced by this class (not inherited ones).
    pub own_attributes: Vec<AttributeDef>,
    /// Methods introduced (or overridden) by this class.
    pub own_methods: Vec<MethodDef>,
    /// C3 linearization, starting with this class.
    pub linearization: Vec<ClassId>,
    /// Effective instance layout: all slots, inherited first (base-to-
    /// derived), with derived redefinitions overriding in place.
    pub layout: Vec<SlotDef>,
    slot_index: FastMap<String, usize>,
    /// Method resolution cache: name → (defining class, index into that
    /// class's `own_methods`).
    method_index: FastMap<String, (ClassId, usize)>,
    /// Interned event symbols for every visible method:
    /// name → `[begin-sym, end-sym]`.
    event_sym_index: FastMap<String, [EventSym; 2]>,
}

impl ClassDef {
    /// Index of `attr` in the instance layout.
    pub fn slot_of(&self, attr: &str) -> Option<usize> {
        self.slot_index.get(attr).copied()
    }

    /// Number of slots a fresh instance has.
    pub fn slot_count(&self) -> usize {
        self.layout.len()
    }

    /// The `[begin, end]` event symbols of a visible method, if declared.
    pub fn event_syms(&self, method: &str) -> Option<&[EventSym; 2]> {
        self.event_sym_index.get(method)
    }
}

/// The schema: all class definitions plus name lookup.
///
/// Classes are immutable once defined (the paper's critique of Ode hinges
/// on *rules* being changeable without touching class definitions; the
/// class definitions themselves stay fixed, as in any compiled schema).
#[derive(Debug, Default, Clone)]
pub struct ClassRegistry {
    classes: Vec<ClassDef>,
    by_name: FastMap<String, ClassId>,
    /// Interned event-symbol table, dense over all classes. Append-only,
    /// like the class list, so `len()` doubles as a schema version for
    /// caches keyed on symbols.
    syms: Vec<EventSymInfo>,
}

impl ClassRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of defined classes.
    pub fn len(&self) -> usize {
        self.classes.len()
    }

    /// True when no classes are defined.
    pub fn is_empty(&self) -> bool {
        self.classes.is_empty()
    }

    /// Look up a class by name.
    pub fn id_of(&self, name: &str) -> Result<ClassId> {
        self.by_name
            .get(name)
            .copied()
            .ok_or_else(|| ObjectError::UnknownClass(name.to_string()))
    }

    /// Borrow a class definition.
    pub fn get(&self, id: ClassId) -> &ClassDef {
        &self.classes[id.0 as usize]
    }

    /// Borrow a class definition by name.
    pub fn get_by_name(&self, name: &str) -> Result<&ClassDef> {
        Ok(self.get(self.id_of(name)?))
    }

    /// Iterate over all classes in definition order.
    pub fn iter(&self) -> impl Iterator<Item = &ClassDef> {
        self.classes.iter()
    }

    /// Define a class, validating parents, duplicates, defaults, and the
    /// C3 linearization.
    pub fn define(&mut self, decl: ClassDecl) -> Result<ClassId> {
        if self.by_name.contains_key(&decl.name) {
            return Err(ObjectError::DuplicateClass(decl.name));
        }
        let mut parent_ids = Vec::with_capacity(decl.parents.len());
        for p in &decl.parents {
            let pid = self
                .by_name
                .get(p)
                .copied()
                .ok_or_else(|| ObjectError::UnknownParent {
                    class: decl.name.clone(),
                    parent: p.clone(),
                })?;
            parent_ids.push(pid);
        }
        // Duplicate detection within the declaration itself.
        for (i, a) in decl.attributes.iter().enumerate() {
            if decl.attributes[..i].iter().any(|b| b.name == a.name) {
                return Err(ObjectError::DuplicateAttribute {
                    class: decl.name,
                    attribute: a.name.clone(),
                });
            }
            if !a.default.conforms_to(a.ty) {
                return Err(ObjectError::TypeMismatch {
                    expected: a.ty,
                    found: a.default.type_tag(),
                });
            }
        }
        for (i, m) in decl.methods.iter().enumerate() {
            if decl.methods[..i].iter().any(|n| n.name == m.name) {
                return Err(ObjectError::DuplicateMethod {
                    class: decl.name,
                    method: m.name.clone(),
                });
            }
        }

        let id = ClassId(self.classes.len() as u32);
        let linearization = self.linearize(id, &decl.name, &parent_ids)?;

        // Build the slot layout: walk the linearization from the most
        // basic class to the most derived so that base slots come first;
        // a redefinition overrides the slot in place.
        let mut layout: Vec<SlotDef> = Vec::new();
        let mut slot_index: FastMap<String, usize> = FastMap::default();
        let mut method_index: FastMap<String, (ClassId, usize)> = FastMap::default();
        let mut method_order: Vec<String> = Vec::new();
        for &cid in linearization.iter().rev() {
            let (attrs, methods): (&[AttributeDef], &[MethodDef]) = if cid == id {
                (&decl.attributes, &decl.methods)
            } else {
                let c = self.get(cid);
                (&c.own_attributes, &c.own_methods)
            };
            for a in attrs {
                match slot_index.get(&a.name) {
                    Some(&idx) => {
                        layout[idx] = SlotDef {
                            owner: cid,
                            attr: a.clone(),
                        };
                    }
                    None => {
                        slot_index.insert(a.name.clone(), layout.len());
                        layout.push(SlotDef {
                            owner: cid,
                            attr: a.clone(),
                        });
                    }
                }
            }
            for (mi, m) in methods.iter().enumerate() {
                if method_index.insert(m.name.clone(), (cid, mi)).is_none() {
                    method_order.push(m.name.clone());
                }
            }
        }

        // Intern the event symbols: two per visible method, in the
        // deterministic base-to-derived declaration order collected above.
        let mut event_sym_index: FastMap<String, [EventSym; 2]> = FastMap::default();
        for name in method_order {
            let begin = EventSym(self.syms.len() as u32);
            self.syms.push(EventSymInfo {
                class: id,
                method: name.clone(),
                end: false,
            });
            let end = EventSym(self.syms.len() as u32);
            self.syms.push(EventSymInfo {
                class: id,
                method: name.clone(),
                end: true,
            });
            event_sym_index.insert(name, [begin, end]);
        }

        // A subclass of a reactive class is itself reactive.
        let reactivity = if decl.reactivity == Reactivity::Reactive
            || parent_ids
                .iter()
                .any(|&p| self.get(p).reactivity == Reactivity::Reactive)
        {
            Reactivity::Reactive
        } else {
            Reactivity::Passive
        };

        self.classes.push(ClassDef {
            id,
            name: decl.name.clone(),
            parents: parent_ids,
            reactivity,
            own_attributes: decl.attributes,
            own_methods: decl.methods,
            linearization,
            layout,
            slot_index,
            method_index,
            event_sym_index,
        });
        self.by_name.insert(decl.name, id);
        Ok(id)
    }

    /// C3 linearization of a class being defined with the given parents.
    fn linearize(&self, id: ClassId, name: &str, parents: &[ClassId]) -> Result<Vec<ClassId>> {
        // L(C) = C + merge(L(P1), ..., L(Pn), [P1..Pn])
        let mut sequences: Vec<Vec<ClassId>> = parents
            .iter()
            .map(|&p| self.get(p).linearization.clone())
            .collect();
        sequences.push(parents.to_vec());
        let mut result = vec![id];
        loop {
            sequences.retain(|s| !s.is_empty());
            if sequences.is_empty() {
                return Ok(result);
            }
            // Find a head that appears in no tail.
            let mut chosen: Option<ClassId> = None;
            'heads: for s in &sequences {
                let head = s[0];
                for t in &sequences {
                    if t[1..].contains(&head) {
                        continue 'heads;
                    }
                }
                chosen = Some(head);
                break;
            }
            match chosen {
                Some(head) => {
                    result.push(head);
                    for s in &mut sequences {
                        s.retain(|&c| c != head);
                    }
                }
                None => return Err(ObjectError::InconsistentHierarchy(name.to_string())),
            }
        }
    }

    /// Is `sub` the same class as, or a (transitive) subclass of, `sup`?
    pub fn is_subclass(&self, sub: ClassId, sup: ClassId) -> bool {
        self.get(sub).linearization.contains(&sup)
    }

    /// Resolve a method on `class`, returning the defining class and the
    /// definition. Follows the C3 linearization (most derived wins).
    pub fn resolve_method(&self, class: ClassId, method: &str) -> Result<(ClassId, &MethodDef)> {
        let c = self.get(class);
        match c.method_index.get(method) {
            Some(&(owner, idx)) => Ok((owner, &self.get(owner).own_methods[idx])),
            None => Err(ObjectError::UnknownMethod {
                class: c.name.clone(),
                method: method.to_string(),
            }),
        }
    }

    /// The *effective* event spec of a method on a class: the spec of the
    /// resolved definition, masked to `None` for passive classes — a
    /// passive class never generates events even if it inherits a method
    /// that a reactive sibling uses as a generator.
    pub fn effective_event_spec(&self, class: ClassId, method: &str) -> Result<EventSpec> {
        let (_, def) = self.resolve_method(class, method)?;
        if self.get(class).reactivity == Reactivity::Passive {
            Ok(EventSpec::None)
        } else {
            Ok(def.events)
        }
    }

    /// Resolve the interned symbol for a primitive event raised by an
    /// instance of `class` invoking `method` (`end` selects the
    /// end-of-method half). `None` when the method is not part of the
    /// class's visible interface — callers fall back to string matching.
    pub fn event_sym(&self, class: ClassId, method: &str, end: bool) -> Option<EventSym> {
        self.classes
            .get(class.0 as usize)?
            .event_sym_index
            .get(method)
            .map(|pair| pair[end as usize])
    }

    /// Number of interned event symbols (grows monotonically with the
    /// schema; usable as a cache version together with `len()`).
    pub fn sym_count(&self) -> usize {
        self.syms.len()
    }

    /// Reverse lookup for an interned symbol.
    pub fn sym_info(&self, sym: EventSym) -> &EventSymInfo {
        &self.syms[sym.0 as usize]
    }

    /// Total number of potential primitive events declared on a class
    /// (used by the event-management-cost experiment E2).
    pub fn declared_event_count(&self, class: ClassId) -> usize {
        let c = self.get(class);
        c.method_index
            .values()
            .map(|&(owner, idx)| self.get(owner).own_methods[idx].events.event_count())
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn reg_with_employee() -> (ClassRegistry, ClassId) {
        let mut reg = ClassRegistry::new();
        let id = reg
            .define(
                ClassDecl::reactive("Employee")
                    .attr("age", TypeTag::Int)
                    .attr("salary", TypeTag::Float)
                    .attr("name", TypeTag::Str)
                    .event_method("Change-Salary", &[("x", TypeTag::Float)], EventSpec::Begin)
                    .event_method("Get-Salary", &[], EventSpec::End)
                    .event_method("Get-Age", &[], EventSpec::BeginAndEnd)
                    .method("Get-Name", &[]),
            )
            .unwrap();
        (reg, id)
    }

    #[test]
    fn figure_8_event_interface() {
        let (reg, id) = reg_with_employee();
        assert_eq!(
            reg.effective_event_spec(id, "Change-Salary").unwrap(),
            EventSpec::Begin
        );
        assert_eq!(
            reg.effective_event_spec(id, "Get-Salary").unwrap(),
            EventSpec::End
        );
        assert_eq!(
            reg.effective_event_spec(id, "Get-Age").unwrap(),
            EventSpec::BeginAndEnd
        );
        assert_eq!(
            reg.effective_event_spec(id, "Get-Name").unwrap(),
            EventSpec::None
        );
        // begin + end + (begin && end) = 1 + 1 + 2 potential events.
        assert_eq!(reg.declared_event_count(id), 4);
    }

    #[test]
    fn single_inheritance_resolves_and_overrides() {
        let (mut reg, emp) = reg_with_employee();
        let mgr = reg
            .define(
                ClassDecl::reactive("Manager")
                    .parent("Employee")
                    .attr("bonus", TypeTag::Float)
                    .event_method("Change-Salary", &[("x", TypeTag::Float)], EventSpec::End),
            )
            .unwrap();
        assert!(reg.is_subclass(mgr, emp));
        assert!(!reg.is_subclass(emp, mgr));
        // Override: Manager's spec wins on Manager.
        assert_eq!(
            reg.effective_event_spec(mgr, "Change-Salary").unwrap(),
            EventSpec::End
        );
        assert_eq!(
            reg.effective_event_spec(emp, "Change-Salary").unwrap(),
            EventSpec::Begin
        );
        // Inherited method resolves to Employee's definition.
        let (owner, _) = reg.resolve_method(mgr, "Get-Name").unwrap();
        assert_eq!(owner, emp);
        // Layout: inherited slots first, own slot appended.
        let mdef = reg.get(mgr);
        let names: Vec<_> = mdef.layout.iter().map(|s| s.attr.name.as_str()).collect();
        assert_eq!(names, ["age", "salary", "name", "bonus"]);
    }

    #[test]
    fn passive_subclass_masks_event_generation() {
        let mut reg = ClassRegistry::new();
        reg.define(ClassDecl::reactive("Base").event_method("M", &[], EventSpec::BeginAndEnd))
            .unwrap();
        // A subclass of a reactive class is reactive (cannot opt out).
        let sub = reg.define(ClassDecl::new("Sub").parent("Base")).unwrap();
        assert_eq!(reg.get(sub).reactivity, Reactivity::Reactive);
        // But a genuinely passive class never generates events.
        let passive = reg
            .define(ClassDecl::new("Plain").method("M", &[]))
            .unwrap();
        assert_eq!(
            reg.effective_event_spec(passive, "M").unwrap(),
            EventSpec::None
        );
    }

    #[test]
    fn multiple_inheritance_c3_order() {
        let mut reg = ClassRegistry::new();
        let a = reg
            .define(ClassDecl::new("A").method("m", &[]).attr("x", TypeTag::Int))
            .unwrap();
        let b = reg
            .define(ClassDecl::new("B").parent("A").method("m", &[]))
            .unwrap();
        let c = reg
            .define(ClassDecl::new("C").parent("A").method("m", &[]))
            .unwrap();
        let d = reg
            .define(ClassDecl::new("D").parent("B").parent("C"))
            .unwrap();
        // C3: D, B, C, A.
        assert_eq!(reg.get(d).linearization, vec![d, b, c, a]);
        // Diamond: `m` resolves to B (leftmost parent).
        let (owner, _) = reg.resolve_method(d, "m").unwrap();
        assert_eq!(owner, b);
        // The shared attribute `x` appears exactly once in the layout.
        assert_eq!(reg.get(d).slot_count(), 1);
    }

    #[test]
    fn inconsistent_hierarchy_rejected() {
        let mut reg = ClassRegistry::new();
        reg.define(ClassDecl::new("X")).unwrap();
        reg.define(ClassDecl::new("Y")).unwrap();
        reg.define(ClassDecl::new("P").parent("X").parent("Y"))
            .unwrap();
        reg.define(ClassDecl::new("Q").parent("Y").parent("X"))
            .unwrap();
        // P orders X before Y; Q orders Y before X — no valid C3 merge.
        let err = reg
            .define(ClassDecl::new("R").parent("P").parent("Q"))
            .unwrap_err();
        assert!(matches!(err, ObjectError::InconsistentHierarchy(_)));
    }

    #[test]
    fn duplicate_and_unknown_rejections() {
        let mut reg = ClassRegistry::new();
        reg.define(ClassDecl::new("A")).unwrap();
        assert!(matches!(
            reg.define(ClassDecl::new("A")),
            Err(ObjectError::DuplicateClass(_))
        ));
        assert!(matches!(
            reg.define(ClassDecl::new("B").parent("Nope")),
            Err(ObjectError::UnknownParent { .. })
        ));
        assert!(matches!(
            reg.define(
                ClassDecl::new("C")
                    .attr("x", TypeTag::Int)
                    .attr("x", TypeTag::Int)
            ),
            Err(ObjectError::DuplicateAttribute { .. })
        ));
        assert!(matches!(
            reg.define(ClassDecl::new("D").method("m", &[]).method("m", &[])),
            Err(ObjectError::DuplicateMethod { .. })
        ));
        assert!(matches!(
            reg.id_of("Nope"),
            Err(ObjectError::UnknownClass(_))
        ));
    }

    #[test]
    fn default_must_conform_to_declared_type() {
        let mut reg = ClassRegistry::new();
        let err = reg
            .define(ClassDecl::new("Bad").attr_with_default(
                "x",
                TypeTag::Int,
                Value::Str("oops".into()),
            ))
            .unwrap_err();
        assert!(matches!(err, ObjectError::TypeMismatch { .. }));
    }

    #[test]
    fn event_syms_are_interned_per_class_and_method() {
        let (mut reg, emp) = reg_with_employee();
        let [b, e] = *reg.get(emp).event_syms("Change-Salary").unwrap();
        assert_ne!(b, e);
        assert_eq!(reg.event_sym(emp, "Change-Salary", false), Some(b));
        assert_eq!(reg.event_sym(emp, "Change-Salary", true), Some(e));
        assert_eq!(reg.event_sym(emp, "No-Such-Method", true), None);
        let info = reg.sym_info(e);
        assert_eq!(info.class, emp);
        assert_eq!(info.method, "Change-Salary");
        assert!(info.end);

        // A subclass re-interns fresh symbols for inherited methods: the
        // symbol identifies the *dynamic* class of the raising instance.
        let mgr = reg
            .define(ClassDecl::reactive("Manager").parent("Employee"))
            .unwrap();
        let m = reg.event_sym(mgr, "Change-Salary", true).unwrap();
        assert_ne!(m, e);
        assert_eq!(reg.sym_info(m).class, mgr);
        // Every visible method got both halves: 4 methods × 2 each class.
        assert_eq!(reg.sym_count(), 16);
    }

    #[test]
    fn attribute_override_replaces_slot_in_place() {
        let mut reg = ClassRegistry::new();
        reg.define(ClassDecl::new("Base").attr_with_default("x", TypeTag::Int, Value::Int(1)))
            .unwrap();
        let sub = reg
            .define(ClassDecl::new("Sub").parent("Base").attr_with_default(
                "x",
                TypeTag::Int,
                Value::Int(2),
            ))
            .unwrap();
        let def = reg.get(sub);
        assert_eq!(def.slot_count(), 1);
        assert_eq!(def.layout[0].attr.default, Value::Int(2));
        assert_eq!(def.layout[0].owner, sub);
    }
}
