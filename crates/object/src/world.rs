//! The [`World`] trait — how method bodies, rule conditions, and rule
//! actions see the database.
//!
//! The paper implements conditions and actions as C++ member functions
//! reached through pointers-to-member (PMF); those bodies freely touch
//! other objects (`Parker!PurchaseIBMStock`). In Rust the equivalent body
//! is a registered closure, and `World` is the capability it receives: it
//! can read and write attributes, send messages (which generate events and
//! may cascade rules), create and delete objects, and abort the
//! surrounding transaction by returning an error.
//!
//! Both the Sentinel engine and the Ode/ADAM baseline engines implement
//! `World`, so one set of method bodies drives all three in the
//! comparative experiments.

use crate::error::Result;
use crate::oid::Oid;
use crate::schema::{ClassId, ClassRegistry};
use crate::value::Value;

/// Capability interface handed to method bodies and rule bodies.
pub trait World {
    /// The schema.
    fn registry(&self) -> &ClassRegistry;

    /// Create a fresh instance of the named class (default-initialised).
    fn create(&mut self, class: &str) -> Result<Oid>;

    /// Delete an object.
    fn delete(&mut self, oid: Oid) -> Result<()>;

    /// Read an attribute.
    fn get_attr(&self, oid: Oid, attr: &str) -> Result<Value>;

    /// Write an attribute.
    fn set_attr(&mut self, oid: Oid, attr: &str, value: Value) -> Result<()>;

    /// Send a message: dispatch `method` on `receiver`. Under the
    /// Sentinel engine this raises the declared bom/eom events and may
    /// trigger rules; under a passive world it is plain dispatch.
    fn send(&mut self, receiver: Oid, method: &str, args: &[Value]) -> Result<Value>;

    /// The dynamic class of an object.
    fn class_of(&self, oid: Oid) -> Result<ClassId>;

    /// All live instances of the named class, subclass instances included.
    fn extent(&self, class: &str) -> Result<Vec<Oid>>;

    /// Current logical time (monotone; event timestamps come from the
    /// same clock).
    fn now(&self) -> u64;
}

/// Convenience accessors implemented on top of the raw interface.
impl dyn World + '_ {
    /// Read an attribute and extract a float (ints widen).
    pub fn get_float(&self, oid: Oid, attr: &str) -> Result<f64> {
        self.get_attr(oid, attr)?.as_float()
    }

    /// Read an attribute and extract an int.
    pub fn get_int(&self, oid: Oid, attr: &str) -> Result<i64> {
        self.get_attr(oid, attr)?.as_int()
    }

    /// Read an attribute and extract an oid reference.
    pub fn get_ref(&self, oid: Oid, attr: &str) -> Result<Oid> {
        self.get_attr(oid, attr)?.as_oid()
    }

    /// Read an attribute and extract a string.
    pub fn get_string(&self, oid: Oid, attr: &str) -> Result<String> {
        Ok(self.get_attr(oid, attr)?.as_str()?.to_string())
    }
}
